//! Per-recipe wall-time profiler for a case study's model pipeline.
//!
//! ```text
//! cargo run -p armada-cases --bin profile_pipeline --release -- queue
//! ```

use armada::proof::relation::StandardRelation;
use armada::strategies;
use armada::verify::{check_refinement, SimConfig};
use std::time::Instant;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "queue".to_string());
    let case = match which.as_str() {
        "barrier" => armada_cases::barrier::case(),
        "pointers" => armada_cases::pointers::case(),
        "mcs" => armada_cases::mcs_lock::case(),
        "tsp" => armada_cases::tsp::case(),
        _ => armada_cases::queue::case(),
    };
    let pipeline = armada::Pipeline::from_source(case.model_source).expect("front end");
    let typed = pipeline.typed().clone();
    let relation = StandardRelation::new(typed.module.relation());
    for recipe in &typed.module.recipes {
        let start = Instant::now();
        let report =
            strategies::run_recipe(&typed, recipe, SimConfig::default()).expect("strategy");
        let strategy_time = start.elapsed();
        let start = Instant::now();
        let low = armada_sm::lower(&typed, &recipe.low).expect("lower");
        let high = armada_sm::lower(&typed, &recipe.high).expect("lower");
        let semantic = check_refinement(&low, &high, &relation, &SimConfig::default());
        let semantic_time = start.elapsed();
        println!(
            "{:<40} strategy {:>8.2?} ({}) | semantic {:>8.2?} ({})",
            recipe.name,
            strategy_time,
            if report.success() { "ok" } else { "FAIL" },
            semantic_time,
            match &semantic {
                Ok(cert) => format!("ok, {} nodes", cert.product_nodes),
                Err(ce) => format!("FAIL: {}", ce.description),
            }
        );
    }
}

//! Regenerates the checked-in backend output for the Queue case study:
//! `crates/runtime/src/generated.rs` (hw-tso mode) and
//! `crates/runtime/src/generated_conservative.rs` (conservative mode).
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run -p armada-cases --bin gen_queue
//! ```
//!
//! The `queue::tests::generated_queue_matches_emitter_output` test pins the
//! files to the emitter byte for byte.

use armada_backend::{emit_rust, RustMode};

fn main() {
    let module = armada_lang::parse_module(armada_cases::queue::PAPER).expect("parse");
    let typed = armada_lang::check_module(&module).expect("typecheck");
    let level = module.level("Implementation").expect("level");
    let info = typed.level_info("Implementation").expect("info");

    for (mode, path) in [
        (RustMode::HwTso, "crates/runtime/src/generated.rs"),
        (
            RustMode::Conservative,
            "crates/runtime/src/generated_conservative.rs",
        ),
    ] {
        let code = emit_rust(level, info, mode).expect("emit");
        std::fs::write(path, &code)
            .unwrap_or_else(|err| panic!("writing {path}: {err} (run from the workspace root)"));
        println!("wrote {path} ({} bytes)", code.len());
    }
}

//! # armada-cases
//!
//! The case studies of the paper's evaluation (§6, Table 1), plus the §2
//! traveling-salesman running example, written in the Armada language and
//! driven through the full verification pipeline.
//!
//! Each case study comes in two instantiations:
//!
//! * a **paper-scale** source — the sizes the paper reports (100 threads,
//!   512-slot queue, …); parsed, type-checked, core-checked, and fed to the
//!   backends, exactly like real input to the tool, and the basis of the
//!   SLOC effort numbers;
//! * a **model-scale** source — a bounded instance (2 threads, tiny loops)
//!   whose *entire* level stack is verified: every recipe's strategy runs
//!   and every adjacent pair is re-validated by the bounded refinement
//!   model checker over all interleavings and store-buffer schedules.
//!
//! | case study | demonstrates | strategies exercised |
//! |---|---|---|
//! | [`barrier`] | §6.1 — publication-idiom barrier, not verifiable by ownership methods | var_intro, assume_intro (rely-guarantee), nondet_weakening+weakening, var_hiding |
//! | [`pointers`] | §6.2 — store reordering justified by Steensgaard regions | weakening + `use_regions` |
//! | [`mcs_lock`] | §6.3 — lock hand-built from hardware primitives | var_intro, assume_intro, tso_elim, reduction |
//! | [`queue`] | §6.4 — liblfds-style lock-free SPSC queue | var_intro, assume_intro, nondet_weakening, var_hiding |
//! | [`tsp`] | §2 — running example with a benign race | nondet_weakening, tso_elim |

pub mod barrier;
pub mod mcs_lock;
pub mod pointers;
pub mod queue;
pub mod symmetric;
pub mod tsp;

use armada::{EffortReport, Pipeline, PipelineReport};

/// One case study: name, paper-scale source, and model-scale source.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudy {
    /// Table-1 name.
    pub name: &'static str,
    /// Table-1 description.
    pub description: &'static str,
    /// Paper-scale Armada source (front end + backends only).
    pub paper_source: &'static str,
    /// Model-scale Armada source (full pipeline).
    pub model_source: &'static str,
}

impl CaseStudy {
    /// Runs the model-scale instance through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns front-end or infrastructure failures; proof failures are in
    /// the report.
    pub fn verify_model(&self) -> Result<(Pipeline, PipelineReport), String> {
        let pipeline = Pipeline::from_source(self.model_source)?;
        let report = pipeline.run()?;
        Ok((pipeline, report))
    }

    /// Parses, type-checks, and core-checks the paper-scale source; returns
    /// its effort accounting (per-level SLOC, per-recipe SLOC).
    ///
    /// # Errors
    ///
    /// Returns the first front-end diagnostic.
    pub fn check_paper_source(&self) -> Result<EffortReport, String> {
        let pipeline = Pipeline::from_source(self.paper_source)?;
        // The implementation level must be compilable core Armada when the
        // source declares a recipe chain; library-style sources (no main)
        // are core-checked level by level.
        if !pipeline.typed().module.recipes.is_empty() {
            pipeline.check_core()?;
        } else {
            for level in &pipeline.typed().module.levels {
                let info = pipeline
                    .typed()
                    .level_info(&level.name)
                    .ok_or_else(|| format!("level `{}` not checked", level.name))?;
                armada_lang::core_check::check_core(level, info).map_err(|e| e.to_string())?;
            }
        }
        // Strategy-only effort accounting (no semantic model checking at
        // paper scale).
        let mut pipeline = pipeline;
        pipeline.semantic_check = false;
        let report = pipeline.run()?;
        Ok(pipeline.effort(&report))
    }
}

/// All case studies, in Table-1 order.
pub fn all_cases() -> Vec<CaseStudy> {
    vec![
        barrier::case(),
        pointers::case(),
        mcs_lock::case(),
        queue::case(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table1_entries() {
        let cases = all_cases();
        let names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["Barrier", "Pointers", "MCSLock", "Queue"]);
        for case in &cases {
            assert!(!case.description.is_empty());
        }
    }
}

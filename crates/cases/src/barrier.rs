//! §6.1 — the Barrier case study.
//!
//! Schirmer and Cohen describe a barrier their ownership-based TSO
//! methodology *cannot* verify: “each processor has a flag that it
//! exclusively writes (with volatile writes without any flushing) and other
//! processors read, and each processor waits for all processors to set
//! their flags before continuing past the barrier.” The flag write is
//! Owens's publication idiom — an intentional data race — so
//! TSO-elimination is unavailable and the proof must reason about x86-TSO
//! directly, exactly as the paper describes:
//!
//! 1. `Implementation → Ghost` (**variable introduction**): ghost flags
//!    record which participants have performed their pre-barrier writes
//!    (set *before* the publication store, so the ghost leads the flag);
//! 2. `Ghost → Cemented` (**assume introduction / rely-guarantee**): the
//!    post-barrier read is annotated with the safety property — the value
//!    read is the published one — justified by invariants tying the flags
//!    to the ghosts and by TSO's FIFO store buffers (data drains before
//!    flag);
//! 3. `Cemented → Weak` (**weakening**): with the property cemented, the
//!    racy reads are replaced by `*` and the observable print by the
//!    published constant;
//! 4. `Weak → Spec` (**variable hiding**): the concrete flags and data
//!    disappear, leaving the ghost-level barrier protocol.

use crate::CaseStudy;

/// Model-scale source: two participants.
pub const MODEL: &str = r#"
// §6.1: publication-idiom barrier, two participants (main is participant 0,
// the spawned worker participant 1). Each publishes data then sets its flag
// WITHOUT flushing; each waits for the other's flag, then reads the other's
// data. Safety: the post-barrier read sees the pre-barrier write (prints 1).
level Implementation {
    var data0: uint32;
    var data1: uint32;
    var flag0: uint32;
    var flag1: uint32;

    void worker() {
        data1 := 1;
        flag1 := 1;
        var i: uint32 := 0;
        while (i == 0) {
            i := flag0;
        }
        var d: uint32 := data0;
        print(d);
    }

    void main() {
        var t: uint64 := create_thread worker();
        data0 := 1;
        flag0 := 1;
        var j: uint32 := 0;
        while (j == 0) {
            j := flag1;
        }
        var d2: uint32 := data1;
        print(d2);
        join t;
    }
}

// Level 1: ghost participation flags, set before the publication store so
// that a visible flag implies the ghost is set.
level Ghost {
    var data0: uint32;
    var data1: uint32;
    var flag0: uint32;
    var flag1: uint32;
    ghost var wrote0: bool;
    ghost var wrote1: bool;

    void worker() {
        data1 := 1;
        wrote1 := true;
        flag1 := 1;
        var i: uint32 := 0;
        while (i == 0) {
            i := flag0;
        }
        var d: uint32 := data0;
        print(d);
    }

    void main() {
        var t: uint64 := create_thread worker();
        data0 := 1;
        wrote0 := true;
        flag0 := 1;
        var j: uint32 := 0;
        while (j == 0) {
            j := flag1;
        }
        var d2: uint32 := data1;
        print(d2);
        join t;
    }
}

// Level 2: the safety property is cemented as enablement conditions on the
// post-barrier reads (rely-guarantee level).
level Cemented {
    var data0: uint32;
    var data1: uint32;
    var flag0: uint32;
    var flag1: uint32;
    ghost var wrote0: bool;
    ghost var wrote1: bool;

    void worker() {
        data1 := 1;
        wrote1 := true;
        flag1 := 1;
        var i: uint32 := 0;
        while (i == 0) {
            i := flag0;
        }
        var d: uint32 := data0;
        assume d == 1;
        print(d);
    }

    void main() {
        var t: uint64 := create_thread worker();
        data0 := 1;
        wrote0 := true;
        flag0 := 1;
        var j: uint32 := 0;
        while (j == 0) {
            j := flag1;
        }
        var d2: uint32 := data1;
        assume d2 == 1;
        print(d2);
        join t;
    }
}

// Level 3: with the property cemented, the racy reads become arbitrary
// choices and the observable output becomes the published constant.
level Weak {
    var data0: uint32;
    var data1: uint32;
    var flag0: uint32;
    var flag1: uint32;
    ghost var wrote0: bool;
    ghost var wrote1: bool;

    void worker() {
        data1 := 1;
        wrote1 := true;
        flag1 := 1;
        var i: uint32 := 0;
        while (i == 0) {
            i := *;
        }
        var d: uint32 := *;
        assume d == 1;
        print(1);
    }

    void main() {
        var t: uint64 := create_thread worker();
        data0 := 1;
        wrote0 := true;
        flag0 := 1;
        var j: uint32 := 0;
        while (j == 0) {
            j := *;
        }
        var d2: uint32 := *;
        assume d2 == 1;
        print(1);
        join t;
    }
}

// Level 4 (spec): the concrete flags and data are hidden; what remains is
// the ghost barrier protocol printing the published values.
level Spec {
    ghost var wrote0: bool;
    ghost var wrote1: bool;

    void worker() {
        wrote1 := true;
        var i: uint32 := 0;
        while (i == 0) {
            i := *;
        }
        var d: uint32 := *;
        assume d == 1;
        print(1);
    }

    void main() {
        var t: uint64 := create_thread worker();
        wrote0 := true;
        var j: uint32 := 0;
        while (j == 0) {
            j := *;
        }
        var d2: uint32 := *;
        assume d2 == 1;
        print(1);
        join t;
    }
}

proof ImplementationRefinesGhost {
    refinement Implementation Ghost
    var_intro wrote0 wrote1
}

proof GhostRefinesCemented {
    refinement Ghost Cemented
    assume_intro
    invariant "flag0 == 1 ==> wrote0"
    invariant "flag1 == 1 ==> wrote1"
    rely "old(wrote0) ==> wrote0"
    rely "old(wrote1) ==> wrote1"
}

proof CementedRefinesWeak {
    refinement Cemented Weak
    nondet_weakening
}

proof WeakRefinesSpec {
    refinement Weak Spec
    var_hiding data0 data1 flag0 flag1
}
"#;

/// Paper-scale source: four participants over flag/data arrays (front end
/// and effort accounting only).
pub const PAPER: &str = r#"
level Implementation {
    var flags: uint32[4];
    var data: uint32[4];

    void participant(me: uint32) {
        data[me] := me + 1;
        flags[me] := 1;
        var other: uint32 := 0;
        while (other < 4) {
            var seen: uint32 := 0;
            while (seen == 0) {
                seen := flags[other];
            }
            other := other + 1;
        }
        var sum: uint32 := 0;
        other := 0;
        while (other < 4) {
            var v: uint32 := data[other];
            sum := sum + v;
            other := other + 1;
        }
        print(sum);
    }

    void main() {
        var t1: uint64 := create_thread participant(1);
        var t2: uint64 := create_thread participant(2);
        var t3: uint64 := create_thread participant(3);
        participant(0);
        join t1;
        join t2;
        join t3;
    }
}
"#;

/// The Barrier case study.
pub fn case() -> CaseStudy {
    CaseStudy {
        name: "Barrier",
        description: "Schirmer–Cohen barrier, incompatible with ownership-based proofs",
        paper_source: PAPER,
        model_source: MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_verifies_end_to_end() {
        let (pipeline, report) = case().verify_model().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Implementation ⊑ Spec");
        let effort = pipeline.effort(&report);
        assert_eq!(effort.level_sloc.len(), 5);
        assert!(effort.total_generated() > 1000);
    }

    #[test]
    fn paper_source_front_end() {
        case().check_paper_source().unwrap();
    }

    #[test]
    fn barrier_without_publication_order_fails() {
        // Flag set BEFORE data: the reader can pass the barrier and read 0.
        // The assume-introduction step must refute.
        let broken = MODEL.replace(
            "        data1 := 1;\n        wrote1 := true;\n        flag1 := 1;",
            "        flag1 := 1;\n        data1 := 1;\n        wrote1 := true;",
        );
        // Apply the same breakage to every level so the structure still
        // aligns.
        let pipeline = armada::Pipeline::from_source(&broken).unwrap();
        let report = pipeline.run().unwrap();
        assert!(
            !report.verified(),
            "publishing the flag before the data must break the proof"
        );
    }
}

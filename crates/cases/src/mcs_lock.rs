//! §6.3 — the MCSLock case study: a queue lock hand-built from hardware
//! primitives (fetch-and-add for ticket dispensing, a locked store for the
//! hand-off), in which each waiter spins on its *own* slot — the
//! cache-awareness that defines the Mellor-Crummey–Scott design. As in the
//! CertiKOS comparison the paper draws, the lock is not a language
//! primitive: its primitives are modeled as external methods with
//! concurrency-aware bodies.
//!
//! The proof stack mirrors the paper's six transformations in four moves:
//! ghost ownership introduction, ownership annotation (assume
//! introduction), TSO elimination of the protected variable, and finally
//! Cohen–Lamport reduction of the critical section to an atomic block.

use crate::CaseStudy;

/// Model-scale source: one worker plus main, three tickets' worth of slots.
pub const MODEL: &str = r#"
// §6.3 (model scale): ticket-dispensing queue lock; each thread spins on
// its own slot, the releaser enables the next ticket's slot.
level Implementation {
    var x: uint32;
    var tail: uint32;
    var slots: uint32[4];

    // Hardware fetch-and-add (ticket dispenser), modeled by its contract
    // (Figure 8): one atomic declarative action.
    method {:extern} fetch_add_tail() returns (prev: uint32)
        modifies tail
        ensures tail == old(tail) + 1
        ensures prev == old(tail);

    // Hardware locked store (hand-off release); immediately visible.
    method {:extern} release_slot(k: uint32) {
        slots[k] ::= 1;
    }

    void worker() {
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        var t: uint32 := x;
        t := t + 1;
        x := t;
        fence;
        release_slot(ticket + 1);
    }

    void main() {
        release_slot(0);
        var a: uint64 := create_thread worker();
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        var r: uint32 := x;
        print(r);
        fence;
        release_slot(ticket + 1);
        join a;
    }
}

// Level 1: ghost lock ownership, secured after the spin and returned before
// the hand-off.
level Owned {
    var x: uint32;
    var tail: uint32;
    var slots: uint32[4];
    ghost var owner: int;

    method {:extern} fetch_add_tail() returns (prev: uint32)
        modifies tail
        ensures tail == old(tail) + 1
        ensures prev == old(tail);

    method {:extern} release_slot(k: uint32) {
        slots[k] ::= 1;
    }

    void worker() {
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        var t: uint32 := x;
        t := t + 1;
        x := t;
        fence;
        owner := 0;
        release_slot(ticket + 1);
    }

    void main() {
        release_slot(0);
        var a: uint64 := create_thread worker();
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        var r: uint32 := x;
        print(r);
        fence;
        owner := 0;
        release_slot(ticket + 1);
        join a;
    }
}

// Level 2: ownership is annotated at every protected access.
level Annotated {
    var x: uint32;
    var tail: uint32;
    var slots: uint32[4];
    ghost var owner: int;

    method {:extern} fetch_add_tail() returns (prev: uint32)
        modifies tail
        ensures tail == old(tail) + 1
        ensures prev == old(tail);

    method {:extern} release_slot(k: uint32) {
        slots[k] ::= 1;
    }

    void worker() {
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        assume owner == $me;
        var t: uint32 := x;
        t := t + 1;
        x := t;
        fence;
        owner := 0;
        release_slot(ticket + 1);
    }

    void main() {
        release_slot(0);
        var a: uint64 := create_thread worker();
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        assume owner == $me;
        var r: uint32 := x;
        print(r);
        fence;
        owner := 0;
        release_slot(ticket + 1);
        join a;
    }
}

// Level 3: with the ownership discipline established, the protected
// variable's updates become sequentially consistent.
level SeqX {
    var x: uint32;
    var tail: uint32;
    var slots: uint32[4];
    ghost var owner: int;

    method {:extern} fetch_add_tail() returns (prev: uint32)
        modifies tail
        ensures tail == old(tail) + 1
        ensures prev == old(tail);

    method {:extern} release_slot(k: uint32) {
        slots[k] ::= 1;
    }

    void worker() {
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        assume owner == $me;
        var t: uint32 := x;
        t := t + 1;
        x ::= t;
        fence;
        owner := 0;
        release_slot(ticket + 1);
    }

    void main() {
        release_slot(0);
        var a: uint64 := create_thread worker();
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        owner := $me;
        assume owner == $me;
        var r: uint32 := x;
        print(r);
        fence;
        owner := 0;
        release_slot(ticket + 1);
        join a;
    }
}

// Level 4 (spec): the critical section is a single atomic block.
level AtomicCS {
    var x: uint32;
    var tail: uint32;
    var slots: uint32[4];
    ghost var owner: int;

    method {:extern} fetch_add_tail() returns (prev: uint32)
        modifies tail
        ensures tail == old(tail) + 1
        ensures prev == old(tail);

    method {:extern} release_slot(k: uint32) {
        slots[k] ::= 1;
    }

    void worker() {
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        explicit_yield {
            owner := $me;
            assume owner == $me;
            var t: uint32 := x;
            t := t + 1;
            x ::= t;
            fence;
            owner := 0;
            release_slot(ticket + 1);
        }
    }

    void main() {
        release_slot(0);
        var a: uint64 := create_thread worker();
        var ticket: uint32 := fetch_add_tail();
        var ready: uint32 := 0;
        while (ready == 0) {
            ready := slots[ticket];
        }
        explicit_yield {
            owner := $me;
            assume owner == $me;
            var r: uint32 := x;
            print(r);
            fence;
            owner := 0;
            release_slot(ticket + 1);
        }
        join a;
    }
}

proof ImplementationRefinesOwned {
    refinement Implementation Owned
    var_intro owner
}

proof OwnedRefinesAnnotated {
    refinement Owned Annotated
    assume_intro
}

proof AnnotatedRefinesSeqX {
    refinement Annotated SeqX
    tso_elim x "owner == $me"
}

proof SeqXRefinesAtomicCS {
    refinement SeqX AtomicCS
    reduction
}
"#;

/// Paper-scale source: the pointer-based MCS lock with per-node spin
/// locations, CAS, and swap externs (front end only).
pub const PAPER: &str = r#"
level Implementation {
    struct Node {
        locked: uint32;
        next: ptr<Node>;
    }
    var lock_tail: ptr<Node>;
    var counter: uint64;

    // Hardware primitives, as the paper models them (§3.1.4).
    method {:extern} swap_tail(node: ptr<Node>) returns (prev: ptr<Node>)
        modifies lock_tail
        ensures lock_tail == node;
    method {:extern} cas_tail_to_null(expected: ptr<Node>) returns (won: bool)
        modifies lock_tail;

    void acquire(node: ptr<Node>) {
        (*node).locked := 1;
        (*node).next := null;
        var prev: ptr<Node> := swap_tail(node);
        if (prev != null) {
            (*prev).next := node;
            var spin: uint32 := 1;
            while (spin == 1) {
                spin := (*node).locked;
            }
        }
    }

    void release(node: ptr<Node>) {
        var succ: ptr<Node> := (*node).next;
        if (succ == null) {
            var won: bool := cas_tail_to_null(node);
            if (won) {
                return;
            }
            succ := (*node).next;
            while (succ == null) {
                succ := (*node).next;
            }
        }
        fence;
        (*succ).locked := 0;
    }

    void worker() {
        var i: uint32 := 0;
        while (i < 1000) {
            var node: ptr<Node> := malloc(Node);
            acquire(node);
            var c: uint64 := counter;
            c := c + 1;
            counter := c;
            release(node);
            dealloc node;
            i := i + 1;
        }
    }

    void main() {
        var t1: uint64 := create_thread worker();
        var t2: uint64 := create_thread worker();
        var t3: uint64 := create_thread worker();
        worker();
        join t1;
        join t2;
        join t3;
        var r: uint64 := counter;
        print(r);
    }
}
"#;

/// The MCSLock case study.
pub fn case() -> CaseStudy {
    CaseStudy {
        name: "MCSLock",
        description: "Mellor-Crummey and Scott lock built from hardware primitives",
        paper_source: PAPER,
        model_source: MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_verifies_end_to_end() {
        let (_, report) = case().verify_model().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Implementation ⊑ AtomicCS");
    }

    #[test]
    fn paper_source_front_end() {
        case().check_paper_source().unwrap();
    }

    #[test]
    fn dropping_the_fence_breaks_tso_elimination() {
        // Without the fence, the buffered write to x may still be pending
        // when ownership is released.
        let broken = MODEL
            .replace("        x := t;\n        fence;", "        x := t;")
            .replace("        x ::= t;\n        fence;", "        x ::= t;");
        let pipeline = armada::Pipeline::from_source(&broken);
        match pipeline {
            Ok(pipeline) => {
                let report = pipeline.run().unwrap();
                assert!(!report.verified(), "missing fence must break the proof");
            }
            // Structural divergence across levels is also an acceptable
            // failure mode for this mutation.
            Err(_) => {}
        }
    }
}

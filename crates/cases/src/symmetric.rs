//! Symmetric-thread benchmark subjects for the symmetry-reduction engine.
//!
//! Each subject spawns `k ∈ {2, 3}` *interchangeable* workers — same
//! routine, same (empty) argument list — so the reachable state space is
//! closed under permuting the worker tids, and canonical state interning
//! (`armada_sm::canon`) should collapse it by a factor approaching `k!`.
//! All three shapes are deliberately tid-opaque: no `$me`, and every
//! thread handle is either joined through a dedicated local slot (barrier,
//! spinlock) or fire-and-forget (queue — exercising dead-handle erasure).
//! The queue subject also `malloc`s one cell per producer and leaks it, so
//! different allocation interleavings reach heap-isomorphic states and the
//! DFS object renumbering gets real work.
//!
//! These are *exploration* subjects (a single `Implementation` level, no
//! refinement chain): the symmetry bench and the soundness suite drive
//! them through `armada_sm::explore` directly.

/// One symmetric-thread subject.
#[derive(Debug, Clone)]
pub struct SymmetricSubject {
    /// Display name, `shape/k<threads>` style (e.g. `barrier/k3`).
    pub name: String,
    /// Number of symmetric worker threads spawned (excluding main).
    pub threads: usize,
    /// Single-level Armada source.
    pub source: String,
}

fn spawn_block(routine: &str, k: usize, join: bool) -> String {
    let mut out = String::new();
    for i in 1..=k {
        out.push_str(&format!(
            "        var t{i}: uint64 := create_thread {routine}();\n"
        ));
    }
    if join {
        for i in 1..=k {
            out.push_str(&format!("        join t{i};\n"));
        }
    }
    out
}

/// A symmetric sense-free barrier: every worker atomically bumps `arrived`
/// and spins until all `k` have arrived; main waits the same way and
/// prints the final count. Spawns are fire-and-forget — a joined handle
/// pins each state to one specific tid binding and forfeits the `k!`
/// collapse, whereas dead handles are erased by the canonicalizer.
fn barrier(k: usize) -> String {
    format!(
        r#"level Implementation {{
    var arrived: uint32;

    void worker() {{
        atomic {{ arrived := arrived + 1; }}
        var s: uint32 := 0;
        while (s < {k}) {{
            s := arrived;
        }}
    }}

    void main() {{
{spawns}        var r: uint32 := 0;
        while (r < {k}) {{
            r := arrived;
        }}
        print(r);
    }}
}}
"#,
        spawns = spawn_block("worker", k, false),
    )
}

/// A test-and-set spinlock guarding a shared counter; the lock word is
/// ghost (sequentially consistent), mirroring the corpus idiom but without
/// `$me` so the subject stays tid-opaque. Fire-and-forget spawns; main
/// spins until every worker's fenced increment is visible.
fn spinlock(k: usize) -> String {
    format!(
        r#"level Implementation {{
    var count: uint32;
    ghost var lck: int := 0;

    void worker() {{
        var got: uint32 := 0;
        while (got == 0) {{
            atomic {{
                if (lck == 0) {{
                    lck := 1;
                    got := 1;
                }}
            }}
        }}
        var c: uint32 := count;
        c := c + 1;
        count := c;
        fence;
        atomic {{ lck := 0; }}
    }}

    void main() {{
{spawns}        var r: uint32 := 0;
        while (r < {k}) {{
            r := count;
        }}
        print(r);
    }}
}}
"#,
        spawns = spawn_block("worker", k, false),
    )
}

/// `k` fire-and-forget producers each allocate a cell, publish into it, and
/// atomically bump `filled`; main spins until all slots are filled. The
/// handles are never joined (dead-handle erasure) and the cells leak
/// (heap renumbering across allocation orders).
fn queue(k: usize) -> String {
    format!(
        r#"level Implementation {{
    var filled: uint32;

    void producer() {{
        var cell: ptr<uint32> := malloc(uint32);
        *cell := 7;
        atomic {{ filled := filled + 1; }}
    }}

    void main() {{
{spawns}        var f: uint32 := 0;
        while (f < {k}) {{
            f := filled;
        }}
        print(f);
    }}
}}
"#,
        spawns = spawn_block("producer", k, false),
    )
}

/// One subject of the given shape (`barrier`, `spinlock`, or `queue`) at
/// an arbitrary thread count `k ≥ 1`. The standard grid ([`subjects`])
/// stops at `k = 3`; the spill bench drives barrier and queue at `k ≥ 4`,
/// where the state count grows factorially and the arena footprint
/// outruns small memory caps. Returns `None` for an unknown shape.
pub fn subject(shape: &str, k: usize) -> Option<SymmetricSubject> {
    let gen = match shape {
        "barrier" => barrier as fn(usize) -> String,
        "spinlock" => spinlock,
        "queue" => queue,
        _ => return None,
    };
    Some(SymmetricSubject {
        name: format!("{shape}/k{k}"),
        threads: k,
        source: gen(k),
    })
}

/// All six subjects: barrier, spinlock, queue × k ∈ {2, 3}.
pub fn subjects() -> Vec<SymmetricSubject> {
    let mut out = Vec::new();
    for shape in ["barrier", "spinlock", "queue"] {
        for k in [2usize, 3] {
            out.push(subject(shape, k).expect("known shape"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_sm::{explore, lower, Bounds, Canonicalizer};

    fn program(source: &str) -> armada_sm::Program {
        let pipeline = armada::Pipeline::from_source(source).expect("front end");
        lower(pipeline.typed(), "Implementation").expect("lower")
    }

    #[test]
    fn every_subject_passes_the_symmetry_gate() {
        let subjects = subjects();
        assert_eq!(subjects.len(), 6);
        for subject in &subjects {
            let prog = program(&subject.source);
            let canon = Canonicalizer::new(&prog);
            assert!(
                canon.thread_symmetry_enabled(),
                "{}: gate must accept a tid-opaque subject",
                subject.name
            );
            assert!(
                canon.heap_symmetry_enabled(),
                "{}: no subject prints pointers",
                subject.name
            );
        }
    }

    #[test]
    fn two_thread_subjects_collapse_under_symmetry() {
        // Reduction off: the unreduced state space is closed under tid
        // permutation, so canonical interning is a true quotient and the
        // arena must strictly shrink. (With fusion on the reduced space is
        // not permutation-closed and the representative count can wobble
        // either way; the bench measures that configuration.)
        for subject in subjects().into_iter().filter(|s| s.threads == 2) {
            let prog = program(&subject.source);
            let bounds = Bounds::small().with_reduction(false);
            let off = explore(&prog, &bounds.clone().with_symmetry(false));
            let on = explore(&prog, &bounds.with_symmetry(true));
            assert!(!off.truncated && !on.truncated, "{}", subject.name);
            assert!(
                on.arena.len() < off.arena.len(),
                "{}: expected canonical interning to collapse states \
                 ({} on vs {} off)",
                subject.name,
                on.arena.len(),
                off.arena.len()
            );
        }
    }
}

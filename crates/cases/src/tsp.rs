//! The §2 running example: a multithreaded search for a good (not
//! necessarily optimal) traveling-salesman solution, with the famous *benign
//! race* — the unsynchronized first read of `best_len` whose worst
//! consequence is an unnecessary lock acquisition.
//!
//! The proof follows Figures 3–6 exactly:
//!
//! 1. `Implementation → ArbitraryGuard` (**nondeterministic weakening**,
//!    Figure 4): the racy read becomes `*` and the racy guard becomes
//!    `if (*)`;
//! 2. `ArbitraryGuard → BestLenSequential` (**TSO elimination**, Figure 6):
//!    with the race gone, `best_len` follows the mutex ownership
//!    discipline, so its assignments become sequentially consistent `::=`.

use crate::CaseStudy;

/// Model-scale source: one worker plus main, fixed candidate length, a
/// ghost-modeled mutex, one search round each.
pub const MODEL: &str = r#"
// §2 running example (model scale): find a short tour length, one searcher.
level Implementation {
    var best_len: uint32 := 100;
    ghost var mutex_holder: int := 0;

    // The mutex, modeled as the paper models externs: a concurrency-aware
    // body over ghost state. `lock` blocks until free; `unlock` drains the
    // store buffer (x86 locked ops are flushing) and releases.
    method {:extern} lock() {
        atomic {
            assume mutex_holder == 0;
            mutex_holder := $me;
        }
    }
    method {:extern} unlock() {
        fence;
        atomic {
            assume mutex_holder == $me;
            mutex_holder := 0;
        }
    }

    void worker(len: uint32) {
        var t: uint32 := best_len;
        if (t > len) {
            lock();
            var t2: uint32 := best_len;
            if (t2 > len) {
                best_len := len;
            }
            unlock();
        }
    }

    void main() {
        var a: uint64 := create_thread worker(3);
        join a;
        lock();
        var r: uint32 := best_len;
        unlock();
        print(r);
    }
}

// Figure 3: the racy read and guard are relaxed to arbitrary choices.
level ArbitraryGuard {
    var best_len: uint32 := 100;
    ghost var mutex_holder: int := 0;

    method {:extern} lock() {
        atomic {
            assume mutex_holder == 0;
            mutex_holder := $me;
        }
    }
    method {:extern} unlock() {
        fence;
        atomic {
            assume mutex_holder == $me;
            mutex_holder := 0;
        }
    }

    void worker(len: uint32) {
        var t: uint32 := *;
        if (*) {
            lock();
            var t2: uint32 := best_len;
            if (t2 > len) {
                best_len := len;
            }
            unlock();
        }
    }

    void main() {
        var a: uint64 := create_thread worker(3);
        join a;
        lock();
        var r: uint32 := best_len;
        unlock();
        print(r);
    }
}

// Figure 5: every access to best_len is now under the mutex, so its updates
// become sequentially consistent.
level BestLenSequential {
    var best_len: uint32 := 100;
    ghost var mutex_holder: int := 0;

    method {:extern} lock() {
        atomic {
            assume mutex_holder == 0;
            mutex_holder := $me;
        }
    }
    method {:extern} unlock() {
        fence;
        atomic {
            assume mutex_holder == $me;
            mutex_holder := 0;
        }
    }

    void worker(len: uint32) {
        var t: uint32 := *;
        if (*) {
            lock();
            var t2: uint32 := best_len;
            if (t2 > len) {
                best_len ::= len;
            }
            unlock();
        }
    }

    void main() {
        var a: uint64 := create_thread worker(3);
        join a;
        lock();
        var r: uint32 := best_len;
        unlock();
        print(r);
    }
}

// Figure 4's recipe.
proof ImplementationRefinesArbitraryGuard {
    refinement Implementation ArbitraryGuard
    nondet_weakening
}

// Figure 6's recipe.
proof ArbitraryGuardRefinesBestLenSequential {
    refinement ArbitraryGuard BestLenSequential
    tso_elim best_len "mutex_holder == $me"
}
"#;

/// Paper-scale source (Figure 2's 100 threads × 10,000 candidates), used
/// for front-end and effort accounting only.
pub const PAPER: &str = r#"
level Specification {
    ghost var s: int;
    void main() {
        somehow modifies s ensures valid_soln(s);
        print(s);
    }
    function valid_soln(v: int): bool { v >= 0 }
}

level Implementation {
    struct Solution {
        score: uint32;
        tour: uint32[16];
    }
    var best_solution: Solution;
    var best_len: uint32 := 0xFFFFFFFF;
    var mutex: uint32;

    method {:extern} initialize_mutex(m: ptr<uint32>) modifies *m;
    method {:extern} lock(m: ptr<uint32>) modifies *m;
    method {:extern} unlock(m: ptr<uint32>) modifies *m;
    method {:extern} choose_random_solution(s: ptr<Solution>) modifies *s;
    method {:extern} get_solution_length(s: ptr<Solution>) returns (len: uint32);
    method {:extern} copy_solution(dst: ptr<Solution>, src: ptr<Solution>) modifies *dst;
    method {:extern} print_solution(s: ptr<Solution>);

    void worker() {
        var i: int32 := 0;
        var s: Solution;
        var len: uint32;
        while (i < 10000) {
            choose_random_solution(&s);
            len = get_solution_length(&s);
            if (len < best_len) {
                lock(&mutex);
                if (len < best_len) {
                    best_len := len;
                    copy_solution(&best_solution, &s);
                }
                unlock(&mutex);
            }
            i := i + 1;
        }
    }

    void main() {
        var i: int32 := 0;
        var a: uint64[100];
        initialize_mutex(&mutex);
        while (i < 100) {
            a[i] := create_thread worker();
            i := i + 1;
        }
        i := 0;
        while (i < 100) {
            join a[i];
            i := i + 1;
        }
        print_solution(&best_solution);
    }
}
"#;

/// The running example as a [`CaseStudy`] (not part of Table 1; exercised
/// by tests and the `tsp_search` example).
pub fn case() -> CaseStudy {
    CaseStudy {
        name: "TSP",
        description: "§2 running example: benign racy read, weakened then TSO-eliminated",
        paper_source: PAPER,
        model_source: MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_source_front_end() {
        // The paper-scale source parses, type-checks, and its implementation
        // level is core (the spec level with `somehow` is not compiled).
        let pipeline = armada::Pipeline::from_source(PAPER).unwrap();
        let module = &pipeline.typed().module;
        assert_eq!(module.levels.len(), 2);
        let info = pipeline.typed().level_info("Implementation").unwrap();
        armada_lang::core_check::check_core(module.level("Implementation").unwrap(), info).unwrap();
    }

    #[test]
    fn model_verifies_end_to_end() {
        let (pipeline, report) = case().verify_model().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(
            report.chain_claim().unwrap(),
            "Implementation ⊑ BestLenSequential"
        );
        let effort = pipeline.effort(&report);
        assert!(
            effort.total_generated() > 500,
            "generated proof is substantial"
        );
    }
}

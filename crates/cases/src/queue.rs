//! §6.4 — the Queue case study: the bounded single-producer /
//! single-consumer lock-free queue from the liblfds library (used at AT&T,
//! Red Hat, and Xen), ported to Armada with modulo operators instead of
//! bitmasks to avoid bit-vector reasoning — the paper's exact adaptation.
//!
//! The proof introduces an abstract (ghost) queue, cements the key safety
//! property — a dequeue returns what was enqueued, never garbage, despite
//! the racy ring-buffer slot access — then weakens away the concrete reads
//! and hides the implementation state, leaving an abstract-sequence
//! specification (the paper's "enqueue adds to the back of a sequence").
//!
//! The paper-scale source is also the input to `armada-backend`'s Rust
//! emitter: the benchmarked "Armada (GCC)" and "Armada (CompCertTSO)"
//! queues of Figure 12 are its emitted output (checked in under
//! `armada-runtime` and verified byte-for-byte by a test below).

use crate::CaseStudy;

/// Model-scale source: capacity-2 ring, one producer round, one consumer
/// round.
pub const MODEL: &str = r#"
// §6.4 (model scale): bounded SPSC ring buffer, one element in flight.
level Implementation {
    var elements: uint64[2];
    var read_index: uint64;
    var write_index: uint64;

    void producer() {
        var w: uint64 := write_index;
        var r: uint64 := read_index;
        if (w - r != 2) {
            elements[w % 2] := 7;
            write_index := w + 1;
        }
        fence;
    }

    void main() {
        var t: uint64 := create_thread producer();
        var r2: uint64 := read_index;
        var w2: uint64 := write_index;
        if (r2 != w2) {
            var e: uint64 := elements[r2 % 2];
            read_index := r2 + 1;
            print(e);
        }
        join t;
    }
}

// Level 1: the abstract queue (a ghost sequence recording what was ever
// enqueued), updated at the publication point.
level AbstractQueue {
    var elements: uint64[2];
    var read_index: uint64;
    var write_index: uint64;
    ghost var q: seq<int>;

    void producer() {
        var w: uint64 := write_index;
        var r: uint64 := read_index;
        if (w - r != 2) {
            elements[w % 2] := 7;
            write_index := w + 1;
            q := q + [7];
        }
        fence;
    }

    void main() {
        var t: uint64 := create_thread producer();
        var r2: uint64 := read_index;
        var w2: uint64 := write_index;
        if (r2 != w2) {
            var e: uint64 := elements[r2 % 2];
            read_index := r2 + 1;
            print(e);
        }
        join t;
    }
}

// Level 2: the safety property — a consumed element is the enqueued value,
// not garbage from the racy slot — is cemented at the read.
level Cemented {
    var elements: uint64[2];
    var read_index: uint64;
    var write_index: uint64;
    ghost var q: seq<int>;

    void producer() {
        var w: uint64 := write_index;
        var r: uint64 := read_index;
        if (w - r != 2) {
            elements[w % 2] := 7;
            write_index := w + 1;
            q := q + [7];
        }
        fence;
    }

    void main() {
        var t: uint64 := create_thread producer();
        var r2: uint64 := read_index;
        var w2: uint64 := write_index;
        if (r2 != w2) {
            var e: uint64 := elements[r2 % 2];
            assume e == 7;
            read_index := r2 + 1;
            print(e);
        }
        join t;
    }
}

// Level 3: the concrete reads are weakened to arbitrary choices (the racy
// slot read disappears; the cemented condition carries the knowledge), and
// the observable print becomes the abstract value.
level Weak {
    var elements: uint64[2];
    var read_index: uint64;
    var write_index: uint64;
    ghost var q: seq<int>;

    void producer() {
        var w: uint64 := *;
        var r: uint64 := *;
        if (w - r != 2) {
            elements[w % 2] := 7;
            write_index := w + 1;
            q := q + [7];
        }
        fence;
    }

    void main() {
        var t: uint64 := create_thread producer();
        var r2: uint64 := *;
        var w2: uint64 := *;
        if (r2 != w2) {
            var e: uint64 := *;
            assume e == 7;
            read_index := r2 + 1;
            print(7);
        }
        join t;
    }
}

// Level 4 (spec): the ring buffer is hidden; what remains is the abstract
// queue — enqueue appends to the back of a sequence, dequeue may observe
// only enqueued values.
level Spec {
    ghost var q: seq<int>;

    void producer() {
        var w: uint64 := *;
        var r: uint64 := *;
        if (w - r != 2) {
            q := q + [7];
        }
        fence;
    }

    void main() {
        var t: uint64 := create_thread producer();
        var r2: uint64 := *;
        var w2: uint64 := *;
        if (r2 != w2) {
            var e: uint64 := *;
            assume e == 7;
            print(7);
        }
        join t;
    }
}

proof ImplementationRefinesAbstractQueue {
    refinement Implementation AbstractQueue
    var_intro q
}

proof AbstractQueueRefinesCemented {
    refinement AbstractQueue Cemented
    assume_intro
}

proof CementedRefinesWeak {
    refinement Cemented Weak
    nondet_weakening
}

proof WeakRefinesSpec {
    refinement Weak Spec
    var_hiding elements read_index write_index
}
"#;

/// Paper-scale source: the 512-slot queue as a library level — the exact
/// input to the Rust emitter that produces the benchmarked code.
pub const PAPER: &str = r#"
level Implementation {
    var elements: uint64[512];
    var read_index: uint64;
    var write_index: uint64;

    method enqueue(v: uint64) returns (ok: bool) {
        var w: uint64 := write_index;
        var r: uint64 := read_index;
        if (w - r == 512) {
            return false;
        }
        elements[w % 512] := v;
        write_index := w + 1;
        return true;
    }

    method dequeue() returns (v: uint64) {
        var r: uint64 := read_index;
        var w: uint64 := write_index;
        if (r == w) {
            return 18446744073709551615;
        }
        var e: uint64 := elements[r % 512];
        read_index := r + 1;
        return e;
    }
}
"#;

/// The Queue case study.
pub fn case() -> CaseStudy {
    CaseStudy {
        name: "Queue",
        description: "Lock-free queue from liblfds",
        paper_source: PAPER,
        model_source: MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_backend::{emit_rust, RustMode};

    #[test]
    fn model_verifies_end_to_end() {
        let (pipeline, report) = case().verify_model().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Implementation ⊑ Spec");
        let effort = pipeline.effort(&report);
        assert_eq!(effort.recipes.len(), 4);
    }

    #[test]
    fn paper_source_front_end() {
        case().check_paper_source().unwrap();
    }

    #[test]
    fn generated_queue_matches_emitter_output() {
        let module = armada_lang::parse_module(PAPER).unwrap();
        let typed = armada_lang::check_module(&module).unwrap();
        let level = module.level("Implementation").unwrap();
        let info = typed.level_info("Implementation").unwrap();

        let hw = emit_rust(level, info, RustMode::HwTso).unwrap();
        assert_eq!(
            hw,
            armada_runtime::GENERATED_SOURCE,
            "crates/runtime/src/generated.rs is stale; regenerate with \
             `cargo run -p armada-cases --bin gen_queue`"
        );
        let conservative = emit_rust(level, info, RustMode::Conservative).unwrap();
        assert_eq!(
            conservative,
            armada_runtime::GENERATED_CONSERVATIVE_SOURCE,
            "crates/runtime/src/generated_conservative.rs is stale; regenerate with \
             `cargo run -p armada-cases --bin gen_queue`"
        );
    }

    #[test]
    fn generated_queue_behaves_like_the_runtime_port() {
        // The emitted code and the hand-ported liblfds queue agree on a
        // sequential trace.
        let generated = armada_runtime::generated::Implementation::new();
        let (producer, consumer) = armada_runtime::spsc::spsc_queue::<
            armada_runtime::spsc::Modulo,
            armada_runtime::spsc::HwTso,
        >(512);
        for i in 0..600 {
            assert_eq!(generated.enqueue(i), producer.try_enqueue(i), "enqueue {i}");
        }
        for _ in 0..600 {
            let expected = consumer.try_dequeue();
            let got = generated.dequeue();
            match expected {
                Some(v) => assert_eq!(got, v),
                None => assert_eq!(got, u64::MAX),
            }
        }
    }

    #[test]
    fn torn_publication_order_is_caught() {
        // Publishing write_index BEFORE the element would let the consumer
        // read garbage; the cemented condition must fail.
        let broken = MODEL.replace(
            "            elements[w % 2] := 7;\n            write_index := w + 1;",
            "            write_index := w + 1;\n            elements[w % 2] := 7;",
        );
        let pipeline = armada::Pipeline::from_source(&broken).unwrap();
        let report = pipeline.run().unwrap();
        assert!(
            !report.verified(),
            "index-before-element publication must break the proof"
        );
    }
}

//! §6.2 — the Pointers case study: a program writing through two distinct
//! pointers refines a program performing those writes in the opposite
//! order. The refinement is correct exactly because Steensgaard's analysis
//! proves the pointers never alias; with `use_regions` in the recipe, the
//! weakening strategy discharges the reordering via region separation.

use crate::CaseStudy;

/// Model-scale source: two `malloc`ed cells, writes swapped between levels.
pub const MODEL: &str = r#"
// §6.2: writes via distinct pointers of the same type.
level Implementation {
    void main() {
        var p: ptr<uint32> := malloc(uint32);
        var q: ptr<uint32> := malloc(uint32);
        *p := 1;
        *q := 2;
        var a: uint32 := *p;
        var b: uint32 := *q;
        print(a);
        print(b);
        dealloc p;
        dealloc q;
    }
}

// The same program with the two stores reordered.
level Reordered {
    void main() {
        var p: ptr<uint32> := malloc(uint32);
        var q: ptr<uint32> := malloc(uint32);
        *q := 2;
        *p := 1;
        var a: uint32 := *p;
        var b: uint32 := *q;
        print(a);
        print(b);
        dealloc p;
        dealloc q;
    }
}

proof ImplementationRefinesReordered {
    refinement Implementation Reordered
    weakening
    use_regions
}
"#;

/// Paper-scale source: more pointers, aliased and unaliased, exercising the
/// region assignment.
pub const PAPER: &str = r#"
level Implementation {
    struct Pair {
        first: uint32;
        second: uint32;
    }
    void main() {
        var p: ptr<uint32> := malloc(uint32);
        var q: ptr<uint32> := malloc(uint32);
        var r: ptr<uint32> := p;
        var pair: ptr<Pair> := malloc(Pair);
        var arr: ptr<uint32> := calloc(uint32, 64);
        var elem: ptr<uint32> := arr + 7;
        *p := 1;
        *q := 2;
        *elem := 3;
        var a: uint32 := *r;
        var b: uint32 := *q;
        var c: uint32 := *(arr + 7);
        print(a);
        print(b);
        print(c);
        dealloc p;
        dealloc q;
        dealloc pair;
        dealloc arr;
    }
}

level Reordered {
    struct Pair {
        first: uint32;
        second: uint32;
    }
    void main() {
        var p: ptr<uint32> := malloc(uint32);
        var q: ptr<uint32> := malloc(uint32);
        var r: ptr<uint32> := p;
        var pair: ptr<Pair> := malloc(Pair);
        var arr: ptr<uint32> := calloc(uint32, 64);
        var elem: ptr<uint32> := arr + 7;
        *q := 2;
        *p := 1;
        *elem := 3;
        var a: uint32 := *r;
        var b: uint32 := *q;
        var c: uint32 := *(arr + 7);
        print(a);
        print(b);
        print(c);
        dealloc p;
        dealloc q;
        dealloc pair;
        dealloc arr;
    }
}

proof ImplementationRefinesReordered {
    refinement Implementation Reordered
    weakening
    use_regions
}
"#;

/// The Pointers case study.
pub fn case() -> CaseStudy {
    CaseStudy {
        name: "Pointers",
        description: "Program using multiple pointers; reordering justified by alias analysis",
        paper_source: PAPER,
        model_source: MODEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_verifies_end_to_end() {
        let (_, report) = case().verify_model().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Implementation ⊑ Reordered");
        // The proof hinges on a region-separation obligation.
        assert!(report.strategy_reports[0]
            .obligations
            .iter()
            .any(|o| o.obligation.kind.label() == "region-separation"));
    }

    #[test]
    fn without_regions_the_reordering_is_not_justified() {
        let source = MODEL.replace("    use_regions\n", "");
        let pipeline = armada::Pipeline::from_source(&source).unwrap();
        let mut pipeline = pipeline;
        pipeline.semantic_check = false; // isolate the strategy verdict
        let report = pipeline.run().unwrap();
        assert!(
            !report.verified(),
            "dropping use_regions must leave the swap unjustified"
        );
    }

    #[test]
    fn paper_source_front_end() {
        case().check_paper_source().unwrap();
    }

    #[test]
    fn aliased_reordering_is_refuted() {
        // r aliases p; swapping *p and *r writes is NOT justified.
        let source = r#"
            level Implementation {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var r: ptr<uint32> := p;
                    *p := 1;
                    *r := 2;
                    var a: uint32 := *p;
                    print(a);
                }
            }
            level Reordered {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var r: ptr<uint32> := p;
                    *r := 2;
                    *p := 1;
                    var a: uint32 := *p;
                    print(a);
                }
            }
            proof P {
                refinement Implementation Reordered
                weakening
                use_regions
            }
        "#;
        let mut pipeline = armada::Pipeline::from_source(source).unwrap();
        pipeline.semantic_check = false;
        let report = pipeline.run().unwrap();
        assert!(!report.verified());
        assert!(report.failure_summary().contains("alias"));
    }
}

//! # armada-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5–§6). Each artifact has a binary printing the same rows or
//! series the paper reports:
//!
//! | artifact | binary | paper |
//! |---|---|---|
//! | Table 1 (case studies, verification status) | `table1` | §6, Table 1 |
//! | Effort tables (program/recipe/generated SLOC) | `effort_table` | §6.1–6.4 |
//! | Queue throughput | `figure12` | Figure 12 |
//! | Implementation inventory | `impl_inventory` | §5 |
//!
//! The `queue_throughput` and `pipeline` bench targets track the same
//! quantities under the in-repo [`harness`] protocol (warmup + repeated
//! timed trials with mean/95%-CI), and `parallel_speedup` measures the
//! multi-core refinement checker; results land in `BENCH_*.json` via the
//! hand-rolled [`json`] writer. No crates.io dependencies are involved
//! (hermetic-build policy, see DESIGN.md).
//!
//! Absolute numbers differ from the paper's (their testbed was an 8-core
//! Xeon with GCC 6.3 and CompCertTSO 1.13; ours is whatever container this
//! runs in, and the "CompCertTSO" column is the conservative-emission
//! analogue described in DESIGN.md). The *shape* — which variant wins and
//! by roughly what factor — is the reproduction target.

pub mod harness;
pub mod json;
pub mod report;

use armada_runtime::generated::Implementation as GeneratedHwTso;
use armada_runtime::generated_conservative::Implementation as GeneratedConservative;
use armada_runtime::measure::{queue_throughput_ops_per_sec, Stats};
use armada_runtime::spsc::{spsc_queue, Bitmask, HwTso, Modulo};
use std::sync::Arc;

/// Queue size used throughout Figure 12 (the paper uses 512).
pub const QUEUE_SIZE: usize = 512;

/// One Figure-12 series.
#[derive(Debug, Clone)]
pub struct Figure12Row {
    /// Variant name (paper's x-axis label).
    pub name: &'static str,
    /// Throughput statistics (ops/sec).
    pub stats: Stats,
}

/// Runs one throughput trial of the named Figure-12 variant.
///
/// # Panics
///
/// Panics on an unknown variant name.
pub fn figure12_trial(variant: &str, ops: u64) -> f64 {
    match variant {
        "liblfds (hw-tso)" => {
            let (producer, consumer) = spsc_queue::<Bitmask, HwTso>(QUEUE_SIZE);
            queue_throughput_ops_per_sec(
                ops,
                move || Box::new(move |v| producer.try_enqueue(v)),
                move || Box::new(move || consumer.try_dequeue()),
            )
        }
        "liblfds-modulo (hw-tso)" => {
            let (producer, consumer) = spsc_queue::<Modulo, HwTso>(QUEUE_SIZE);
            queue_throughput_ops_per_sec(
                ops,
                move || Box::new(move |v| producer.try_enqueue(v)),
                move || Box::new(move || consumer.try_dequeue()),
            )
        }
        "Armada (hw-tso)" => {
            let queue = Arc::new(GeneratedHwTso::new());
            let (enq, deq) = (Arc::clone(&queue), queue);
            queue_throughput_ops_per_sec(
                ops,
                move || Box::new(move |v| enq.enqueue(v)),
                move || {
                    Box::new(move || {
                        let value = deq.dequeue();
                        (value != u64::MAX).then_some(value)
                    })
                },
            )
        }
        "Armada (conservative)" => {
            let queue = Arc::new(GeneratedConservative::new());
            let (enq, deq) = (Arc::clone(&queue), queue);
            queue_throughput_ops_per_sec(
                ops,
                move || Box::new(move |v| enq.enqueue(v)),
                move || {
                    Box::new(move || {
                        let value = deq.dequeue();
                        (value != u64::MAX).then_some(value)
                    })
                },
            )
        }
        other => panic!("unknown Figure 12 variant `{other}`"),
    }
}

/// The four Figure-12 variants, in the paper's order.
pub const FIGURE12_VARIANTS: [&str; 4] = [
    "liblfds (hw-tso)",
    "liblfds-modulo (hw-tso)",
    "Armada (hw-tso)",
    "Armada (conservative)",
];

/// Runs the full Figure-12 sweep: `trials` trials of `ops` operations per
/// variant.
pub fn figure12(ops: u64, trials: usize) -> Vec<Figure12Row> {
    FIGURE12_VARIANTS
        .iter()
        .map(|&name| {
            let samples: Vec<f64> = (0..trials).map(|_| figure12_trial(name, ops)).collect();
            Figure12Row {
                name,
                stats: Stats::of(&samples),
            }
        })
        .collect()
}

/// Renders Figure-12 rows as the paper's normalized table.
pub fn render_figure12(rows: &[Figure12Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>14} {:>12} {:>10}\n",
        "variant", "ops/sec", "95% CI", "vs liblfds"
    ));
    let baseline = rows.first().map(|r| r.stats.mean).unwrap_or(1.0);
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>14.3e} {:>12.1e} {:>9.0}%\n",
            row.name,
            row.stats.mean,
            row.stats.ci95,
            100.0 * row.stats.mean / baseline
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_a_small_trial() {
        for variant in FIGURE12_VARIANTS {
            let throughput = figure12_trial(variant, 5_000);
            assert!(throughput > 0.0, "{variant}");
        }
    }

    #[test]
    fn figure12_renders_normalized_table() {
        let rows = figure12(2_000, 2);
        let table = render_figure12(&rows);
        assert!(table.contains("liblfds (hw-tso)"));
        assert!(table.contains("vs liblfds"));
        assert_eq!(rows.len(), 4);
    }
}

//! Certificate-cache effectiveness: cold-vs-warm pipeline wall time and
//! hit rates over the model-scale case studies.
//!
//! The crash-safe cert store exists for *resumability*, but the same
//! mechanism is a cache: a rerun over an unchanged module skips every
//! semantic check. This bench quantifies that — for each case study it
//! runs the full pipeline against an empty store (all misses, checks run)
//! and again against the populated store (all hits, checks skipped),
//! asserting both runs agree and reporting the speedup.
//!
//!     cargo run --release -p armada-bench --bin cert_cache [-- --quick]

use std::time::Instant;

use armada::verify::store::CertStore;
use armada::Pipeline;
use armada_cases::all_cases;

fn main() {
    let quick =
        std::env::args().any(|a| a == "--quick") || std::env::var("ARMADA_BENCH_QUICK").is_ok();
    let root = std::env::temp_dir().join("armada_bench_cert_cache");
    let store = CertStore::open(&root);

    println!("Certificate-cache effectiveness (cold store vs. warm store)");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "case", "cold (s)", "warm (s)", "hits", "misses", "speedup"
    );
    println!("{}", "-".repeat(58));

    let cases = all_cases();
    let cases = if quick { &cases[..1] } else { &cases[..] };
    let mut failures = 0;
    for case in cases {
        store.clear().expect("clear cert store");
        let run = |label: &str| {
            let pipeline = Pipeline::from_source(case.model_source)
                .unwrap_or_else(|e| panic!("{}: front end: {e}", case.name))
                .with_cert_store(CertStore::open(&root));
            let start = Instant::now();
            let report = pipeline
                .run()
                .unwrap_or_else(|e| panic!("{}: {label} run: {e}", case.name));
            (start.elapsed().as_secs_f64(), report)
        };
        let (cold_secs, cold) = run("cold");
        let (warm_secs, warm) = run("warm");
        if format!("{:?}", warm.chain) != format!("{:?}", cold.chain)
            || warm.verified() != cold.verified()
        {
            println!("{:<10} cached run DIVERGED from cold run", case.name);
            failures += 1;
            continue;
        }
        if warm.cache_hits() == 0 && cold.cache_misses() > 0 {
            println!("{:<10} warm run had no cache hits", case.name);
            failures += 1;
            continue;
        }
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>8} {:>8} {:>8.1}x",
            case.name,
            cold_secs,
            warm_secs,
            warm.cache_hits(),
            cold.cache_misses(),
            cold_secs / warm_secs.max(1e-9)
        );
    }
    let _ = store.clear();
    if failures > 0 {
        eprintln!("cert_cache: {failures} case(s) diverged");
        std::process::exit(1);
    }
}

//! Regenerates the **§5 implementation inventory**: the paper reports its
//! tool's component sizes (state-machine translator 13,191 C# SLOC; proof
//! framework 3,322 C#; CompCertTSO backend 1,767; proof library 5,618
//! Dafny; common state-machine definitions 873 Dafny). This binary prints
//! the corresponding component sizes of this reproduction by counting the
//! workspace's own sources.

use std::fs;
use std::path::Path;

fn crate_sloc(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += crate_sloc(&path);
            } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
                if let Ok(source) = fs::read_to_string(&path) {
                    total += armada_lang::count_sloc(&source);
                }
            }
        }
    }
    total
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent);
    let Some(root) = root else {
        eprintln!("cannot locate workspace root");
        std::process::exit(1);
    };
    println!("§5 implementation inventory (this reproduction, Rust SLOC)");
    println!("{:<56} {:>8}", "component (paper analogue)", "SLOC");
    println!("{}", "-".repeat(66));
    let rows: [(&str, &str); 10] = [
        (
            "crates/lang",
            "language front end (part of the 13,191-SLOC translator)",
        ),
        (
            "crates/sm",
            "state-machine translation + semantics (translator)",
        ),
        ("crates/proof", "proof framework (paper: 3,322 SLOC C#)"),
        (
            "crates/strategies",
            "strategy proof generators (proof framework)",
        ),
        (
            "crates/verify",
            "refinement checking (paper: Dafny/Z3 toolchain)",
        ),
        ("crates/regions", "alias analysis (§4.1.1)"),
        (
            "crates/backend",
            "code-generation backend (paper: 1,767 SLOC)",
        ),
        (
            "crates/runtime",
            "runtime substrate (paper: liblfds + pthreads)",
        ),
        ("crates/cases", "case studies (§6)"),
        ("crates/bench", "evaluation harness"),
    ];
    let mut total = 0;
    for (dir, label) in rows {
        let sloc = crate_sloc(&root.join(dir).join("src"));
        total += sloc;
        println!("{label:<56} {sloc:>8}");
    }
    let core = crate_sloc(&root.join("crates/core/src"));
    total += core;
    println!("{:<56} {core:>8}", "tool facade (crates/core)");
    println!("{}", "-".repeat(66));
    println!("{:<56} {total:>8}", "total");
}

//! Speedup benchmark for the multi-core refinement checker: runs the same
//! bounded refinement checks at `jobs = 1` and `jobs = N` and reports the
//! wall-clock ratio. Because parallel and serial runs are byte-identical by
//! construction, the two timings are measuring exactly the same search.
//!
//! ```text
//! cargo run --release -p armada-bench --bin parallel_speedup [-- --jobs N] [-- --quick]
//! ```
//!
//! Writes `results/BENCH_parallel_speedup.json` (and prints the rows).
//! `N` defaults to the machine's available parallelism; on a single-core
//! host the expected speedup is ~1.0 (the determinism, not the scaling, is
//! checkable there).

use armada::proof::relation::StandardRelation;
use armada::sm::lower;
use armada::verify::{check_refinement, SimConfig};
use armada_bench::harness::bench;
use armada_bench::json::Json;

struct Subject {
    name: &'static str,
    source: &'static str,
    low: &'static str,
    high: &'static str,
}

const SUBJECTS: &[Subject] = &[
    Subject {
        name: "queue/Weak ⊑ Spec",
        source: armada_cases::queue::MODEL,
        low: "Weak",
        high: "Spec",
    },
    Subject {
        name: "queue/Implementation ⊑ AbstractQueue",
        source: armada_cases::queue::MODEL,
        low: "Implementation",
        high: "AbstractQueue",
    },
    Subject {
        name: "mcs_lock/Implementation ⊑ Owned",
        source: armada_cases::mcs_lock::MODEL,
        low: "Implementation",
        high: "Owned",
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let samples = if quick { 2 } else { 5 };
    println!("parallel_speedup: jobs=1 vs jobs={jobs}, {samples} trials per row");

    let mut rows: Vec<Json> = Vec::new();
    for subject in SUBJECTS {
        let pipeline = armada::Pipeline::from_source(subject.source).expect("front end");
        let typed = pipeline.typed();
        let low = lower(typed, subject.low).expect("lower low");
        let high = lower(typed, subject.high).expect("lower high");
        let relation = StandardRelation::new(typed.module.relation());

        let serial_config = SimConfig::default();
        let parallel_config = SimConfig::default().with_jobs(jobs);
        // Sanity: identical results regardless of job count (certs carry
        // node and transition counts, so this is a strong check).
        let serial_outcome = check_refinement(&low, &high, &relation, &serial_config);
        let parallel_outcome = check_refinement(&low, &high, &relation, &parallel_config);
        match (&serial_outcome, &parallel_outcome) {
            (Ok(s), Ok(p)) => assert_eq!(s, p, "{}", subject.name),
            (Err(s), Err(p)) => {
                assert_eq!(s.to_string(), p.to_string(), "{}", subject.name)
            }
            _ => panic!("{}: verdict differs across job counts", subject.name),
        }

        let serial = bench(&format!("{} [jobs=1]", subject.name), samples, || {
            let _ = std::hint::black_box(check_refinement(&low, &high, &relation, &serial_config));
        });
        let parallel = bench(&format!("{} [jobs={jobs}]", subject.name), samples, || {
            let _ =
                std::hint::black_box(check_refinement(&low, &high, &relation, &parallel_config));
        });
        let speedup = serial.secs_per_iter.mean / parallel.secs_per_iter.mean;
        println!("    -> speedup {speedup:.2}x");
        rows.push(Json::obj(vec![
            ("subject", Json::str(subject.name)),
            ("serial_secs", Json::Num(serial.secs_per_iter.mean)),
            ("parallel_secs", Json::Num(parallel.secs_per_iter.mean)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let report = Json::obj(vec![
        ("bench", Json::str("parallel_speedup")),
        ("jobs", Json::int(jobs)),
        ("samples", Json::int(samples)),
        ("rows", Json::Arr(rows)),
    ]);
    let path = "results/BENCH_parallel_speedup.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err} (printing instead)\n{report}"),
    }
}

//! Fault-fuzzing campaign benchmark: sweeps the shipped `specs/*.arm`
//! corpus through `armada::fuzz::run_campaign` — 64 seeds (8 under
//! `--quick` / `ARMADA_BENCH_QUICK`) at jobs ∈ {1, 4} — and records the
//! campaign's shape: runs executed, invariant checks evaluated, faults
//! injected per fate, violations found (zero on a healthy pipeline), and
//! whether the grid exercised every fate in the taxonomy.
//!
//! ```text
//! cargo run --release -p armada-bench --bin fuzz_campaign [-- --quick] [-- --jobs N]
//! ```
//!
//! Writes `results/BENCH_fuzz.json` and top-level `BENCH_fuzz.json`
//! (stable `{"name","config","samples","summary"}` schema). The campaign
//! itself is deterministic — same grid, byte-identical campaign JSON —
//! which this bench double-checks by running the grid twice and comparing.

use std::time::Instant;

use armada::fuzz::{run_campaign, FuzzConfig, FuzzSubject};
use armada_bench::json::Json;
use armada_bench::report;

fn spec_corpus() -> Vec<FuzzSubject> {
    let dir = if std::path::Path::new("specs").is_dir() {
        "specs".to_string()
    } else {
        format!("{}/../../specs", env!("CARGO_MANIFEST_DIR"))
    };
    let mut paths: Vec<String> = std::fs::read_dir(&dir)
        .expect("read specs/")
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension().is_some_and(|ext| ext == "arm"))
                .then(|| path.to_str().expect("utf8 path").to_string())
        })
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "expected the full spec corpus in {dir}");
    paths
        .iter()
        .map(|p| FuzzSubject::from_path(p).expect("spec readable"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1);
    let seeds: u64 = if quick { 8 } else { 64 };
    println!("fuzz_campaign: {seeds} seeds over the spec corpus, jobs {{1, {jobs}}}");

    let subjects = spec_corpus();
    let config = FuzzConfig {
        seeds: (0..seeds).collect(),
        jobs: if jobs > 1 { vec![1, jobs] } else { vec![1] },
        scratch_root: std::env::temp_dir()
            .join(format!("armada-bench-fuzz-{}", std::process::id())),
        ..FuzzConfig::default()
    };

    let start = Instant::now();
    let campaign = run_campaign(&subjects, &config);
    let secs = start.elapsed().as_secs_f64();
    // The campaign report is a pure function of the grid; a rerun must be
    // byte-identical or the fuzzer itself is nondeterministic.
    let rerun = run_campaign(&subjects, &config);
    assert_eq!(
        campaign.to_json(),
        rerun.to_json(),
        "campaign report not deterministic across reruns"
    );

    println!(
        "  {} subjects × {seeds} seeds: {} runs, {} checks, {} faults, \
         {} violations in {:.2}s (rerun byte-identical)",
        campaign.subjects.len(),
        campaign.runs,
        campaign.checks,
        campaign.total_injected(),
        campaign.violations.len(),
        secs
    );

    let rows: Vec<Json> = campaign
        .injected
        .iter()
        .map(|&(fate, count)| {
            Json::obj(vec![
                ("fate", Json::str(fate)),
                ("injected", Json::int(count)),
            ])
        })
        .collect();
    let config_json = Json::obj(vec![
        ("subjects", Json::int(campaign.subjects.len())),
        ("seeds", Json::int(seeds as usize)),
        ("jobs_grid", Json::str(format!("{:?}", campaign.jobs))),
        ("quick", Json::Bool(quick)),
    ]);
    let summary = Json::obj(vec![
        ("runs", Json::int(campaign.runs)),
        ("checks", Json::int(campaign.checks)),
        ("faults_injected", Json::int(campaign.total_injected())),
        ("violations", Json::int(campaign.violations.len())),
        (
            "all_fates_injected",
            Json::Bool(campaign.all_fates_injected()),
        ),
        ("deterministic_rerun", Json::Bool(true)),
        ("campaign_secs", Json::Num(secs)),
    ]);
    let doc = report::report("fuzz", config_json, rows, summary);
    report::write("fuzz", &doc);
    assert!(
        campaign.ok(),
        "fuzz campaign found violations:\n{}",
        campaign.to_json()
    );
}

//! Stage-pipeline scaling benchmark: explores a wide-frontier TSO subject
//! through the state-space engine's pinned-role pipeline (ingress →
//! explore → subsume → commit over SPSC rings) at jobs ∈ {1, 2, 4}, and
//! reports per job count:
//!
//! - wall time and effective states/sec (interned states divided by mean
//!   wall time — the pipeline's headline throughput metric);
//! - the `--telemetry` overhead as a median of paired back-to-back ratios
//!   (load drift on a shared box poisons unpaired comparisons; pairing and
//!   order-alternation are the same discipline `examples/telemetry_gate.rs`
//!   uses to enforce the <2% budget). The overhead is clamped at zero — a
//!   negative measurement is physically impossible, so its magnitude is
//!   reported separately as `noise_floor`;
//! - speedup versus the jobs=1 inline pipeline.
//!
//! Every run asserts the interned state count against a reference
//! exploration first, so the timings only ever measure byte-identical
//! work (jobs=1 ≡ jobs=N is the engine's core invariant).
//!
//! ```text
//! cargo run --release -p armada-bench --bin pipeline_scaling [-- --quick]
//! ```
//!
//! Writes `results/BENCH_pipeline.json` and top-level `BENCH_pipeline.json`
//! (stable `{"name","config","samples","summary"}` schema).

use armada::sm::{explore, explore_with_telemetry, lower, Bounds};
use armada_bench::harness::bench;
use armada_bench::json::Json;
use armada_bench::report;

/// Two racing writer threads of nondeterministic TSO writes: the frontier
/// widens into waves of hundreds of states, which is what the pipeline's
/// slot round-robin actually has to keep fed.
const WIDE: &str = r#"level L {
    var a: uint32;
    var b: uint32;
    void w1() { a := *; a := *; }
    void w2() { b := *; b := *; }
    void main() {
        var t1: uint64 := create_thread w1();
        var t2: uint64 := create_thread w2();
        join t1;
        join t2;
    }
}"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let samples = if quick { 2 } else { 4 };
    let job_grid = [1usize, 2, 4];
    println!("pipeline_scaling: {samples} trials per job count, jobs {job_grid:?}");

    let module = armada::lang::parse_module(WIDE).expect("parse");
    let typed = armada::lang::check_module(&module).expect("check");
    let program = lower(&typed, "L").expect("lower");

    // Reference run: pins the byte-identity expectation for every trial.
    let reference = explore(&program, &Bounds::small());
    assert!(!reference.truncated, "subject must fit the bounds");
    let states = reference.arena.len();
    let transitions = reference.transitions;
    println!("  subject: {states} states, {transitions} transitions");

    let mut rows: Vec<Json> = Vec::new();
    let mut serial_secs = 0.0f64;
    let mut best_speedup = 1.0f64;
    let mut worst_overhead = 0.0f64;
    for &jobs in &job_grid {
        let bounds = Bounds::small().with_jobs(jobs);
        let plain = bench(&format!("explore/jobs={jobs}"), samples, || {
            let e = explore(&program, &bounds);
            assert_eq!(e.arena.len(), states);
            assert_eq!(e.transitions, transitions);
        })
        .secs_per_iter
        .mean
        .max(1e-9);
        // Telemetry overhead: median of paired ratios, order-alternated —
        // an unpaired mean comparison on a drifting box reads as tens of
        // percent of pure noise.
        let timed_plain = || {
            let t = std::time::Instant::now();
            let e = explore(&program, &bounds);
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(e.arena.len(), states);
            secs
        };
        let timed_tel = || {
            let t = std::time::Instant::now();
            let (e, tel) = explore_with_telemetry(&program, &bounds);
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(e.arena.len(), states);
            assert!(!tel.is_empty());
            secs
        };
        let pairs = samples * 2;
        let mut ratios = Vec::with_capacity(pairs);
        let mut tel_secs = 0.0;
        for pair in 0..pairs {
            let (p, t) = if pair % 2 == 0 {
                let p = timed_plain();
                let t = timed_tel();
                (p, t)
            } else {
                let t = timed_tel();
                let p = timed_plain();
                (p, t)
            };
            tel_secs += t;
            ratios.push(t / p);
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = (ratios[pairs / 2 - 1] + ratios[pairs / 2]) / 2.0;
        let with_tel = (tel_secs / pairs as f64).max(1e-9);
        if jobs == 1 {
            serial_secs = plain;
        }
        let states_per_sec = states as f64 / plain;
        // A median ratio below 1.0 means the instrumented run measured
        // *faster* than the plain one — impossible as a real effect, so it
        // is run-to-run noise. Clamp the overhead at zero and report the
        // magnitude separately as `noise_floor`: the smallest overhead
        // this host could have distinguished from nothing.
        let overhead = (median_ratio - 1.0).max(0.0);
        let noise_floor = (1.0 - median_ratio).max(0.0);
        let speedup = serial_secs / plain;
        best_speedup = best_speedup.max(speedup);
        worst_overhead = worst_overhead.max(overhead);
        println!(
            "  jobs={jobs}: {:.1} ms, {:.0} states/sec, speedup {:.2}x, \
             telemetry overhead {:+.1}% (noise floor {:.1}%)",
            plain * 1e3,
            states_per_sec,
            speedup,
            overhead * 1e2,
            noise_floor * 1e2,
        );
        rows.push(Json::obj(vec![
            ("jobs", Json::int(jobs)),
            ("mean_ms", Json::Num(plain * 1e3)),
            ("states_per_sec", Json::Num(states_per_sec)),
            ("mean_ms_telemetry", Json::Num(with_tel * 1e3)),
            ("telemetry_overhead", Json::Num(overhead)),
            ("noise_floor", Json::Num(noise_floor)),
            ("speedup_vs_serial", Json::Num(speedup)),
        ]));
    }

    // One instrumented jobs=1 run exports the per-stage histograms into
    // the report: latency quantile bounds are power-of-two bucket upper
    // bounds (ns), occupancy is items per recorded batch.
    let (_, tel) = explore_with_telemetry(&program, &Bounds::small());
    let stages = [
        armada_runtime::telemetry::Stage::Ingress,
        armada_runtime::telemetry::Stage::Explore,
        armada_runtime::telemetry::Stage::Subsume,
        armada_runtime::telemetry::Stage::Commit,
    ];
    let histograms: Vec<Json> = stages
        .iter()
        .map(|&stage| {
            let latency = tel.latency(stage);
            let occupancy = tel.occupancy(stage);
            Json::obj(vec![
                ("stage", Json::str(stage.label())),
                ("latency_batches", Json::int(latency.count() as usize)),
                ("latency_mean_ns", Json::Num(latency.mean())),
                (
                    "latency_p50_ns",
                    Json::int(latency.quantile_bound(0.50) as usize),
                ),
                (
                    "latency_p99_ns",
                    Json::int(latency.quantile_bound(0.99) as usize),
                ),
                ("occupancy_batches", Json::int(occupancy.count() as usize)),
                ("occupancy_mean_items", Json::Num(occupancy.mean())),
            ])
        })
        .collect();

    let config = Json::obj(vec![
        ("subject", Json::str("wide_tso_writers")),
        ("jobs_grid", Json::str("1,2,4")),
        ("samples", Json::int(samples)),
        ("quick", Json::Bool(quick)),
    ]);
    let summary = Json::obj(vec![
        ("states", Json::int(states)),
        ("transitions", Json::int(transitions)),
        ("best_speedup", Json::Num(best_speedup)),
        ("worst_telemetry_overhead", Json::Num(worst_overhead)),
        ("stage_histograms", Json::Arr(histograms)),
    ]);
    let doc = report::report("pipeline", config, rows, summary);
    report::write("pipeline", &doc);
}

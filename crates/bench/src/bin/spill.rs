//! Spillable-state-space benchmark: the "states explored per GB" axis.
//!
//! Drives symmetric subjects at `k ≥ 4` — where the arena footprint is
//! large enough for a memory cap to matter — through the state-space
//! engine three ways per subject:
//!
//! 1. **resident** — the plain all-in-memory exploration (the reference:
//!    every capped run must intern exactly this state count);
//! 2. **footprint** — the same exploration through the pager at an
//!    unbounded cap, to measure the total encoded arena footprint without
//!    evicting anything;
//! 3. **spilled** — the exploration under `mem_cap = footprint / 4` at
//!    jobs ∈ {1, 4}: cold pages evict to disk and fault back on demand,
//!    and the run must still intern the identical state count.
//!
//! The headline axis is **states per GB of peak resident arena**: how much
//! state space a fixed memory budget buys. A spilled run's peak residency
//! is pinned near the cap, so its states-per-GB multiplies by roughly the
//! footprint/cap ratio — that multiplier (at the cost of the reported
//! wall-time ratio) is the whole point of the pager.
//!
//! ```text
//! cargo run --release -p armada-bench --bin spill [-- --quick|--smoke]
//! ```
//!
//! `--quick` runs one subject at one trial; `--smoke` additionally drops
//! to `k = 3` (a seconds-long wiring gate for `scripts/verify.sh`).
//! Writes `results/BENCH_spill.json` and top-level `BENCH_spill.json`
//! (stable `{"name","config","samples","summary"}` schema).

use armada::sm::{explore, explore_with_telemetry, lower, Bounds, SpillSpec};
use armada_bench::harness::bench;
use armada_bench::json::Json;
use armada_bench::report;
use armada_cases::symmetric;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = smoke
        || args.iter().any(|a| a == "--quick")
        || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let samples = if quick { 1 } else { 2 };
    let k = if smoke { 3 } else { 4 };
    let shapes: &[&str] = if quick {
        &["barrier"]
    } else {
        &["barrier", "queue"]
    };
    let job_grid = [1usize, 4];
    println!("spill: {samples} trial(s) per mode, k={k}, shapes {shapes:?}");

    let scratch = std::env::temp_dir().join(format!("armada-bench-spill-{}", std::process::id()));

    let mut rows: Vec<Json> = Vec::new();
    let mut spilled_subjects = 0usize;
    let mut best_multiplier = 1.0f64;
    for shape in shapes {
        let subject = symmetric::subject(shape, k).expect("known shape");
        let pipeline = armada::Pipeline::from_source(&subject.source).expect("front end");
        let program = lower(pipeline.typed(), "Implementation").expect("lower");

        // Reference: the resident exploration pins the identity expectation.
        let reference = explore(&program, &Bounds::small());
        assert!(
            !reference.truncated,
            "{}: subject must fit the bounds",
            subject.name
        );
        let states = reference.arena.len();
        let transitions = reference.transitions;

        // Footprint: pager enabled, cap unbounded — nothing evicts, and the
        // total encoded bytes of all sealed pages is the arena footprint a
        // mem-cap has to beat.
        let probe = Bounds::small().with_spill(SpillSpec::new(
            u64::MAX,
            scratch.join(format!("{shape}-probe")),
        ));
        let (probed, tel) = explore_with_telemetry(&program, &probe);
        assert_eq!(probed.arena.len(), states);
        let footprint = tel.counters().get("spill.total_bytes");
        assert_eq!(tel.counters().get("spill.evictions"), 0);
        let footprint_gb = footprint as f64 / 1e9;
        println!(
            "  {}: {states} states, {transitions} transitions, {footprint} encoded bytes",
            subject.name
        );

        let resident = bench(&format!("spill/{}/resident", subject.name), samples, || {
            let e = explore(&program, &Bounds::small());
            assert_eq!(e.arena.len(), states);
        })
        .secs_per_iter
        .mean
        .max(1e-9);
        let resident_states_per_gb = states as f64 / footprint_gb.max(1e-12);
        rows.push(Json::obj(vec![
            ("subject", Json::str(subject.name.clone())),
            ("mode", Json::str("resident")),
            ("jobs", Json::int(1)),
            ("states", Json::int(states)),
            ("transitions", Json::int(transitions)),
            ("mean_ms", Json::Num(resident * 1e3)),
            ("footprint_bytes", Json::int(footprint as usize)),
            ("peak_resident_bytes", Json::int(footprint as usize)),
            ("states_per_gb", Json::Num(resident_states_per_gb)),
        ]));

        // Spilled: a quarter of the footprint forces roughly 3/4 of the
        // pages cold at any moment.
        let mem_cap = (footprint / 4).max(1);
        for &jobs in &job_grid {
            let bounds = Bounds::small().with_jobs(jobs).with_spill(SpillSpec::new(
                mem_cap,
                scratch.join(format!("{shape}-j{jobs}")),
            ));
            let mut peak = 0u64;
            let mut evictions = 0u64;
            let mut misses = 0u64;
            let mut corrupt = 0u64;
            let spilled = bench(
                &format!("spill/{}/cap4/jobs={jobs}", subject.name),
                samples,
                || {
                    let (e, tel) = explore_with_telemetry(&program, &bounds);
                    assert_eq!(e.arena.len(), states, "capped run must intern identically");
                    assert_eq!(e.transitions, transitions);
                    peak = tel.counters().get("spill.peak_resident_bytes");
                    evictions = tel.counters().get("spill.evictions");
                    misses = tel.counters().get("spill.misses");
                    corrupt = tel.counters().get("spill.corrupt_rejected");
                },
            )
            .secs_per_iter
            .mean
            .max(1e-9);
            assert!(
                evictions > 0,
                "{}: the cap must force evictions",
                subject.name
            );
            assert_eq!(
                corrupt, 0,
                "{}: clean disk must never reject pages",
                subject.name
            );
            let peak_gb = peak as f64 / 1e9;
            let states_per_gb = states as f64 / peak_gb.max(1e-12);
            let multiplier = states_per_gb / resident_states_per_gb.max(1e-12);
            best_multiplier = best_multiplier.max(multiplier);
            println!(
                "    jobs={jobs}: cap {mem_cap} B, peak {peak} B, {evictions} evictions, \
                 {misses} faults, {:.2e} states/GB ({multiplier:.2}x resident), {:.2}x wall",
                states_per_gb,
                spilled / resident,
            );
            rows.push(Json::obj(vec![
                ("subject", Json::str(subject.name.clone())),
                ("mode", Json::str("spilled")),
                ("jobs", Json::int(jobs)),
                ("states", Json::int(states)),
                ("transitions", Json::int(transitions)),
                ("mean_ms", Json::Num(spilled * 1e3)),
                ("footprint_bytes", Json::int(footprint as usize)),
                ("mem_cap_bytes", Json::int(mem_cap as usize)),
                ("peak_resident_bytes", Json::int(peak as usize)),
                ("evictions", Json::int(evictions as usize)),
                ("page_faults", Json::int(misses as usize)),
                ("states_per_gb", Json::Num(states_per_gb)),
                ("states_per_gb_vs_resident", Json::Num(multiplier)),
                ("wall_ratio_vs_resident", Json::Num(spilled / resident)),
            ]));
        }
        spilled_subjects += 1;
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let config = Json::obj(vec![
        ("k", Json::int(k)),
        (
            "shapes",
            Json::Arr(shapes.iter().map(|s| Json::str(*s)).collect()),
        ),
        ("jobs_grid", Json::str("1,4")),
        ("mem_cap_policy", Json::str("footprint/4")),
        ("samples", Json::int(samples)),
        ("quick", Json::Bool(quick)),
        ("smoke", Json::Bool(smoke)),
    ]);
    let summary = Json::obj(vec![
        ("subjects", Json::int(spilled_subjects)),
        ("best_states_per_gb_multiplier", Json::Num(best_multiplier)),
    ]);
    let doc = report::report("spill", config, rows, summary);
    report::write("spill", &doc);
}

//! Symmetry-reduction benchmark: explores the six symmetric-thread
//! subjects (`armada_cases::symmetric` — barrier, spinlock, queue at
//! k ∈ {2, 3} interchangeable workers) under every combination of
//! symmetry × local-step reduction, and reports, per subject:
//!
//! - interned-state counts for all four configurations, and the collapse
//!   factor `states(sym off) / states(sym on)` with reduction off — the
//!   clean quotient measurement, bounded by `k!` on a `k`-symmetric
//!   subject;
//! - wall time per configuration and the headline ratio
//!   `effective_speedup`: effective states/sec with symmetry on vs off,
//!   reduction on in both (the production configuration). Effective
//!   states/sec is the *unreduced, unsymmetric* state count divided by a
//!   configuration's wall time, so the ratio reduces to the wall-clock
//!   speedup on the same observable space.
//!
//! ```text
//! cargo run --release -p armada-bench --bin symmetry [-- --quick] [-- --jobs N]
//! ```
//!
//! Writes `results/BENCH_symmetry.json` and top-level `BENCH_symmetry.json`
//! (stable `{"name","config","samples","summary"}` schema).

use armada::sm::{explore, lower, Bounds};
use armada_bench::harness::bench;
use armada_bench::json::Json;
use armada_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let samples = if quick { 2 } else { 5 };
    println!("symmetry: {samples} trials per configuration, jobs={jobs}");

    let mut rows: Vec<Json> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut best_collapse: Option<(String, usize, f64)> = None;
    for subject in armada_cases::symmetric::subjects() {
        let pipeline = armada::Pipeline::from_source(&subject.source).expect("front end");
        let program = lower(pipeline.typed(), "Implementation").expect("lower");
        let base = Bounds::small().with_jobs(jobs);

        // One exploration per configuration for the state counts…
        let states = |sym: bool, red: bool| {
            let e = explore(
                &program,
                &base.clone().with_symmetry(sym).with_reduction(red),
            );
            assert!(
                !e.truncated,
                "{}: subject must fit the bounds",
                subject.name
            );
            e.arena.len()
        };
        let counts = [
            [states(false, false), states(false, true)],
            [states(true, false), states(true, true)],
        ];
        // …then timed trials. `expected` pins determinism across trials.
        let timed = |sym: bool, red: bool, expected: usize| {
            let bounds = base.clone().with_symmetry(sym).with_reduction(red);
            let result = bench(
                &format!(
                    "{}/sym={}+red={}",
                    subject.name,
                    if sym { "on" } else { "off" },
                    if red { "on" } else { "off" }
                ),
                samples,
                || {
                    let e = explore(&program, &bounds);
                    assert_eq!(e.arena.len(), expected);
                },
            );
            result.secs_per_iter.mean.max(1e-9)
        };
        let secs = [
            [
                timed(false, false, counts[0][0]),
                timed(false, true, counts[0][1]),
            ],
            [
                timed(true, false, counts[1][0]),
                timed(true, true, counts[1][1]),
            ],
        ];

        let full = counts[0][0] as f64; // unreduced, unsymmetric space
        let collapse = counts[0][0] as f64 / counts[1][0].max(1) as f64;
        let effective_speedup = secs[0][1] / secs[1][1];
        println!(
            "  {:<12} k={} | states off/on (red off): {}/{} collapse {:.2} \
             | effective speedup (red on): {:.2}x",
            subject.name, subject.threads, counts[0][0], counts[1][0], collapse, effective_speedup,
        );
        speedups.push((subject.name.clone(), effective_speedup));
        if best_collapse
            .as_ref()
            .map_or(true, |(_, _, c)| collapse > *c)
        {
            best_collapse = Some((subject.name.clone(), subject.threads, collapse));
        }
        rows.push(Json::obj(vec![
            ("subject", Json::str(subject.name.as_str())),
            ("threads", Json::int(subject.threads)),
            ("states_sym_off_red_off", Json::int(counts[0][0])),
            ("states_sym_off_red_on", Json::int(counts[0][1])),
            ("states_sym_on_red_off", Json::int(counts[1][0])),
            ("states_sym_on_red_on", Json::int(counts[1][1])),
            ("collapse_factor_red_off", Json::Num(collapse)),
            ("mean_ms_sym_off_red_off", Json::Num(secs[0][0] * 1e3)),
            ("mean_ms_sym_off_red_on", Json::Num(secs[0][1] * 1e3)),
            ("mean_ms_sym_on_red_off", Json::Num(secs[1][0] * 1e3)),
            ("mean_ms_sym_on_red_on", Json::Num(secs[1][1] * 1e3)),
            (
                "effective_states_per_sec_sym_off",
                Json::Num(full / secs[0][1]),
            ),
            (
                "effective_states_per_sec_sym_on",
                Json::Num(full / secs[1][1]),
            ),
            ("effective_speedup", Json::Num(effective_speedup)),
        ]));
    }

    let hits = speedups.iter().filter(|(_, s)| *s >= 1.8).count();
    let config = Json::obj(vec![
        ("jobs", Json::int(jobs)),
        ("samples", Json::int(samples)),
        ("quick", Json::Bool(quick)),
        ("reduction", Json::str("off+on")),
        ("symmetry", Json::str("off+on")),
    ]);
    let (bc_name, bc_threads, bc_factor) = best_collapse.expect("at least one subject");
    let summary = Json::obj(vec![
        ("subjects", Json::int(speedups.len())),
        ("subjects_at_1_8x_or_better", Json::int(hits)),
        ("best_collapse_subject", Json::str(bc_name)),
        ("best_collapse_threads", Json::int(bc_threads)),
        ("best_collapse_factor", Json::Num(bc_factor)),
    ]);
    let doc = report::report("symmetry", config, rows, summary);
    report::write("symmetry", &doc);
}

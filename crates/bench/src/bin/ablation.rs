//! Ablation study for the bounded refinement checker's design parameters
//! (DESIGN.md calls these out): the stutter budget `max_match` and the
//! store-buffer capacity bound.
//!
//! ```text
//! cargo run --release -p armada-bench --bin ablation
//! ```
//!
//! The stutter budget trades completeness (a too-small budget fails to
//! match behaviors that need more high-level steps per low-level step)
//! against the exponential growth of stutter closures; the buffer bound
//! trades TSO-behavior coverage against state-space size.

use armada::proof::relation::StandardRelation;
use armada::sm::{lower, Bounds};
use armada::verify::{check_refinement, SimConfig};
use std::time::Instant;

const SUBJECT: &str = r#"
level Impl {
    var x: uint32;
    var y: uint32;
    void w() { x := 1; fence; }
    void main() {
        var t: uint64 := create_thread w();
        y := 2;
        var a: uint32 := x;
        print(a);
        join t;
    }
}
level Spec {
    var x: uint32;
    var y: uint32;
    ghost var g: int;
    void w() { x := 1; g := 1; fence; }
    void main() {
        var t: uint64 := create_thread w();
        y := 2;
        var a: uint32 := x;
        print(a);
        join t;
    }
}
proof P { refinement Impl Spec var_intro }
"#;

fn main() {
    // Small subject: a fenced two-thread program with a ghost introduction.
    let pipeline = armada::Pipeline::from_source(SUBJECT).expect("front end");
    let typed = pipeline.typed();
    let low = lower(typed, "Impl").expect("lower");
    let high = lower(typed, "Spec").expect("lower");
    let relation = StandardRelation::new(typed.module.relation());
    println!("subject 1: ghost introduction over a fenced two-thread program");
    ablate(&low, &high, &relation);

    // Large subject: the Queue case study's final hiding step, whose high
    // level is maximally nondeterministic.
    let pipeline = armada::Pipeline::from_source(armada_cases::queue::MODEL).expect("front end");
    let typed = pipeline.typed();
    let low = lower(typed, "Weak").expect("lower");
    let high = lower(typed, "Spec").expect("lower");
    let relation = StandardRelation::new(typed.module.relation());
    println!("\nsubject 2: Queue case study, Weak ⊑ Spec (variable hiding)");
    ablate(&low, &high, &relation);
}

fn ablate(low: &armada::sm::Program, high: &armada::sm::Program, relation: &StandardRelation) {
    println!("Ablation: stutter budget (max_match)");
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "max_match", "verified", "product nodes", "time"
    );
    for max_match in [1usize, 2, 3, 4, 6, 8] {
        let config = SimConfig {
            max_match,
            ..SimConfig::default()
        };
        let start = Instant::now();
        let outcome = check_refinement(low, high, relation, &config);
        let elapsed = start.elapsed();
        match outcome {
            Ok(cert) => println!(
                "{max_match:<12} {:>10} {:>14} {:>12.2?}",
                "yes", cert.product_nodes, elapsed
            ),
            Err(ce) => println!(
                "{max_match:<12} {:>10} {:>14} {:>12.2?}  ({})",
                "NO",
                "-",
                elapsed,
                ce.description.lines().next().unwrap_or("")
            ),
        }
    }

    println!("\nAblation: store-buffer capacity bound");
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "max_buffer", "verified", "product nodes", "time"
    );
    for max_buffer in [1usize, 2, 3, 4] {
        let config = SimConfig {
            bounds: Bounds {
                max_buffer,
                ..Bounds::small()
            },
            ..SimConfig::default()
        };
        let start = Instant::now();
        let outcome = check_refinement(low, high, relation, &config);
        let elapsed = start.elapsed();
        match outcome {
            Ok(cert) => println!(
                "{max_buffer:<12} {:>10} {:>14} {:>12.2?}",
                "yes", cert.product_nodes, elapsed
            ),
            Err(ce) => println!(
                "{max_buffer:<12} {:>10} {:>14} {:>12.2?}  ({})",
                "NO",
                "-",
                elapsed,
                ce.description.lines().next().unwrap_or("")
            ),
        }
    }
}

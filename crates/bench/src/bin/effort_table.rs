//! Regenerates the **§6.1–§6.4 effort numbers**: for each case study, the
//! implementation/level SLOC, per-recipe SLOC, lemma-customization SLOC, and
//! generated-proof SLOC — the paper's central "low effort" evidence (e.g.
//! Barrier: 57 impl SLOC, 5-SLOC recipe, 3,649 generated; level 2 with a
//! 102-SLOC recipe generating 46,404).
//!
//! Absolute generated-SLOC counts differ from the paper's (our proof
//! artifacts are pseudo-Dafny renderings of the obligations plus the
//! program-specific state machines, not Dafny for their library), but the
//! shape — recipes of tens of lines generating proofs three to four orders
//! of magnitude larger — is the reproduction target, and is what this table
//! shows.

use armada_cases::all_cases;

fn main() {
    let mut exit = 0;
    for case in all_cases() {
        println!("==== {} — {}", case.name, case.description);
        // Model-scale effort: strategies + semantic checks actually run.
        match case.verify_model() {
            Ok((pipeline, report)) => {
                let effort = pipeline.effort(&report);
                print!("{effort}");
                let recipe_total: usize = effort
                    .recipes
                    .iter()
                    .map(|r| r.recipe_sloc + r.customization_sloc)
                    .sum();
                let generated = effort.total_generated();
                println!(
                    "totals: recipes {recipe_total} SLOC -> generated {generated} SLOC \
                     (x{:.0} automation leverage), verified = {}",
                    generated as f64 / recipe_total.max(1) as f64,
                    report.verified()
                );
                if !report.verified() {
                    exit = 1;
                }
            }
            Err(err) => {
                println!("pipeline error: {err}");
                exit = 1;
            }
        }
        // Paper-scale front-end SLOC.
        match case.check_paper_source() {
            Ok(effort) => {
                for (name, sloc) in &effort.level_sloc {
                    println!("paper-scale level {name}: {sloc} SLOC");
                }
            }
            Err(err) => {
                println!("paper-scale source error: {err}");
                exit = 1;
            }
        }
        println!();
    }
    std::process::exit(exit);
}

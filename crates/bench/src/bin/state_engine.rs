//! State-space engine throughput benchmark: times `armada_sm::explore` over
//! the spec corpus and the case-study models and reports, per subject:
//!
//! - `states_per_sec` — arena states interned per second with reduction
//!   *off* (same state space as the seed engine: isolates the
//!   interning/fingerprint win);
//! - `effective_states_per_sec` — unreduced state count divided by the
//!   *reduced* run's wall time (the combined interning + reduction win:
//!   how fast the engine covers the spec's observable space);
//! - the macro/micro transition counts and the reduction ratio;
//! - wall time at `jobs = N` for the parallel-scaling note in
//!   EXPERIMENTS.md (on a single-core host this is ~1x by construction).
//!
//! ```text
//! cargo run --release -p armada-bench --bin state_engine [-- --quick] [-- --jobs N]
//! ```
//!
//! Writes `results/BENCH_state_engine.json` and top-level
//! `BENCH_state_engine.json` (stable `{"name","config","samples","summary"}`
//! schema), and prints the rows.

use armada::sm::{explore, lower, Bounds};
use armada_bench::harness::bench;
use armada_bench::json::Json;
use armada_bench::report;

struct Subject {
    name: &'static str,
    source: String,
    level: &'static str,
}

fn subjects() -> Vec<Subject> {
    let mut out = Vec::new();
    for file in ["counter", "spinlock", "handoff", "tracepoint"] {
        let path = format!("specs/{file}.arm");
        match std::fs::read_to_string(&path) {
            Ok(source) => out.push(Subject {
                name: Box::leak(format!("specs/{file}").into_boxed_str()),
                source,
                level: "Implementation",
            }),
            Err(err) => eprintln!("skipping {path}: {err}"),
        }
    }
    out.push(Subject {
        name: "cases/queue",
        source: armada_cases::queue::MODEL.to_string(),
        level: "Implementation",
    });
    out.push(Subject {
        name: "cases/mcs_lock",
        source: armada_cases::mcs_lock::MODEL.to_string(),
        level: "Implementation",
    });
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let samples = if quick { 2 } else { 5 };
    println!("state_engine: {samples} trials per row, parallel column at jobs={jobs}");

    let mut rows: Vec<Json> = Vec::new();
    for subject in subjects() {
        let pipeline = match armada::Pipeline::from_source(&subject.source) {
            Ok(p) => p,
            Err(err) => {
                eprintln!("skipping {}: front end: {err:?}", subject.name);
                continue;
            }
        };
        let typed = pipeline.typed();
        let program = lower(typed, subject.level).expect("lower");
        let unreduced = Bounds::small().with_reduction(false);
        let reduced = Bounds::small().with_reduction(true);

        let full = explore(&program, &unreduced);
        let fused = explore(&program, &reduced);
        let states_full = full.arena.len();
        let states_fused = fused.arena.len();

        let off = bench(&format!("{}/off", subject.name), samples, || {
            let e = explore(&program, &unreduced);
            assert_eq!(e.arena.len(), states_full);
        });
        let on = bench(&format!("{}/on", subject.name), samples, || {
            let e = explore(&program, &reduced);
            assert_eq!(e.arena.len(), states_fused);
        });
        let par = bench(&format!("{}/on x{jobs}", subject.name), samples, || {
            let e = explore(&program, &reduced.clone().with_jobs(jobs));
            assert_eq!(e.arena.len(), states_fused);
        });

        let secs_off = off.secs_per_iter.mean.max(1e-9);
        let secs_on = on.secs_per_iter.mean.max(1e-9);
        let secs_par = par.secs_per_iter.mean.max(1e-9);
        let states_per_sec = states_full as f64 / secs_off;
        let effective = states_full as f64 / secs_on;
        println!(
            "  {:<18} {:>7} states ({} fused) ratio {:>5.2} | {:>10.0} st/s off | {:>10.0} st/s effective | x{jobs}: {:.2}x",
            subject.name,
            states_full,
            states_fused,
            fused.reduction_ratio(),
            states_per_sec,
            effective,
            secs_on / secs_par,
        );
        rows.push(Json::obj(vec![
            ("subject", Json::str(subject.name)),
            ("states", Json::int(states_full)),
            ("states_reduced", Json::int(states_fused)),
            ("transitions", Json::int(full.transitions)),
            ("macro_transitions", Json::int(fused.transitions)),
            ("micro_steps", Json::int(fused.micro_steps)),
            ("reduction_ratio", Json::Num(fused.reduction_ratio())),
            ("mean_ms_off", Json::Num(secs_off * 1e3)),
            ("mean_ms_on", Json::Num(secs_on * 1e3)),
            ("mean_ms_on_parallel", Json::Num(secs_par * 1e3)),
            ("jobs", Json::int(jobs)),
            ("states_per_sec", Json::Num(states_per_sec)),
            ("effective_states_per_sec", Json::Num(effective)),
        ]));
    }

    // Both reduction settings are measured per row; symmetry stays at the
    // engine default (on) in every run, so the off/on timings differ only
    // by reduction.
    let config = Json::obj(vec![
        ("jobs", Json::int(jobs)),
        ("samples", Json::int(samples)),
        ("quick", Json::Bool(quick)),
        ("reduction", Json::str("off+on")),
        ("symmetry", Json::Bool(Bounds::small().symmetry)),
    ]);
    let summary = Json::obj(vec![("subjects", Json::int(rows.len()))]);
    let doc = report::report("state_engine", config, rows, summary);
    report::write("state_engine", &doc);
}

//! Regenerates **Table 1** of the paper: the example programs used to
//! evaluate Armada — here with live verification status, since our pipeline
//! actually runs each case study's full level stack (strategies + bounded
//! refinement model checking) on the model-scale instance.

use armada_cases::all_cases;

fn main() {
    println!("Table 1: Example programs used to evaluate Armada");
    println!("{:<10} {:<60} {:>10}", "Name", "Description", "Verified");
    println!("{}", "-".repeat(84));
    let mut all_ok = true;
    for case in all_cases() {
        let status = match case.verify_model() {
            Ok((_, report)) if report.verified() => {
                format!("yes ({})", report.chain_claim().unwrap_or_default())
            }
            Ok((_, report)) => {
                all_ok = false;
                format!(
                    "NO: {}",
                    report.failure_summary().lines().next().unwrap_or("")
                )
            }
            Err(err) => {
                all_ok = false;
                format!("ERROR: {err}")
            }
        };
        println!("{:<10} {:<60} {status}", case.name, case.description);
    }
    println!("{}", "-".repeat(84));
    println!(
        "paper-scale sources: {}",
        all_cases()
            .iter()
            .map(|c| match c.check_paper_source() {
                Ok(_) => format!("{} ok", c.name),
                Err(err) => {
                    all_ok = false;
                    format!("{} FAILED ({err})", c.name)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    if !all_ok {
        std::process::exit(1);
    }
}

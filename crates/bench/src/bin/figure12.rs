//! Regenerates **Figure 12**: throughput of liblfds' lock-free queue vs. the
//! corresponding code written in Armada.
//!
//! The paper's four bars map to our variants as documented in DESIGN.md:
//!
//! * `liblfds (GCC)` → the Rust port with bitmask indexing and hardware-TSO
//!   orderings (acquire/release, free on x86);
//! * `liblfds-modulo (GCC)` → the same with `%` indexing (the paper's
//!   measurement of the modulo cost);
//! * `Armada (GCC)` → the code `armada-backend` emitted from the Queue case
//!   study's Armada source, hw-tso mode;
//! * `Armada (CompCertTSO)` → the same emitted code in conservative mode
//!   (SeqCst + a full fence per shared access), modeling CompCertTSO's
//!   unoptimized mapping.
//!
//! Each data point is the mean of repeated trials with a 95% confidence
//! interval, as in the paper (which used 1,000 trials of the liblfds
//! built-in benchmark at queue size 512; defaults here are smaller so the
//! harness completes in CI — set `ARMADA_FIG12_TRIALS` / `ARMADA_FIG12_OPS`
//! to scale up).

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let ops = env_or("ARMADA_FIG12_OPS", 200_000);
    let trials = env_or("ARMADA_FIG12_TRIALS", 25) as usize;
    println!(
        "Figure 12: SPSC queue throughput (queue size {}, {} ops/trial, {} trials)",
        armada_bench::QUEUE_SIZE,
        ops,
        trials
    );
    // Warm-up pass so the first variant is not penalized.
    for variant in armada_bench::FIGURE12_VARIANTS {
        let _ = armada_bench::figure12_trial(variant, ops / 10);
    }
    let rows = armada_bench::figure12(ops, trials);
    print!("{}", armada_bench::render_figure12(&rows));

    // Shape summary in the paper's terms.
    let pct = |i: usize, j: usize| 100.0 * rows[i].stats.mean / rows[j].stats.mean;
    println!();
    println!(
        "Armada(hw-tso) achieves {:.0}% of liblfds-modulo (paper: ~99% — \"virtually \
         identical … the code is virtually identical\")",
        pct(2, 1)
    );
    println!(
        "Armada(conservative) achieves {:.0}% of liblfds (paper: ~70% for \
         Armada(CompCertTSO))",
        pct(3, 0)
    );
}

//! The in-repo micro-benchmark harness: repeated timed trials with the
//! mean/95%-CI statistics of `armada_runtime::measure::Stats`.
//!
//! This replaces Criterion under the hermetic-build policy (no crates.io
//! dependencies). The protocol is Criterion's core loop without the
//! adaptive sampling: warm up, run `samples` timed trials of the closure,
//! report per-iteration wall time and derived throughput.

use armada_runtime::measure::Stats;
use std::time::Instant;

/// One benchmark's result: trial statistics over seconds-per-iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, `group/name` style.
    pub name: String,
    /// Seconds per iteration, over the timed trials.
    pub secs_per_iter: Stats,
}

impl BenchResult {
    /// Iterations per second implied by the mean trial time.
    pub fn iters_per_sec(&self) -> f64 {
        1.0 / self.secs_per_iter.mean
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<52} {:>11.3e} s/iter ± {:>8.1e} ({:>10.1} iter/s)",
            self.name,
            self.secs_per_iter.mean,
            self.secs_per_iter.ci95,
            self.iters_per_sec()
        )
    }
}

/// Times `samples` trials of `routine` (after one untimed warmup) and
/// prints the Criterion-style summary line.
pub fn bench(name: &str, samples: usize, mut routine: impl FnMut()) -> BenchResult {
    routine(); // warmup: page in code and data, populate caches
    let mut trials = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        routine();
        trials.push(start.elapsed().as_secs_f64());
    }
    let result = BenchResult {
        name: name.to_string(),
        secs_per_iter: Stats::of(&trials),
    };
    println!("{result}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let result = bench("harness/self-test", 3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(result.secs_per_iter.mean > 0.0);
        assert_eq!(result.secs_per_iter.samples, 3);
        assert!(result.to_string().contains("harness/self-test"));
    }
}

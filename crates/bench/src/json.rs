//! A hand-rolled JSON writer for the `BENCH_*.json` artifacts.
//!
//! The hermetic-build policy forbids `serde`; benchmark outputs are simple
//! trees of numbers and strings, so a minimal value type with a correct
//! string escaper covers everything the harness emits.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any finite number (emitted via Rust's shortest-roundtrip float
    /// formatting; integers print without a fraction).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for integer counts.
    pub fn int(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    // Renders compact single-line JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                write!(f, "{}", *n as i64)
            }
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(key, f)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let value = Json::obj([
            ("name", Json::str("queue")),
            ("speedup", Json::Num(2.5)),
            ("nodes", Json::int(1234)),
            ("ok", Json::Bool(true)),
            ("trace", Json::Arr(vec![Json::str("a\"b"), Json::Null])),
        ]);
        assert_eq!(
            value.to_string(),
            r#"{"name":"queue","speedup":2.5,"nodes":1234,"ok":true,"trace":["a\"b",null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(
            Json::str("a\nb\tc\u{1}").to_string(),
            "\"a\\nb\\tc\\u0001\""
        );
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
    }
}

//! Benchmark report emission with a stable, tool-friendly schema.
//!
//! Every bench writes one document shaped as
//!
//! ```json
//! {"name": "...", "config": {...}, "samples": [...], "summary": {...}}
//! ```
//!
//! to *two* places: `results/BENCH_<name>.json` (the historical location,
//! kept for EXPERIMENTS.md references) and a top-level `BENCH_<name>.json`
//! so trajectory tooling that globs `BENCH_*.json` at the repository root
//! finds the artifacts without knowing about `results/`.
//!
//! `config` records every knob that shapes the numbers — job count, trial
//! count, and the reduction/symmetry engine flags — so two artifacts are
//! comparable only when their `config` blocks match.

use crate::json::Json;

/// Builds the stable four-field report document.
///
/// The host's `available_parallelism` is recorded into every `config`
/// block automatically (unless the bench already set it): scaling numbers
/// are only interpretable against the core count they ran on.
pub fn report(name: &str, config: Json, samples: Vec<Json>, summary: Json) -> Json {
    let config = match config {
        Json::Obj(mut pairs) => {
            if !pairs.iter().any(|(k, _)| k == "available_parallelism") {
                let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
                pairs.push(("available_parallelism".to_string(), Json::int(cores)));
            }
            Json::Obj(pairs)
        }
        other => other,
    };
    Json::obj(vec![
        ("name", Json::str(name)),
        ("config", config),
        ("samples", Json::Arr(samples)),
        ("summary", summary),
    ])
}

/// Writes `doc` to `results/BENCH_<name>.json` and `BENCH_<name>.json`.
///
/// # Panics
///
/// Panics if either write fails — a bench that cannot record its results
/// has failed.
pub fn write(name: &str, doc: &Json) {
    let rendered = format!("{doc}\n");
    std::fs::create_dir_all("results").expect("results dir");
    for path in [
        format!("results/BENCH_{name}.json"),
        format!("BENCH_{name}.json"),
    ] {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_the_stable_four_field_shape() {
        let doc = report(
            "demo",
            Json::obj(vec![("jobs", Json::int(2))]),
            vec![Json::obj(vec![("subject", Json::str("s"))])],
            Json::obj(vec![("ok", Json::Bool(true))]),
        );
        let rendered = doc.to_string();
        assert!(rendered.starts_with("{\"name\":\"demo\",\"config\":"));
        assert!(rendered.contains("\"samples\":[{"));
        assert!(rendered.contains("\"summary\":{"));
        // Injected into every config block so scaling numbers carry the
        // core count they were measured on.
        assert!(rendered.contains("\"available_parallelism\":"));
    }
}

//! Tracking of Figure 12's quantities — per-element transfer cost through
//! each queue variant — on the in-repo bench harness (Criterion is not
//! available under the hermetic-build policy).
//!
//! Run with `cargo bench -p armada-bench --bench queue_throughput`. Pass
//! `--quick` (or set `ARMADA_BENCH_QUICK=1`) for a smoke-test-sized run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let (ops, samples): (u64, usize) = if quick { (5_000, 3) } else { (50_000, 10) };
    println!("figure12_queue: {ops} ops/trial, {samples} trials per variant");
    for variant in armada_bench::FIGURE12_VARIANTS {
        let result =
            armada_bench::harness::bench(&format!("figure12_queue/{variant}"), samples, || {
                std::hint::black_box(armada_bench::figure12_trial(variant, ops));
            });
        let per_elem = result.secs_per_iter.mean / ops as f64;
        println!("    -> {:.1} ns/element", per_elem * 1e9);
    }
}

//! Criterion tracking of Figure 12's quantities: per-element transfer cost
//! through each queue variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure12_queue");
    let ops: u64 = 50_000;
    group.throughput(Throughput::Elements(ops));
    group.sample_size(10);
    for variant in armada_bench::FIGURE12_VARIANTS {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &ops, |b, &ops| {
            b.iter(|| armada_bench::figure12_trial(variant, ops));
        });
    }
    group.finish();
}

criterion_group!(benches, queue_throughput);
criterion_main!(benches);

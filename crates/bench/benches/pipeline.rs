//! Tracking of the verification pipeline itself (the Table-1 workloads) on
//! the in-repo bench harness: front-end cost and full-pipeline cost on the
//! lighter case studies. The heavyweight model-checked studies are
//! exercised by `cargo run -p armada-bench --bin table1` instead, so this
//! bench stays fast enough for routine use.
//!
//! Run with `cargo bench -p armada-bench --bench pipeline`. Pass `--quick`
//! (or set `ARMADA_BENCH_QUICK=1`) for a smoke-test-sized run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("ARMADA_BENCH_QUICK").is_some();
    let (front_samples, pipeline_samples) = if quick { (3, 2) } else { (20, 10) };

    for case in armada_cases::all_cases() {
        armada_bench::harness::bench(&format!("front_end/{}", case.name), front_samples, || {
            let pipeline = armada::Pipeline::from_source(case.paper_source).unwrap();
            std::hint::black_box(pipeline.typed().module.levels.len());
        });
    }

    let pointers = armada_cases::pointers::case();
    armada_bench::harness::bench(
        "pipeline/Pointers (strategies + bounded refinement)",
        pipeline_samples,
        || {
            let (_, report) = pointers.verify_model().unwrap();
            assert!(report.verified());
        },
    );
}

//! Criterion tracking of the verification pipeline itself (the Table-1
//! workloads): front-end cost and full-pipeline cost on the lighter case
//! studies. The heavyweight model-checked studies are exercised by
//! `cargo run -p armada-bench --bin table1` instead, so this bench stays
//! fast enough for routine use.

use criterion::{criterion_group, criterion_main, Criterion};

fn front_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("front_end");
    group.sample_size(20);
    for case in armada_cases::all_cases() {
        group.bench_function(case.name, |b| {
            b.iter(|| {
                let pipeline = armada::Pipeline::from_source(case.paper_source).unwrap();
                std::hint::black_box(pipeline.typed().module.levels.len())
            });
        });
    }
    group.finish();
}

fn full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let pointers = armada_cases::pointers::case();
    group.bench_function("Pointers (strategies + bounded refinement)", |b| {
        b.iter(|| {
            let (_, report) = pointers.verify_model().unwrap();
            assert!(report.verified());
        });
    });
    group.finish();
}

criterion_group!(benches, front_end, full_pipeline);
criterion_main!(benches);

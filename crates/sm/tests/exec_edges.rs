//! Execution-semantics edge cases: every terminating condition of §3.2.3
//! (normal exit, assertion failure, undefined behavior) and the blocking
//! semantics of enablement conditions and `join`.

use armada_lang::{check_module, parse_module};
use armada_sm::{explore, lower, Bounds, Program, Termination, UbReason};

fn program(src: &str) -> Program {
    let module = parse_module(src).expect("parse");
    let typed = check_module(&module).expect("typecheck");
    lower(&typed, &module.levels[0].name.clone()).expect("lower")
}

fn sole_termination(src: &str) -> Termination {
    let exploration = explore(&program(src), &Bounds::small());
    let mut terminations: Vec<Termination> = exploration
        .exited
        .iter()
        .chain(&exploration.assert_failures)
        .chain(&exploration.ub_states)
        .map(|s| s.termination.clone())
        .collect();
    terminations.sort();
    terminations.dedup();
    assert_eq!(
        terminations.len(),
        1,
        "expected a unique outcome: {terminations:?}"
    );
    terminations.pop().expect("nonempty")
}

#[test]
fn division_by_zero_is_ub() {
    let termination = sole_termination(
        r#"level L {
            void main() {
                var a: uint32 := 1;
                var b: uint32 := 0;
                var c: uint32 := a / b;
                print(c);
            }
        }"#,
    );
    assert_eq!(
        termination,
        Termination::UndefinedBehavior(UbReason::DivisionByZero)
    );
}

#[test]
fn oversized_shift_is_ub() {
    let termination = sole_termination(
        r#"level L {
            void main() {
                var a: uint32 := 1;
                var s: uint32 := 32;
                var c: uint32 := a << s;
                print(c);
            }
        }"#,
    );
    assert_eq!(
        termination,
        Termination::UndefinedBehavior(UbReason::InvalidShift)
    );
}

#[test]
fn null_dereference_is_ub() {
    let termination = sole_termination(
        r#"level L {
            void main() {
                var p: ptr<uint32> := null;
                *p := 1;
            }
        }"#,
    );
    assert_eq!(
        termination,
        Termination::UndefinedBehavior(UbReason::NullDereference)
    );
}

#[test]
fn somehow_requires_violation_is_ub() {
    let termination = sole_termination(
        r#"level L {
            ghost var g: int;
            void main() {
                somehow requires g == 1 modifies g ensures g == 2;
            }
        }"#,
    );
    assert_eq!(
        termination,
        Termination::UndefinedBehavior(UbReason::RequiresViolated)
    );
}

#[test]
fn somehow_with_solvable_postcondition_executes() {
    let p = program(
        r#"level L {
            ghost var g: int := 3;
            void main() {
                somehow modifies g ensures g == old(g) + 39;
                print(g);
            }
        }"#,
    );
    let final_state = armada_sm::run_to_completion(&p, &Bounds::small()).unwrap();
    assert_eq!(final_state.termination, Termination::Exited);
    assert_eq!(final_state.log, vec![armada_sm::Value::MathInt(42)]);
}

#[test]
fn join_of_garbage_tid_is_ub() {
    let termination = sole_termination(
        r#"level L {
            void main() {
                var t: uint64 := 99;
                join t;
            }
        }"#,
    );
    assert_eq!(
        termination,
        Termination::UndefinedBehavior(UbReason::InvalidJoin)
    );
}

#[test]
fn assert_false_is_a_distinct_terminal() {
    let termination = sole_termination(
        r#"level L {
            void main() {
                var x: uint32 := 1;
                assert x == 2;
            }
        }"#,
    );
    assert!(matches!(termination, Termination::AssertFailed(_)));
}

#[test]
fn blocked_assume_deadlocks_rather_than_crashes() {
    let exploration = explore(
        &program(
            r#"level L {
                var x: uint32;
                void main() {
                    assume x == 1;
                    print(x);
                }
            }"#,
        ),
        &Bounds::small(),
    );
    assert!(exploration.exited.is_empty());
    assert!(exploration.ub_states.is_empty());
    assert_eq!(
        exploration.stuck.len(),
        1,
        "the enablement condition never fires"
    );
}

#[test]
fn atomic_block_excludes_other_threads() {
    // Inside `atomic`, the pair of writes is indivisible: a concurrent
    // reader can never see x == 1 && y == 0.
    let exploration = explore(
        &program(
            r#"level L {
                var x: uint32;
                var y: uint32;
                void w() {
                    atomic {
                        x ::= 1;
                        y ::= 1;
                    }
                }
                void main() {
                    var t: uint64 := create_thread w();
                    var a: uint32 := x;
                    var b: uint32 := y;
                    assert a <= b;
                    join t;
                }
            }"#,
        ),
        &Bounds::small(),
    );
    assert!(
        exploration.assert_failures.is_empty(),
        "atomicity violated: reader saw a torn pair"
    );
    assert!(!exploration.exited.is_empty());
}

#[test]
fn explicit_yield_is_interruptible_only_at_yield_points() {
    // With the yield between the writes, the torn observation IS possible.
    let exploration = explore(
        &program(
            r#"level L {
                var x: uint32;
                var y: uint32;
                void w() {
                    explicit_yield {
                        x ::= 1;
                        yield;
                        y ::= 1;
                    }
                }
                void main() {
                    var t: uint64 := create_thread w();
                    var a: uint32 := x;
                    var b: uint32 := y;
                    assert a <= b;
                    join t;
                }
            }"#,
        ),
        &Bounds::small(),
    );
    assert!(
        !exploration.assert_failures.is_empty(),
        "the yield point must admit the torn observation"
    );
}

//! Seeded randomized tests for the x86-TSO core: store-buffer laws,
//! heap-model laws, and coherence of a thread's local view (§3.2.1).

use armada_lang::ast::{IntType, Type};
use armada_runtime::prng::run_seeded_cases;
use armada_sm::heap::{Location, MemNode, PtrVal, RootKind};
use armada_sm::{Heap, UbReason, Value};

fn u64v(v: i128) -> Value {
    Value::int(IntType::U64, v)
}

/// FIFO drain: applying a buffer's writes oldest-first makes the newest
/// write to each location win — global memory converges to the thread's
/// local view.
#[test]
fn buffer_drain_converges_to_local_view() {
    run_seeded_cases(0x7503_0001, 256, |rng, case| {
        let writes: Vec<(u32, i128)> = (0..rng.index(12))
            .map(|_| (rng.range_u32(0, 4), rng.range_i128(0, 100)))
            .collect();
        let mut heap = Heap::new();
        let node = MemNode::Array((0..4).map(|_| MemNode::Leaf(u64v(0))).collect());
        let object = heap.alloc(node, RootKind::Calloc);

        // The thread's view: newest write per location, else initial 0.
        let mut view = [0i128; 4];
        for &(slot, value) in &writes {
            view[slot as usize] = value;
        }
        // Drain in FIFO order.
        for &(slot, value) in &writes {
            let loc = Location {
                object,
                path: vec![slot],
            };
            heap.write_leaf(&loc, u64v(value)).unwrap();
        }
        for slot in 0..4u32 {
            let loc = Location {
                object,
                path: vec![slot],
            };
            assert_eq!(
                heap.read(&loc).unwrap().as_leaf(),
                Some(&u64v(view[slot as usize])),
                "case {case}: writes={writes:?}"
            );
        }
    });
}

/// Pointer arithmetic within an array is associative with itself and
/// faithful to index arithmetic; stepping outside the array is UB.
#[test]
fn pointer_arithmetic_laws() {
    run_seeded_cases(0x7503_0002, 256, |rng, case| {
        let len = 1 + rng.index(15);
        let a = rng.range_i128(0, 16);
        let b = rng.range_i128(-16, 16);
        let mut heap = Heap::new();
        let node = MemNode::Array((0..len).map(|_| MemNode::Leaf(u64v(0))).collect());
        let object = heap.alloc(node, RootKind::Calloc);
        let base = PtrVal {
            object,
            path: vec![0],
        };

        let direct = heap.ptr_add(&base, a + b);
        let stepped = heap.ptr_add(&base, a).and_then(|mid| heap.ptr_add(&mid, b));
        match (direct, stepped) {
            (Ok(p), Ok(q)) => assert_eq!(p, q, "case {case}: len={len} a={a} b={b}"),
            // One route can fail where the other succeeds only by leaving
            // the array mid-way; both must agree when both are in bounds.
            (Err(_), _) | (_, Err(_)) => {
                let total = a + b;
                assert!(
                    total < 0 || total > len as i128 || a < 0 || a > len as i128 || a + b < 0,
                    "case {case}: len={len} a={a} b={b}"
                );
            }
        }
    });
}

/// Freed objects are permanently inaccessible, and double free is UB.
#[test]
fn freed_objects_stay_dead() {
    run_seeded_cases(0x7503_0003, 256, |rng, case| {
        let accesses: Vec<u32> = (0..1 + rng.index(7)).map(|_| rng.range_u32(0, 4)).collect();
        let mut heap = Heap::new();
        let node = MemNode::Array((0..4).map(|_| MemNode::Leaf(u64v(9))).collect());
        let object = heap.alloc(node, RootKind::Calloc);
        heap.dealloc(&PtrVal {
            object,
            path: vec![0],
        })
        .unwrap();
        for slot in accesses {
            let loc = Location {
                object,
                path: vec![slot],
            };
            assert_eq!(heap.read(&loc), Err(UbReason::FreedAccess), "case {case}");
        }
        assert_eq!(
            heap.dealloc(&PtrVal {
                object,
                path: vec![0]
            }),
            Err(UbReason::FreedAccess),
            "case {case}"
        );
    });
}

/// Zero layouts contain a leaf at every scalar position and respect array
/// lengths.
#[test]
fn zero_layout_shape() {
    run_seeded_cases(0x7503_0004, 64, |rng, case| {
        let len = rng.below(20);
        let structs = std::collections::BTreeMap::new();
        let node = MemNode::zero(&Type::array(Type::Int(IntType::U32), len), &structs);
        match node {
            MemNode::Array(children) => {
                assert_eq!(children.len() as u64, len, "case {case}");
                for child in children {
                    assert_eq!(
                        child.as_leaf(),
                        Some(&Value::int(IntType::U32, 0)),
                        "case {case}"
                    );
                }
            }
            other => panic!("case {case}: expected array, got {other:?}"),
        }
    });
}

#[test]
fn message_passing_litmus_never_reorders() {
    // MP litmus: with data written before flag by the same thread, a reader
    // that observes flag==1 must observe data==1 — TSO's FIFO buffers
    // guarantee it. Checked over every interleaving.
    let source = r#"
        level MP {
            var data: uint32;
            var flag: uint32;
            void writer() {
                data := 1;
                flag := 1;
            }
            void main() {
                var t: uint64 := create_thread writer();
                var f: uint32 := flag;
                if (f == 1) {
                    var d: uint32 := data;
                    assert d == 1;
                }
                join t;
            }
        }
    "#;
    let module = armada_lang::parse_module(source).unwrap();
    let typed = armada_lang::check_module(&module).unwrap();
    let program = armada_sm::lower(&typed, "MP").unwrap();
    let exploration = armada_sm::explore(&program, &armada_sm::Bounds::small());
    assert!(
        exploration.assert_failures.is_empty(),
        "TSO must not reorder same-thread stores"
    );
    assert!(!exploration.exited.is_empty());
}

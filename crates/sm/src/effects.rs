//! Static read/write-set (effect) analysis over lowered instructions.
//!
//! The proof strategies use effects in two ways: the reduction strategy's
//! commutativity lemmas discharge instantly when two steps touch disjoint
//! abstract locations, and the TSO-elimination strategy needs to know every
//! instruction that can touch an eliminated variable. Pointer dereferences
//! are conservatively mapped to [`AbsLoc::HeapUnknown`] unless the caller
//! supplies region information from `armada-regions`.

use armada_lang::ast::{Expr, ExprKind, Rhs, Stmt, StmtKind};
use std::collections::BTreeSet;

use crate::program::{Instr, Program, Routine};

/// An abstract memory location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsLoc {
    /// A named non-ghost global (covering every path beneath it).
    Global(String),
    /// A named ghost global.
    Ghost(String),
    /// Some heap location reached through a pointer; conservatively aliases
    /// every other heap access and every address-taken variable.
    HeapUnknown,
    /// A heap region id supplied by alias analysis; distinct regions do not
    /// alias.
    Region(u32),
    /// The observable event log.
    Log,
    /// Thread bookkeeping (create/join).
    Threads,
}

/// The effect footprint of one instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Effects {
    /// Locations possibly read.
    pub reads: BTreeSet<AbsLoc>,
    /// Locations possibly written.
    pub writes: BTreeSet<AbsLoc>,
    /// Whether the instruction allocates or frees heap objects.
    pub allocates: bool,
    /// Whether the write goes through the store buffer (plain `:=` to a
    /// shared location) rather than directly to memory.
    pub buffered: bool,
    /// Whether the instruction drains the store buffer (fence).
    pub fences: bool,
}

impl Effects {
    /// True when the instruction touches no shared state at all (local
    /// computation, jumps, atomic markers): such steps are both-movers.
    pub fn is_thread_local(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && !self.allocates && !self.fences
    }

    /// True when two effect footprints cannot conflict: neither writes a
    /// location the other reads or writes. [`AbsLoc::HeapUnknown`] conflicts
    /// with every heap access.
    pub fn disjoint(&self, other: &Effects) -> bool {
        if self.allocates && other.allocates {
            // Allocation order determines object ids; two allocations
            // commute only up to renaming, which step-level equality cannot
            // see.
            return false;
        }
        no_conflict(&self.writes, &other.writes)
            && no_conflict(&self.writes, &other.reads)
            && no_conflict(&self.reads, &other.writes)
    }
}

fn heapish(loc: &AbsLoc) -> bool {
    matches!(
        loc,
        AbsLoc::HeapUnknown | AbsLoc::Region(_) | AbsLoc::Global(_)
    )
}

fn conflicts(a: &AbsLoc, b: &AbsLoc) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (AbsLoc::HeapUnknown, other) | (other, AbsLoc::HeapUnknown) => heapish(other),
        (AbsLoc::Region(_), AbsLoc::Global(_)) | (AbsLoc::Global(_), AbsLoc::Region(_)) => {
            // A region id and a global name are different namespaces from
            // different analyses; be conservative.
            true
        }
        _ => false,
    }
}

fn no_conflict(a: &BTreeSet<AbsLoc>, b: &BTreeSet<AbsLoc>) -> bool {
    a.iter().all(|x| b.iter().all(|y| !conflicts(x, y)))
}

/// Classifies the shared locations an expression *reads*.
pub fn expr_reads(program: &Program, routine: &Routine, expr: &Expr, out: &mut BTreeSet<AbsLoc>) {
    use ExprKind::*;
    match &expr.kind {
        Var(name) => {
            if routine.local_slot(name).is_some() {
                // Address-taken locals are heap-resident but thread-private
                // unless a pointer to them escapes; any access to them via
                // pointer shows up as HeapUnknown on the deref side.
                return;
            }
            if program.global_index(name).is_some() {
                out.insert(AbsLoc::Global(name.clone()));
            } else if program.ghost_index(name).is_some() {
                out.insert(AbsLoc::Ghost(name.clone()));
            }
        }
        Deref(inner) => {
            out.insert(AbsLoc::HeapUnknown);
            expr_reads(program, routine, inner, out);
        }
        AddrOf(inner) => {
            // Taking an address reads nothing; index expressions inside the
            // lvalue still count.
            addr_reads(program, routine, inner, out);
        }
        Unary(_, a) | Old(a) | Allocated(a) | AllocatedArray(a) => {
            expr_reads(program, routine, a, out)
        }
        Binary(_, a, b) | Index(a, b) => {
            expr_reads(program, routine, a, out);
            expr_reads(program, routine, b, out);
        }
        Field(a, _) => expr_reads(program, routine, a, out),
        Call(_, args) | SeqLit(args) => {
            for a in args {
                expr_reads(program, routine, a, out);
            }
        }
        Forall { lo, hi, body, .. } | Exists { lo, hi, body, .. } => {
            expr_reads(program, routine, lo, out);
            expr_reads(program, routine, hi, out);
            expr_reads(program, routine, body, out);
        }
        SbEmpty | Me | IntLit(_) | BoolLit(_) | Null | Nondet => {}
    }
}

fn addr_reads(program: &Program, routine: &Routine, lvalue: &Expr, out: &mut BTreeSet<AbsLoc>) {
    match &lvalue.kind {
        ExprKind::Var(_) => {}
        ExprKind::Deref(inner) => expr_reads(program, routine, inner, out),
        ExprKind::Field(base, _) => addr_reads(program, routine, base, out),
        ExprKind::Index(base, index) => {
            addr_reads(program, routine, base, out);
            expr_reads(program, routine, index, out);
        }
        _ => expr_reads(program, routine, lvalue, out),
    }
}

/// Classifies the shared location an lvalue *writes* (plus any reads its
/// address computation performs).
pub fn lvalue_effects(program: &Program, routine: &Routine, lvalue: &Expr, effects: &mut Effects) {
    match &lvalue.kind {
        ExprKind::Var(name) => {
            if routine.local_slot(name).is_some() {
                return;
            }
            if program.global_index(name).is_some() {
                effects.writes.insert(AbsLoc::Global(name.clone()));
            } else if program.ghost_index(name).is_some() {
                effects.writes.insert(AbsLoc::Ghost(name.clone()));
            }
        }
        ExprKind::Deref(inner) => {
            effects.writes.insert(AbsLoc::HeapUnknown);
            expr_reads(program, routine, inner, &mut effects.reads);
        }
        ExprKind::Field(base, _) => lvalue_effects(program, routine, base, effects),
        ExprKind::Index(base, index) => {
            lvalue_effects(program, routine, base, effects);
            expr_reads(program, routine, index, &mut effects.reads);
        }
        _ => expr_reads(program, routine, lvalue, &mut effects.reads),
    }
}

/// Computes the effect footprint of an instruction. Call/return effects
/// cover only the step itself (argument evaluation, return-value store) —
/// the callee's body instructions carry their own effects.
pub fn instr_effects(program: &Program, routine: &Routine, instr: &Instr) -> Effects {
    let mut effects = Effects::default();
    let reads_of = |e: &Expr, eff: &mut Effects| {
        expr_reads(program, routine, e, &mut eff.reads);
    };
    match instr {
        Instr::Assign { lhs, rhs, sc } => {
            for value in rhs {
                reads_of(value, &mut effects);
            }
            for target in lhs {
                lvalue_effects(program, routine, target, &mut effects);
            }
            let shared_write = effects.writes.iter().any(|w| {
                matches!(
                    w,
                    AbsLoc::Global(_) | AbsLoc::HeapUnknown | AbsLoc::Region(_)
                )
            });
            effects.buffered = !sc && shared_write;
        }
        Instr::Malloc { into, .. } => {
            effects.allocates = true;
            lvalue_effects(program, routine, into, &mut effects);
        }
        Instr::Calloc { into, count, .. } => {
            effects.allocates = true;
            reads_of(count, &mut effects);
            lvalue_effects(program, routine, into, &mut effects);
        }
        Instr::Dealloc(target) => {
            effects.allocates = true;
            reads_of(target, &mut effects);
            effects.writes.insert(AbsLoc::HeapUnknown);
        }
        Instr::CreateThread { into, args, .. } => {
            effects.writes.insert(AbsLoc::Threads);
            for a in args {
                reads_of(a, &mut effects);
            }
            if let Some(target) = into {
                lvalue_effects(program, routine, target, &mut effects);
            }
        }
        Instr::Call { args, .. } => {
            for a in args {
                reads_of(a, &mut effects);
            }
        }
        Instr::Ret { value } => {
            if let Some(v) = value {
                reads_of(v, &mut effects);
            }
            // The return-value store happens against the *caller's* frame;
            // writing a shared lvalue from a return is possible, so be
            // conservative only when the program does that (rare). We cannot
            // see the caller here; mark nothing. Reduction treats Ret as a
            // both-mover only when the routine is private to one thread.
        }
        Instr::Guard { cond, .. } | Instr::Assert(cond) | Instr::Assume(cond) => {
            reads_of(cond, &mut effects);
        }
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => {
            for clause in requires.iter().chain(ensures) {
                reads_of(clause, &mut effects);
            }
            for target in modifies {
                lvalue_effects(program, routine, target, &mut effects);
            }
        }
        Instr::Join(handle) => {
            effects.reads.insert(AbsLoc::Threads);
            reads_of(handle, &mut effects);
        }
        Instr::Print(args) => {
            effects.writes.insert(AbsLoc::Log);
            for a in args {
                reads_of(a, &mut effects);
            }
        }
        Instr::Fence => {
            effects.fences = true;
            // Draining publishes this thread's pending writes; modeled as a
            // heap write barrier.
            effects.writes.insert(AbsLoc::HeapUnknown);
        }
        Instr::AtomicBegin { .. }
        | Instr::AtomicEnd
        | Instr::YieldPoint
        | Instr::Jump(_)
        | Instr::Noop => {}
    }
    effects
}

/// Effects of a source-level statement (used by strategies that work on the
/// AST before lowering, e.g. ownership checks on `tso_elim` recipes).
pub fn stmt_touches_var(stmt: &Stmt, var: &str) -> bool {
    fn in_expr(e: &Expr, var: &str) -> bool {
        use ExprKind::*;
        match &e.kind {
            Var(name) => name == var,
            Unary(_, a)
            | AddrOf(a)
            | Deref(a)
            | Old(a)
            | Allocated(a)
            | AllocatedArray(a)
            | Field(a, _) => in_expr(a, var),
            Binary(_, a, b) | Index(a, b) => in_expr(a, var) || in_expr(b, var),
            Call(_, args) | SeqLit(args) => args.iter().any(|a| in_expr(a, var)),
            Forall { lo, hi, body, .. } | Exists { lo, hi, body, .. } => {
                in_expr(lo, var) || in_expr(hi, var) || in_expr(body, var)
            }
            _ => false,
        }
    }
    fn in_rhs(r: &Rhs, var: &str) -> bool {
        match r {
            Rhs::Expr(e) => in_expr(e, var),
            Rhs::Calloc { count, .. } => in_expr(count, var),
            Rhs::CreateThread { args, .. } => args.iter().any(|a| in_expr(a, var)),
            Rhs::Malloc { .. } => false,
        }
    }
    match &stmt.kind {
        StmtKind::VarDecl { init: Some(r), .. } => in_rhs(r, var),
        StmtKind::Assign { lhs, rhs, .. } => {
            lhs.iter().any(|l| in_expr(l, var)) || rhs.iter().any(|r| in_rhs(r, var))
        }
        StmtKind::CallStmt { args, .. } | StmtKind::Print(args) => {
            args.iter().any(|a| in_expr(a, var))
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => in_expr(cond, var),
        StmtKind::Return(Some(e))
        | StmtKind::Assert(e)
        | StmtKind::Assume(e)
        | StmtKind::Dealloc(e)
        | StmtKind::Join(e) => in_expr(e, var),
        StmtKind::Somehow {
            requires,
            modifies,
            ensures,
        } => requires
            .iter()
            .chain(modifies)
            .chain(ensures)
            .any(|e| in_expr(e, var)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use armada_lang::{check_module, parse_module};

    fn program(src: &str) -> Program {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, &module.levels[0].name.clone()).expect("lower")
    }

    #[test]
    fn assign_effects_track_globals_and_buffering() {
        let p = program(
            r#"level L {
                var g: uint32;
                var h: uint32;
                void main() {
                    var t: uint32 := g;
                    h := t;
                    h ::= t;
                }
            }"#,
        );
        let main = &p.routines[p.main as usize];
        // instr 0: t := g — reads g, writes nothing shared.
        let e0 = instr_effects(&p, main, &main.instrs[0]);
        assert!(e0.reads.contains(&AbsLoc::Global("g".into())));
        assert!(e0.writes.is_empty());
        assert!(!e0.buffered);
        // instr 1: h := t — buffered shared write.
        let e1 = instr_effects(&p, main, &main.instrs[1]);
        assert!(e1.writes.contains(&AbsLoc::Global("h".into())));
        assert!(e1.buffered);
        // instr 2: h ::= t — sequentially consistent write.
        let e2 = instr_effects(&p, main, &main.instrs[2]);
        assert!(!e2.buffered);
        // g-read and h-write are disjoint; two h-writes are not.
        assert!(e0.disjoint(&e1));
        assert!(!e1.disjoint(&e2));
    }

    #[test]
    fn deref_is_conservative() {
        let p = program(
            r#"level L {
                var g: uint32;
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    *p := 1;
                    g := 2;
                }
            }"#,
        );
        let main = &p.routines[p.main as usize];
        let deref_write = instr_effects(&p, main, &main.instrs[1]);
        let global_write = instr_effects(&p, main, &main.instrs[2]);
        assert!(deref_write.writes.contains(&AbsLoc::HeapUnknown));
        assert!(
            !deref_write.disjoint(&global_write),
            "HeapUnknown must conflict with global writes"
        );
    }

    #[test]
    fn local_only_steps_are_thread_local() {
        let p = program(
            r#"level L {
                void main() {
                    var a: uint32 := 1;
                    var b: uint32 := a + 1;
                    print(b);
                }
            }"#,
        );
        let main = &p.routines[p.main as usize];
        assert!(instr_effects(&p, main, &main.instrs[0]).is_thread_local());
        assert!(instr_effects(&p, main, &main.instrs[1]).is_thread_local());
        assert!(!instr_effects(&p, main, &main.instrs[2]).is_thread_local());
    }

    #[test]
    fn stmt_touches_var_sees_reads_and_writes() {
        let module =
            parse_module("level L { var x: uint32; void main() { if (x < 1) { } } }").unwrap();
        let main = module.levels[0].method("main").unwrap();
        let stmt = &main.body.as_ref().unwrap().stmts[0];
        assert!(stmt_touches_var(stmt, "x"));
        assert!(!stmt_touches_var(stmt, "y"));
    }
}

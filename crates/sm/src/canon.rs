//! Symmetry reduction: canonical representatives for [`ProgState`]s.
//!
//! States that differ only by a permutation of symmetric thread ids, or by
//! the allocation order of heap objects, are behaviorally identical: the
//! permutation is an automorphism of the step relation, so the subtrees
//! rooted at the two states produce the same observable terminal classes
//! and the same refinement verdicts. The engines still intern every
//! symmetric copy as a distinct state, paying up to k! (for k symmetric
//! threads) and m! (for m interchangeable allocations) blowup. This module
//! maps each state to a *canonical representative* of its orbit before
//! interning, collapsing those copies.
//!
//! # Soundness argument (mirrors `reduce.rs`)
//!
//! Replacing a state `s` by `c = canonicalize(s)` is sound iff `c = π(s)`
//! for some automorphism `π` of the program's transition system that also
//! preserves the observables (log, termination). Then every behavior of
//! `s` maps step-for-step onto a behavior of `c` and vice versa, so
//! exploring only `c` loses nothing observable, and the refinement
//! relations — all functions of `(log, termination)` — cannot tell the
//! difference. Two distinct consequences:
//!
//! * **Soundness never depends on canonical invariance.** If two states of
//!   one orbit canonicalize to different representatives (the sort key
//!   below is not a perfect orbit invariant when threads hold tids of
//!   *other* threads), we only lose collapse, never correctness: each
//!   representative is still automorphic to its preimage.
//! * **The gate must be conservative.** A renaming is only an automorphism
//!   if the program cannot *observe* the renamed quantity. The
//!   `Canonicalizer` therefore performs a program-wide invisibility
//!   analysis and disables each symmetry dimension entirely when any
//!   observation channel exists.
//!
//! ## Thread symmetry gate
//!
//! Tid renaming is enabled only when tid values are provably confined to
//! opaque join handles:
//!
//! * no `$me` anywhere (a thread printing or storing its own id observes
//!   the numbering);
//! * every `create_thread` either discards the new tid or writes it to a
//!   plain (non-address-taken, non-duplicated) local — a *handle slot*;
//! * every `join` operand is a bare read of a handle slot;
//! * handle slots occur nowhere else in the program text (no arithmetic,
//!   no copies, no prints, no spec formulas).
//!
//! Under the gate, tids live only in handle slots, so renaming thread map
//! keys together with handle values is an automorphism: `join` sees the
//! same thread, everything else never looks. Handle slots that are *never
//! joined* are semantically dead (write-only) and are erased to 0 before
//! sorting — otherwise `var t := create_thread w()` would pin the spawn
//! order into `main`'s locals and defeat the collapse.
//!
//! The main thread keeps tid 1 (it is distinguished: it runs `main`).
//! Candidate threads 2..=n are sorted by their full [`ThreadState`]
//! footprint (pc, frames, buffer, atomic depth, status — after dead-handle
//! erasure), ties broken by original tid, and renumbered in sorted order.
//! Freshly spawned threads receive `next_tid = threads.len() + 1` in both
//! the original and the canonical state (threads are never removed), so
//! the renaming extends over a step with the identity on fresh tids.
//!
//! ## Heap symmetry gate
//!
//! Object ids are observable only through `print` (all pointer comparisons
//! across objects are UB by the §3.2.4 heap model, and ghost set/map
//! builtins are element-wise). Renumbering is enabled unless some `print`
//! argument may evaluate to a pointer-containing value, judged by a
//! conservative syntactic type analysis.
//!
//! Objects `0..globals.len()` back the globals by fixed index and keep
//! their ids. The remaining objects are renumbered by a deterministic
//! pre-order DFS from the roots — statics in id order, then ghosts, then
//! threads in canonical tid order (frames bottom-up, locals in slot
//! order), then store buffers oldest-first — with unreachable (leaked)
//! objects appended in old relative order. Two interleavings that perform
//! the same allocations in different orders thus meet in one canonical
//! heap.
//!
//! Both dimensions compose with local-step reduction (`reduce.rs`):
//! reduction shrinks the set of *edges*, canonicalization merges the
//! *endpoints*; each preserves observables independently, so any
//! combination does.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use armada_lang::ast::{BinOp, Expr, ExprKind, Type, UnOp};

use crate::heap::{Heap, HeapObject, MemNode, ObjectId, PtrVal};
use crate::program::{Instr, Program, Routine};
use crate::state::{LocalCell, ProgState, ThreadState, Tid, MAIN_TID};
use crate::value::Value;

/// How a routine-local slot participates in thread-handle flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandleKind {
    /// Not a handle; must not hold a tid (guaranteed by the gate).
    None,
    /// Written by `create_thread`, never joined: write-only, erased to 0.
    Dead,
    /// Written by `create_thread` and read only by `join`: renamed.
    Joined,
}

/// Precomputed symmetry analysis for one program, applied per state.
///
/// Construction runs the invisibility gates once; [`Canonicalizer::canonicalize`]
/// is then called on every generated state, so its fast paths matter: a
/// program failing both gates costs one boolean test per state.
#[derive(Debug, Clone)]
pub struct Canonicalizer {
    /// Thread symmetry gate verdict.
    tid_ok: bool,
    /// Heap symmetry gate verdict.
    heap_ok: bool,
    /// `program.globals.len()`: objects below this back globals by index
    /// and keep their ids.
    globals: usize,
    /// Per routine, per local slot: handle classification.
    handles: Vec<Vec<HandleKind>>,
}

impl Canonicalizer {
    /// Analyzes `program` and fixes which symmetry dimensions are sound.
    pub fn new(program: &Program) -> Canonicalizer {
        let mut canon = Canonicalizer {
            tid_ok: true,
            heap_ok: true,
            globals: program.globals.len(),
            handles: program
                .routines
                .iter()
                .map(|r| vec![HandleKind::None; r.locals.len()])
                .collect(),
        };
        canon.scan_handles(program);
        if canon.tid_ok {
            canon.scan_occurrences(program);
        }
        canon.scan_prints(program);
        canon
    }

    /// Whether thread-id renaming passed the invisibility gate.
    pub fn thread_symmetry_enabled(&self) -> bool {
        self.tid_ok
    }

    /// Whether heap-object renumbering passed the invisibility gate.
    pub fn heap_symmetry_enabled(&self) -> bool {
        self.heap_ok
    }

    /// Whether canonicalization can do anything at all for this program.
    pub fn enabled(&self) -> bool {
        self.tid_ok || self.heap_ok
    }

    /// Pass 1: find handle slots (targets of `create_thread ... into`) and
    /// which of them are joined. Any `create_thread` or `join` shape the
    /// analysis cannot prove opaque disables thread symmetry program-wide.
    fn scan_handles(&mut self, program: &Program) {
        for (ri, routine) in program.routines.iter().enumerate() {
            for instr in &routine.instrs {
                match instr {
                    Instr::CreateThread {
                        into: Some(into), ..
                    } => match self.handle_slot(routine, into) {
                        Some(slot) => {
                            if self.handles[ri][slot] == HandleKind::None {
                                self.handles[ri][slot] = HandleKind::Dead;
                            }
                        }
                        None => self.tid_ok = false,
                    },
                    Instr::Join(handle) => match self.handle_slot(routine, handle) {
                        Some(slot) => self.handles[ri][slot] = HandleKind::Joined,
                        None => self.tid_ok = false,
                    },
                    _ => {}
                }
            }
        }
        // A join of a slot no create_thread writes reads the zero value —
        // not a handle at all; it stays `Joined` harmlessly (renaming only
        // touches values in 2..=n, and such a slot always holds 0).
    }

    /// Resolves an expression to a usable handle slot: a bare `Var` naming
    /// a unique, non-address-taken, non-ghost local of the routine.
    fn handle_slot(&self, routine: &Routine, expr: &Expr) -> Option<usize> {
        let name = match &expr.kind {
            ExprKind::Var(name) => name,
            _ => return None,
        };
        let slot = routine.local_slot(name)?;
        let local = &routine.locals[slot];
        let unique = routine.locals.iter().filter(|l| l.name == *name).count() == 1;
        (unique && !local.addr_taken && !local.ghost).then_some(slot)
    }

    /// Pass 2: `$me` anywhere, or any occurrence of a handle slot outside
    /// its `create_thread` target / `join` operand positions, disables
    /// thread symmetry.
    fn scan_occurrences(&mut self, program: &Program) {
        for function in program.functions.values() {
            let mut ok = true;
            scan_expr(&function.body, &mut |kind| {
                if matches!(kind, ExprKind::Me) {
                    ok = false;
                }
            });
            if !ok {
                self.tid_ok = false;
                return;
            }
        }
        for (ri, routine) in program.routines.iter().enumerate() {
            for instr in &routine.instrs {
                let mut exprs: Vec<&Expr> = Vec::new();
                match instr {
                    // The blessed positions: check args but skip the
                    // handle-typed operand itself.
                    Instr::CreateThread { args, .. } => exprs.extend(args),
                    Instr::Join(_) => {}
                    _ => collect_instr_exprs(instr, &mut exprs),
                }
                for expr in exprs {
                    let mut ok = true;
                    scan_expr(expr, &mut |kind| match kind {
                        ExprKind::Me => ok = false,
                        ExprKind::Var(name) => {
                            if let Some(slot) = routine.local_slot(name) {
                                if self.handles[ri][slot] != HandleKind::None {
                                    ok = false;
                                }
                            }
                        }
                        _ => {}
                    });
                    if !ok {
                        self.tid_ok = false;
                        return;
                    }
                }
            }
        }
    }

    /// Heap gate: disable renumbering if any `print` argument may evaluate
    /// to a value containing a pointer (the one channel through which
    /// object-id numbering reaches the observable log).
    fn scan_prints(&mut self, program: &Program) {
        for routine in &program.routines {
            for instr in &routine.instrs {
                if let Instr::Print(args) = instr {
                    if args
                        .iter()
                        .any(|arg| expr_may_yield_ptr(program, routine, arg))
                    {
                        self.heap_ok = false;
                        return;
                    }
                }
            }
        }
    }

    /// Maps `state` to its canonical representative. Returns the new state
    /// and, when thread renaming happened, the *inverse* tid map: index
    /// `canonical_tid - 1` holds the tid the thread carried on entry
    /// (`None` means the renaming was the identity).
    pub fn canonicalize(&self, state: ProgState) -> (ProgState, Option<Vec<Tid>>) {
        let mut state = state;
        let mut inverse = None;
        if self.tid_ok {
            self.erase_dead_handles(&mut state);
            inverse = self.sort_threads(&mut state);
        }
        if self.heap_ok && state.heap.len() > self.globals {
            self.renumber_heap(&mut state);
        }
        (state, inverse)
    }

    /// Zeroes every dead (never-joined) handle slot: the value is
    /// write-only, so erasing it is automorphic, and keeping it would pin
    /// spawn order into the spawner's locals.
    fn erase_dead_handles(&self, state: &mut ProgState) {
        for thread in state.threads.values_mut() {
            for frame in &mut thread.frames {
                let slots = &self.handles[frame.routine as usize];
                if !slots.contains(&HandleKind::Dead) {
                    continue;
                }
                let stale = frame.locals.iter().enumerate().any(|(i, cell)| {
                    slots[i] == HandleKind::Dead
                        && matches!(
                            cell,
                            LocalCell::Val(MemNode::Leaf(Value::Int { val, .. })) if *val != 0
                        )
                });
                if !stale {
                    continue;
                }
                let frame = Arc::make_mut(frame);
                for (i, cell) in frame.locals.iter_mut().enumerate() {
                    if slots[i] != HandleKind::Dead {
                        continue;
                    }
                    if let LocalCell::Val(MemNode::Leaf(Value::Int { ty, val })) = cell {
                        if *val != 0 {
                            *cell = LocalCell::Val(MemNode::Leaf(Value::Int { ty: *ty, val: 0 }));
                        }
                    }
                }
            }
        }
    }

    /// Sorts candidate threads (everything but main) by footprint and
    /// renumbers them in sorted order, renaming joined-handle values
    /// consistently. Returns the inverse map, or `None` for identity.
    fn sort_threads(&self, state: &mut ProgState) -> Option<Vec<Tid>> {
        let n = state.threads.len() as Tid;
        if n <= 2 {
            return None; // main plus at most one candidate: nothing to permute.
        }
        // Tids are handed out contiguously from 1 and threads are never
        // removed; bail rather than misrename if that ever changes.
        if state.next_tid != n + 1 || state.threads.keys().next_back() != Some(&n) {
            debug_assert!(false, "non-contiguous tids in canonicalization");
            return None;
        }
        // Where is each candidate tid referenced from main's live joined
        // handle slots? Two candidates with identical footprints are still
        // *distinguishable* if main holds their handles in different slots
        // (a future `join t1` blocks on one specific thread), so the sort
        // key must include these references — otherwise two states related
        // by a renaming could pick different representatives, and the
        // canonical image would gain states instead of losing them. Main's
        // position is fixed under the permutation, so its slot coordinates
        // are renaming-invariant. (Handles held by *candidate* threads are
        // not folded in — their holder's canonical position is exactly what
        // is being computed. That can cost collapse in nested-spawn
        // programs, never soundness: the result is still a plain renaming.)
        let mut refs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n as usize + 1];
        if let Some(main) = state.threads.get(&MAIN_TID) {
            for (frame_idx, frame) in main.frames.iter().enumerate() {
                let slots = &self.handles[frame.routine as usize];
                for (slot_idx, cell) in frame.locals.iter().enumerate() {
                    if slots[slot_idx] != HandleKind::Joined {
                        continue;
                    }
                    if let LocalCell::Val(MemNode::Leaf(Value::Int { val, .. })) = cell {
                        if (2..=n as i128).contains(val) {
                            refs[*val as usize].push((frame_idx, slot_idx));
                        }
                    }
                }
            }
        }
        let mut candidates: Vec<Tid> = (MAIN_TID + 1..=n).collect();
        candidates.sort_by(|a, b| {
            state.threads[a]
                .cmp(&state.threads[b])
                .then_with(|| refs[*a as usize].cmp(&refs[*b as usize]))
                .then(a.cmp(b))
        });
        // perm[old] = canonical tid.
        let mut perm: Vec<Tid> = vec![0; n as usize + 1];
        perm[MAIN_TID as usize] = MAIN_TID;
        for (index, &old) in candidates.iter().enumerate() {
            perm[old as usize] = MAIN_TID + 1 + index as Tid;
        }
        if perm
            .iter()
            .enumerate()
            .skip(1)
            .all(|(i, &to)| to == i as Tid)
        {
            return None;
        }
        let threads = std::mem::take(&mut state.threads);
        for (old, mut thread) in threads {
            self.rename_joined_handles(&mut thread, &perm, n);
            state.threads.insert(perm[old as usize], thread);
        }
        let mut inverse = vec![0; n as usize];
        for old in 1..=n as usize {
            inverse[perm[old] as usize - 1] = old as Tid;
        }
        Some(inverse)
    }

    /// Applies the tid permutation to every joined-handle slot of `thread`.
    fn rename_joined_handles(&self, thread: &mut ThreadState, perm: &[Tid], n: Tid) {
        for frame in &mut thread.frames {
            let slots = &self.handles[frame.routine as usize];
            if !slots.contains(&HandleKind::Joined) {
                continue;
            }
            let stale = frame.locals.iter().enumerate().any(|(i, cell)| {
                slots[i] == HandleKind::Joined
                    && matches!(
                        cell,
                        LocalCell::Val(MemNode::Leaf(Value::Int { val, .. }))
                            if (2..=n as i128).contains(val) && perm[*val as usize] != *val as Tid
                    )
            });
            if !stale {
                continue;
            }
            let frame = Arc::make_mut(frame);
            for (i, cell) in frame.locals.iter_mut().enumerate() {
                if slots[i] != HandleKind::Joined {
                    continue;
                }
                if let LocalCell::Val(MemNode::Leaf(Value::Int { ty, val })) = cell {
                    if (2..=n as i128).contains(val) {
                        let renamed = perm[*val as usize] as i128;
                        if renamed != *val {
                            *cell = LocalCell::Val(MemNode::Leaf(Value::Int {
                                ty: *ty,
                                val: renamed,
                            }));
                        }
                    }
                }
            }
        }
    }

    /// Renumbers non-global heap objects by a deterministic DFS from the
    /// roots and rewrites every `ObjectId` occurrence in the state.
    fn renumber_heap(&self, state: &mut ProgState) {
        let total = state.heap.len();
        let globals = self.globals;
        // new_of[old] = canonical id; globals keep their ids.
        let mut new_of: Vec<u32> = vec![u32::MAX; total];
        let mut next = globals as u32;
        for (id, slot) in new_of.iter_mut().enumerate().take(globals) {
            *slot = id as u32;
        }
        {
            let mut dfs = HeapDfs {
                heap: &state.heap,
                globals,
                new_of: &mut new_of,
                next: &mut next,
                stack: Vec::new(),
                scanned_statics: vec![false; globals],
            };
            // Roots, in canonical order: statics, ghosts, threads (already
            // in canonical tid order), store buffers.
            for id in 0..globals {
                dfs.visit(ObjectId(id as u32));
            }
            for ghost in &state.ghosts {
                scan_value_objects(ghost, &mut |id| dfs.visit(id));
            }
            for thread in state.threads.values() {
                for frame in &thread.frames {
                    for cell in &frame.locals {
                        match cell {
                            LocalCell::Obj(id) => dfs.visit(*id),
                            LocalCell::Val(node) => {
                                scan_node_objects(node, &mut |id| dfs.visit(id))
                            }
                        }
                    }
                }
                for write in &thread.buffer {
                    dfs.visit(write.loc.object);
                    scan_value_objects(&write.value, &mut |id| dfs.visit(id));
                }
            }
        }
        // Leaked objects: unreachable, renumbered after everything else in
        // old relative order.
        for (old, slot) in new_of.iter_mut().enumerate().skip(globals) {
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
                debug_assert!(old < total);
            }
        }
        debug_assert_eq!(next as usize, total);
        if new_of
            .iter()
            .enumerate()
            .all(|(old, &id)| old == id as usize)
        {
            return;
        }
        apply_renumbering(state, &new_of);
    }
}

/// Iterative pre-order DFS over the heap forest, assigning canonical ids
/// to dynamic objects in first-visit order.
struct HeapDfs<'a> {
    heap: &'a Heap,
    globals: usize,
    new_of: &'a mut Vec<u32>,
    next: &'a mut u32,
    stack: Vec<ObjectId>,
    scanned_statics: Vec<bool>,
}

impl HeapDfs<'_> {
    fn visit(&mut self, root: ObjectId) {
        self.stack.push(root);
        while let Some(id) = self.stack.pop() {
            let index = id.0 as usize;
            if index >= self.new_of.len() {
                debug_assert!(false, "dangling object id {id}");
                continue;
            }
            if index < self.globals {
                if std::mem::replace(&mut self.scanned_statics[index], true) {
                    continue;
                }
            } else {
                if self.new_of[index] != u32::MAX {
                    continue;
                }
                self.new_of[index] = *self.next;
                *self.next += 1;
            }
            if let Some(object) = self.heap.object(id) {
                // Children pushed in reverse so they pop in node order.
                let mut children = Vec::new();
                scan_node_objects(&object.node, &mut |child| children.push(child));
                for child in children.into_iter().rev() {
                    self.stack.push(child);
                }
            }
        }
    }
}

/// Rewrites every `ObjectId` in `state` through `new_of` (heap reindexed,
/// pointers in heap nodes, locals, buffers, ghosts, and the log).
fn apply_renumbering(state: &mut ProgState, new_of: &[u32]) {
    let map = |id: ObjectId| -> ObjectId {
        match new_of.get(id.0 as usize) {
            Some(&new) => ObjectId(new),
            None => id,
        }
    };
    let old_heap = std::mem::take(&mut state.heap);
    let mut objects: Vec<Option<Arc<HeapObject>>> = vec![None; old_heap.len()];
    for (old, object) in old_heap.into_objects().into_iter().enumerate() {
        let node = map_node_objects(&object.node, &map);
        let object = match node {
            Some(node) => Arc::new(HeapObject { node, ..*object }),
            None => object,
        };
        objects[new_of[old] as usize] = Some(object);
    }
    state.heap = Heap::from_objects(
        objects
            .into_iter()
            .map(|slot| slot.expect("renumbering is a bijection"))
            .collect(),
    );
    for thread in state.threads.values_mut() {
        for frame in &mut thread.frames {
            let stale = frame.locals.iter().any(|cell| match cell {
                LocalCell::Obj(id) => map(*id) != *id,
                LocalCell::Val(node) => {
                    let mut touched = false;
                    scan_node_objects(node, &mut |id| touched |= map(id) != id);
                    touched
                }
            });
            if !stale {
                continue;
            }
            let frame = Arc::make_mut(frame);
            for cell in &mut frame.locals {
                match cell {
                    LocalCell::Obj(id) => *id = map(*id),
                    LocalCell::Val(node) => {
                        if let Some(mapped) = map_node_objects(node, &map) {
                            *node = mapped;
                        }
                    }
                }
            }
        }
        if !thread.buffer.is_empty() {
            let buffer = std::mem::take(&mut thread.buffer);
            thread.buffer = buffer
                .into_iter()
                .map(|mut write| {
                    write.loc.object = map(write.loc.object);
                    if let Some(value) = map_value_objects(&write.value, &map) {
                        write.value = value;
                    }
                    write
                })
                .collect::<VecDeque<_>>();
        }
    }
    for ghost in &mut state.ghosts {
        if let Some(value) = map_value_objects(ghost, &map) {
            *ghost = value;
        }
    }
    for entry in &mut state.log {
        if let Some(value) = map_value_objects(entry, &map) {
            *entry = value;
        }
    }
}

/// Calls `f` on every `ObjectId` inside `value`, in deterministic
/// left-to-right order.
fn scan_value_objects(value: &Value, f: &mut impl FnMut(ObjectId)) {
    match value {
        Value::Ptr(Some(ptr)) => f(ptr.object),
        Value::Seq(elems) => elems.iter().for_each(|v| scan_value_objects(v, f)),
        Value::Set(elems) => elems.iter().for_each(|v| scan_value_objects(v, f)),
        Value::Map(entries) => {
            for (k, v) in entries {
                scan_value_objects(k, f);
                scan_value_objects(v, f);
            }
        }
        Value::Opt(Some(inner)) => scan_value_objects(inner, f),
        _ => {}
    }
}

/// Calls `f` on every `ObjectId` inside `node`.
fn scan_node_objects(node: &MemNode, f: &mut impl FnMut(ObjectId)) {
    match node {
        MemNode::Leaf(value) => scan_value_objects(value, f),
        MemNode::Array(children) => children.iter().for_each(|n| scan_node_objects(n, f)),
        MemNode::Struct(fields) => fields.iter().for_each(|(_, n)| scan_node_objects(n, f)),
    }
}

/// Rewrites object ids inside `value`; `None` when nothing changed (so
/// callers skip clone-and-replace on untouched values).
fn map_value_objects(value: &Value, map: &impl Fn(ObjectId) -> ObjectId) -> Option<Value> {
    match value {
        Value::Ptr(Some(ptr)) => {
            let mapped = map(ptr.object);
            (mapped != ptr.object).then(|| {
                Value::Ptr(Some(PtrVal {
                    object: mapped,
                    path: ptr.path.clone(),
                }))
            })
        }
        Value::Seq(elems) => {
            if elems.iter().all(|v| map_value_objects(v, map).is_none()) {
                return None;
            }
            Some(Value::Seq(
                elems
                    .iter()
                    .map(|v| map_value_objects(v, map).unwrap_or_else(|| v.clone()))
                    .collect(),
            ))
        }
        Value::Set(elems) => {
            if elems.iter().all(|v| map_value_objects(v, map).is_none()) {
                return None;
            }
            Some(Value::Set(
                elems
                    .iter()
                    .map(|v| map_value_objects(v, map).unwrap_or_else(|| v.clone()))
                    .collect::<BTreeSet<_>>(),
            ))
        }
        Value::Map(entries) => {
            if entries.iter().all(|(k, v)| {
                map_value_objects(k, map).is_none() && map_value_objects(v, map).is_none()
            }) {
                return None;
            }
            Some(Value::Map(
                entries
                    .iter()
                    .map(|(k, v)| {
                        (
                            map_value_objects(k, map).unwrap_or_else(|| k.clone()),
                            map_value_objects(v, map).unwrap_or_else(|| v.clone()),
                        )
                    })
                    .collect::<BTreeMap<_, _>>(),
            ))
        }
        Value::Opt(Some(inner)) => {
            map_value_objects(inner, map).map(|v| Value::Opt(Some(Box::new(v))))
        }
        _ => None,
    }
}

/// Rewrites object ids inside `node`; `None` when nothing changed.
fn map_node_objects(node: &MemNode, map: &impl Fn(ObjectId) -> ObjectId) -> Option<MemNode> {
    match node {
        MemNode::Leaf(value) => map_value_objects(value, map).map(MemNode::Leaf),
        MemNode::Array(children) => {
            if children.iter().all(|n| map_node_objects(n, map).is_none()) {
                return None;
            }
            Some(MemNode::Array(
                children
                    .iter()
                    .map(|n| map_node_objects(n, map).unwrap_or_else(|| n.clone()))
                    .collect(),
            ))
        }
        MemNode::Struct(fields) => {
            if fields
                .iter()
                .all(|(_, n)| map_node_objects(n, map).is_none())
            {
                return None;
            }
            Some(MemNode::Struct(
                fields
                    .iter()
                    .map(|(name, n)| {
                        (
                            name.clone(),
                            map_node_objects(n, map).unwrap_or_else(|| n.clone()),
                        )
                    })
                    .collect(),
            ))
        }
    }
}

/// Applies `f` to every sub-expression kind of `expr`, including `expr`
/// itself.
fn scan_expr(expr: &Expr, f: &mut impl FnMut(&ExprKind)) {
    f(&expr.kind);
    match &expr.kind {
        ExprKind::Unary(_, a)
        | ExprKind::AddrOf(a)
        | ExprKind::Deref(a)
        | ExprKind::Old(a)
        | ExprKind::Allocated(a)
        | ExprKind::AllocatedArray(a)
        | ExprKind::Field(a, _) => scan_expr(a, f),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            scan_expr(a, f);
            scan_expr(b, f);
        }
        ExprKind::Call(_, args) | ExprKind::SeqLit(args) => {
            args.iter().for_each(|a| scan_expr(a, f))
        }
        ExprKind::Forall { lo, hi, body, .. } | ExprKind::Exists { lo, hi, body, .. } => {
            scan_expr(lo, f);
            scan_expr(hi, f);
            scan_expr(body, f);
        }
        _ => {}
    }
}

/// Collects every expression an instruction mentions.
fn collect_instr_exprs<'a>(instr: &'a Instr, out: &mut Vec<&'a Expr>) {
    match instr {
        Instr::Assign { lhs, rhs, .. } => out.extend(lhs.iter().chain(rhs)),
        Instr::Malloc { into, .. } => out.push(into),
        Instr::Calloc { into, count, .. } => out.extend([into, count]),
        Instr::CreateThread { into, args, .. } => {
            out.extend(args);
            out.extend(into.as_ref());
        }
        Instr::Call { args, into, .. } => {
            out.extend(args);
            out.extend(into.as_ref());
        }
        Instr::Ret { value } => out.extend(value.as_ref()),
        Instr::Guard { cond, .. } | Instr::Assert(cond) | Instr::Assume(cond) => out.push(cond),
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => out.extend(requires.iter().chain(modifies).chain(ensures)),
        Instr::Dealloc(e) | Instr::Join(e) => out.push(e),
        Instr::Print(args) => out.extend(args),
        Instr::Fence
        | Instr::Jump(_)
        | Instr::AtomicBegin { .. }
        | Instr::AtomicEnd
        | Instr::YieldPoint
        | Instr::Noop => {}
    }
}

/// Whether a value of type `ty` can contain a non-null pointer.
fn may_contain_ptr(
    ty: &Type,
    structs: &BTreeMap<String, Vec<(String, Type)>>,
    seen: &mut Vec<String>,
) -> bool {
    match ty {
        Type::Int(_) | Type::Bool | Type::MathInt => false,
        Type::Pointer(_) => true,
        Type::Array(elem, _) | Type::Seq(elem) | Type::Set(elem) | Type::Option(elem) => {
            may_contain_ptr(elem, structs, seen)
        }
        Type::Map(key, value) => {
            may_contain_ptr(key, structs, seen) || may_contain_ptr(value, structs, seen)
        }
        Type::Named(name) => {
            if seen.iter().any(|s| s == name) {
                return false;
            }
            seen.push(name.clone());
            match structs.get(name) {
                Some(fields) => fields
                    .iter()
                    .any(|(_, field_ty)| may_contain_ptr(field_ty, structs, seen)),
                None => true,
            }
        }
    }
}

/// Conservative: can `expr` evaluate to a pointer-containing value? Used
/// only to gate heap renumbering on `print` arguments, so "don't know"
/// answers `true`.
fn expr_may_yield_ptr(program: &Program, routine: &Routine, expr: &Expr) -> bool {
    let ty_may = |ty: &Type| may_contain_ptr(ty, &program.structs, &mut Vec::new());
    match &expr.kind {
        ExprKind::IntLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Me
        | ExprKind::SbEmpty
        | ExprKind::Allocated(_)
        | ExprKind::AllocatedArray(_)
        | ExprKind::Forall { .. }
        | ExprKind::Exists { .. } => false,
        // `null` and nondet pool values are object-id-free (`Ptr(None)`
        // prints as `null`), so they cannot leak numbering into the log.
        ExprKind::Null | ExprKind::Nondet => false,
        ExprKind::Var(name) => {
            if let Some(slot) = routine.local_slot(name) {
                return ty_may(&routine.locals[slot].ty);
            }
            if let Some(index) = program.global_index(name) {
                return ty_may(&program.globals[index as usize].ty);
            }
            if let Some(index) = program.ghost_index(name) {
                return ty_may(&program.ghosts[index as usize].ty);
            }
            true // quantifier-bound or unknown: assume the worst.
        }
        ExprKind::Unary(op, a) => match op {
            UnOp::Not | UnOp::Neg => false,
            _ => expr_may_yield_ptr(program, routine, a),
        },
        ExprKind::Binary(op, a, b) => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => false,
            _ => expr_may_yield_ptr(program, routine, a) || expr_may_yield_ptr(program, routine, b),
        },
        ExprKind::AddrOf(_) => true,
        ExprKind::Old(a) => expr_may_yield_ptr(program, routine, a),
        ExprKind::Call(name, _) => match program.functions.get(name) {
            Some(function) => ty_may(&function.ret),
            None => true, // builtins and unknowns: assume the worst.
        },
        ExprKind::SeqLit(args) => args.iter().any(|a| expr_may_yield_ptr(program, routine, a)),
        // Deref / field / index: would need full expression typing to
        // refine; pointer-bearing prints are rare enough that assuming the
        // worst only costs collapse on those programs.
        ExprKind::Deref(_) | ExprKind::Field(_, _) | ExprKind::Index(_, _) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Location, RootKind};
    use crate::lower::lower;
    use armada_lang::ast::IntType;
    use armada_lang::{check_module, parse_module};

    fn program(src: &str) -> Program {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, &module.levels[0].name.clone()).expect("lower")
    }

    const SYMMETRIC: &str = r#"level L {
        var done: uint32;
        void w() { atomic { done := done + 1; } }
        void main() {
            var t1: uint64 := create_thread w();
            var t2: uint64 := create_thread w();
            var d: uint32 := done;
            while (d < 2) { d := done; }
        }
    }"#;

    #[test]
    fn gate_accepts_opaque_handles_and_rejects_me() {
        let canon = Canonicalizer::new(&program(SYMMETRIC));
        assert!(canon.thread_symmetry_enabled());
        assert!(canon.heap_symmetry_enabled());

        let with_me = program(
            r#"level L {
                var holder: uint64;
                void w() { holder := $me; }
                void main() { var t: uint64 := create_thread w(); join t; }
            }"#,
        );
        assert!(!Canonicalizer::new(&with_me).thread_symmetry_enabled());
    }

    #[test]
    fn gate_rejects_handle_misuse() {
        // The handle escapes into arithmetic: renaming it would be
        // observable, so the gate must refuse.
        let leaky = program(
            r#"level L {
                var x: uint64;
                void w() { }
                void main() {
                    var t: uint64 := create_thread w();
                    x := t + 1;
                    join t;
                }
            }"#,
        );
        assert!(!Canonicalizer::new(&leaky).thread_symmetry_enabled());

        // Printing the handle is likewise an observation.
        let printy = program(
            r#"level L {
                void w() { }
                void main() {
                    var t: uint64 := create_thread w();
                    print(t);
                    join t;
                }
            }"#,
        );
        assert!(!Canonicalizer::new(&printy).thread_symmetry_enabled());
    }

    #[test]
    fn gate_rejects_pointer_prints_for_heap_symmetry_only() {
        let p = program(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    print(p);
                    dealloc p;
                }
            }"#,
        );
        let canon = Canonicalizer::new(&p);
        assert!(!canon.heap_symmetry_enabled());
        assert!(canon.thread_symmetry_enabled());
    }

    #[test]
    fn symmetric_spawn_orders_collapse_to_one_canonical_state() {
        // Drive the symmetric program to two states that differ only in
        // which worker has already run, then check both canonicalize
        // identically.
        let p = program(SYMMETRIC);
        let bounds = crate::Bounds::small().with_reduction(false);
        let plain = crate::explore(&p, &bounds.clone().with_symmetry(false));
        let canon = crate::explore(&p, &bounds.with_symmetry(true));
        assert!(
            canon.arena.len() < plain.arena.len(),
            "two symmetric threads must collapse some states: {} vs {}",
            canon.arena.len(),
            plain.arena.len()
        );
        // Observables are untouched.
        let logs = |e: &crate::Exploration| {
            e.exited
                .iter()
                .map(|s| format!("{:?}{:?}", s.log, s.termination))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(logs(&plain), logs(&canon));
    }

    #[test]
    fn dead_handles_are_erased() {
        let p = program(
            r#"level L {
                var done: uint32;
                void w() { atomic { done := done + 1; } }
                void main() {
                    var t1: uint64 := create_thread w();
                    var t2: uint64 := create_thread w();
                    var d: uint32 := done;
                    while (d < 2) { d := done; }
                }
            }"#,
        );
        let canon = Canonicalizer::new(&p);
        let mut state = crate::state::initial_state(&p).unwrap();
        // Simulate main having spawned both workers: handle slots hold 2, 3.
        let main = state.threads.get_mut(&MAIN_TID).unwrap();
        let frame = Arc::make_mut(main.frames.last_mut().unwrap());
        frame.locals[0] = LocalCell::Val(MemNode::Leaf(Value::tid(2)));
        frame.locals[1] = LocalCell::Val(MemNode::Leaf(Value::tid(3)));
        let (canonical, inverse) = canon.canonicalize(state);
        assert!(inverse.is_none(), "no candidate threads yet");
        let frame = canonical.threads[&MAIN_TID].top_frame();
        assert_eq!(
            frame.locals[0],
            LocalCell::Val(MemNode::Leaf(Value::tid(0)))
        );
        assert_eq!(
            frame.locals[1],
            LocalCell::Val(MemNode::Leaf(Value::tid(0)))
        );
    }

    #[test]
    fn heap_renumbering_collapses_allocation_order() {
        let p = program(
            r#"level L {
                var a: ptr<uint32>;
                var b: ptr<uint32>;
                void main() { a := malloc(uint32); b := malloc(uint32); }
            }"#,
        );
        let canon = Canonicalizer::new(&p);
        assert!(canon.heap_symmetry_enabled());
        // Build two states by hand: a→obj2, b→obj3 versus a→obj3, b→obj2
        // (allocation order reversed). They must canonicalize identically.
        let build = |first_for_a: bool| {
            let mut state = crate::state::initial_state(&p).unwrap();
            let x = state
                .heap
                .alloc(MemNode::Leaf(Value::int(IntType::U32, 0)), RootKind::Malloc);
            let y = state
                .heap
                .alloc(MemNode::Leaf(Value::int(IntType::U32, 0)), RootKind::Malloc);
            let (for_a, for_b) = if first_for_a { (x, y) } else { (y, x) };
            state
                .heap
                .write_leaf(
                    &Location {
                        object: ObjectId(0),
                        path: vec![],
                    },
                    Value::Ptr(Some(PtrVal::to_root(for_a))),
                )
                .unwrap();
            state
                .heap
                .write_leaf(
                    &Location {
                        object: ObjectId(1),
                        path: vec![],
                    },
                    Value::Ptr(Some(PtrVal::to_root(for_b))),
                )
                .unwrap();
            canon.canonicalize(state).0
        };
        assert_eq!(build(true), build(false));
    }
}

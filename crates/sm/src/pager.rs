//! Disk-backed page store for interned states: the mechanism behind
//! `--mem-cap`.
//!
//! The state arena is append-only — a state, once interned, is never
//! mutated — so paging is *write-on-seal*: states accumulate in a tail
//! page, and when the page fills it is encoded ([`crate::codec`]), fitted
//! with the checksum + temp-file + rename discipline of
//! [`crate::codec::write_atomic`], and written out exactly once. From then
//! on the in-memory copy is redundant: **eviction is free** (drop the
//! `Vec` of `Arc`s) and a **fault** is a read + checksum verify + decode.
//! A page whose checksum fails on fault is discarded unread — corrupt
//! bytes are never decoded, never served — and re-read from disk once
//! (the torn-read case); a page that fails twice aborts the run loudly
//! rather than risk a wrong verdict.
//!
//! Residency is governed by a byte budget over *encoded* page sizes (the
//! stable, measurable proxy for state footprint): when resident bytes
//! exceed the cap, least-recently-touched sealed pages are dropped until
//! the budget holds. The tail page is always resident (it has no file
//! yet), so the effective floor is one page.
//!
//! Hit/miss/evict tallies accumulate in a
//! [`armada_runtime::telemetry::CounterSet`]-compatible shape via
//! [`Pager::counters`], which the engines merge into their stage
//! telemetry. Counts depend on access order and therefore on `jobs`;
//! like the histograms, they are stderr-only diagnostics, never part of a
//! byte-identity surface.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::codec::{self, Dec, Enc};
use crate::state::ProgState;

/// Default number of states per page: small enough that a tiny `--mem-cap`
/// on a toy subject still seals several pages, large enough to amortize
/// the per-file cost on real subjects.
pub const DEFAULT_PAGE_STATES: usize = 64;

/// Configuration for a spill-backed arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillSpec {
    /// Resident-byte budget (encoded sizes) for sealed pages.
    pub mem_cap: u64,
    /// Directory to spill under; the pager creates a unique run
    /// subdirectory inside it and removes it on drop.
    pub dir: PathBuf,
    /// States per page.
    pub page_states: usize,
    /// Fault-injection hook (fuzzing only): the first faulted page read
    /// observes deliberately corrupted bytes, exercising the
    /// checksum-reject + re-read path.
    pub corrupt_first_read: bool,
}

impl SpillSpec {
    /// A spec with the default page size and no fault injection.
    pub fn new(mem_cap: u64, dir: PathBuf) -> SpillSpec {
        SpillSpec {
            mem_cap,
            dir,
            page_states: DEFAULT_PAGE_STATES,
            corrupt_first_read: false,
        }
    }
}

/// One page of interned states.
struct Page {
    /// Resident states, id order within the page; `None` once evicted.
    states: Option<Vec<Arc<ProgState>>>,
    /// Encoded payload size; exact once sealed.
    bytes: u64,
    /// LRU clock value of the last access.
    last_touch: u64,
    /// Whether the page file has been written.
    sealed: bool,
}

/// Monotonic source of unique pager run-directory names (several pagers
/// can coexist in one process: parallel recipes, tests).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// The disk-backed page store. Indices are assigned densely in push
/// order, matching the owning arena's [`crate::arena::StateId`]s.
pub struct Pager {
    spec: SpillSpec,
    /// Unique per-run spill directory (inside `spec.dir`).
    run_dir: PathBuf,
    pages: Vec<Page>,
    /// States pushed into the not-yet-full tail page, with their encoded
    /// bytes (kept so sealing concatenates instead of re-encoding and the
    /// tail counts exactly against the budget).
    tail: Vec<(Arc<ProgState>, Vec<u8>)>,
    tail_bytes: u64,
    len: usize,
    /// Encoded bytes currently resident (sealed resident pages + tail).
    resident_bytes: u64,
    clock: u64,
    // Monotonic event tallies, drained into telemetry by the engines.
    hits: u64,
    misses: u64,
    evictions: u64,
    corrupt_rejected: u64,
    peak_resident: u64,
    injected_corruption: bool,
}

impl Pager {
    /// Creates the pager and its unique spill directory.
    pub fn new(spec: SpillSpec) -> std::io::Result<Pager> {
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let run_dir = spec.dir.join(format!("pg-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&run_dir)?;
        Ok(Pager {
            spec,
            run_dir,
            pages: Vec::new(),
            tail: Vec::new(),
            tail_bytes: 0,
            len: 0,
            resident_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            corrupt_rejected: 0,
            peak_resident: 0,
            injected_corruption: false,
        })
    }

    /// Number of states pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The spec this pager was built from.
    pub fn spec(&self) -> &SpillSpec {
        &self.spec
    }

    /// Total encoded bytes across all pages — the run's "footprint" in
    /// the same units the cap governs.
    pub fn total_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.bytes).sum::<u64>() + self.tail_bytes
    }

    fn page_path(&self, page: usize) -> PathBuf {
        self.run_dir.join(format!("page-{page:08}.bin"))
    }

    /// Appends a state; its index is the pre-push [`Pager::len`].
    pub fn push(&mut self, state: Arc<ProgState>) {
        let bytes = codec::state_to_bytes(&state);
        self.tail_bytes += bytes.len() as u64;
        self.resident_bytes += bytes.len() as u64;
        self.peak_resident = self.peak_resident.max(self.resident_bytes);
        self.tail.push((state, bytes));
        self.len += 1;
        if self.tail.len() >= self.spec.page_states {
            self.seal_tail();
            self.enforce_cap();
        }
    }

    /// Seals the tail into a page file. The states stay resident (the
    /// page is hot until the cap says otherwise).
    fn seal_tail(&mut self) {
        let page_ix = self.pages.len();
        let mut enc = Enc::new();
        enc.len_of(self.tail.len());
        for (_, bytes) in &self.tail {
            enc.bytes(bytes);
        }
        let payload = enc.into_bytes();
        let path = self.page_path(page_ix);
        codec::write_atomic(&path, &payload)
            .unwrap_or_else(|err| panic!("spill: writing page {} failed: {err}", path.display()));
        let states: Vec<Arc<ProgState>> = self.tail.drain(..).map(|(s, _)| s).collect();
        self.resident_bytes -= self.tail_bytes;
        self.resident_bytes += payload.len() as u64;
        self.pages.push(Page {
            states: Some(states),
            bytes: payload.len() as u64,
            last_touch: self.clock,
            sealed: true,
        });
        self.tail_bytes = 0;
        self.peak_resident = self.peak_resident.max(self.resident_bytes);
    }

    /// Evicts least-recently-touched sealed pages until the resident
    /// budget holds (the tail never evicts — it has no file yet).
    fn enforce_cap(&mut self) {
        while self.resident_bytes > self.spec.mem_cap {
            let victim = self
                .pages
                .iter()
                .enumerate()
                .filter(|(_, p)| p.sealed && p.states.is_some())
                .min_by_key(|(_, p)| p.last_touch)
                .map(|(i, _)| i);
            let Some(victim) = victim else { break };
            let page = &mut self.pages[victim];
            page.states = None;
            self.resident_bytes -= page.bytes;
            self.evictions += 1;
        }
    }

    /// The state at `index`, faulting its page in from disk if evicted.
    ///
    /// # Panics
    ///
    /// Panics if the page file fails verification on two consecutive
    /// reads — serving (or silently skipping) corrupt states is never an
    /// option for a verifier.
    pub fn get(&mut self, index: usize) -> Arc<ProgState> {
        let page_ix = index / self.spec.page_states;
        let offset = index % self.spec.page_states;
        self.clock += 1;
        if page_ix >= self.pages.len() {
            // Tail page.
            self.hits += 1;
            return Arc::clone(&self.tail[offset].0);
        }
        self.pages[page_ix].last_touch = self.clock;
        if let Some(states) = &self.pages[page_ix].states {
            self.hits += 1;
            return Arc::clone(&states[offset]);
        }
        self.misses += 1;
        let states = self.fault(page_ix);
        let state = Arc::clone(&states[offset]);
        self.resident_bytes += self.pages[page_ix].bytes;
        self.peak_resident = self.peak_resident.max(self.resident_bytes);
        self.pages[page_ix].states = Some(states);
        self.enforce_cap();
        state
    }

    /// True if the state at `index` is resident (no disk access needed).
    pub fn is_resident(&self, index: usize) -> bool {
        let page_ix = index / self.spec.page_states;
        page_ix >= self.pages.len() || self.pages[page_ix].states.is_some()
    }

    /// Reads, verifies, and decodes one evicted page.
    fn fault(&mut self, page_ix: usize) -> Vec<Arc<ProgState>> {
        let path = self.page_path(page_ix);
        let payload = match self.read_page(&path) {
            Ok(payload) => payload,
            Err(first) => {
                // A failed verify may be a transient torn read; the page
                // file itself was written atomically, so one re-read is
                // the honest retry. The corrupt bytes are dropped without
                // ever reaching the decoder.
                self.corrupt_rejected += 1;
                codec::read_verified(&path).unwrap_or_else(|second| {
                    panic!(
                        "spill: page {} failed verification twice \
                         (first: {first}; second: {second})",
                        path.display()
                    )
                })
            }
        };
        let mut dec = Dec::new(&payload);
        let count = dec.len_of().expect("verified page has a count");
        let mut states = Vec::with_capacity(count);
        for _ in 0..count {
            let bytes = dec.bytes().expect("verified page has records");
            let state = codec::state_from_bytes(&bytes).expect("verified page decodes");
            states.push(Arc::new(state));
        }
        states
    }

    /// One verified page read, with the fuzzing hook: when armed, the
    /// first fault observes a corrupted copy of the file's bytes.
    fn read_page(&mut self, path: &Path) -> Result<Vec<u8>, String> {
        if self.spec.corrupt_first_read && !self.injected_corruption {
            self.injected_corruption = true;
            let mut raw =
                std::fs::read(path).map_err(|err| format!("{}: {err}", path.display()))?;
            if let Some(byte) = raw.last_mut() {
                *byte ^= 0x01;
            }
            return Err(codec::verify_bytes(&raw, path)
                .err()
                .unwrap_or_else(|| "injected corruption went undetected".to_string()));
        }
        codec::read_verified(path)
    }

    /// Drains the event tallies as `(label, value)` pairs (zero-valued
    /// entries included for the headline counters, so reports always show
    /// the full set).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("spill.hits", self.hits),
            ("spill.misses", self.misses),
            ("spill.evictions", self.evictions),
            ("spill.pages", self.pages.len() as u64),
            ("spill.corrupt_rejected", self.corrupt_rejected),
            ("spill.resident_bytes", self.resident_bytes),
            ("spill.peak_resident_bytes", self.peak_resident),
            ("spill.total_bytes", self.total_bytes()),
        ]
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.run_dir);
    }
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("mem_cap", &self.spec.mem_cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Bounds};
    use crate::lower::lower;

    fn states() -> Vec<Arc<ProgState>> {
        let module = armada_lang::parse_module(
            "level L { var x: uint32; void main() { while (x < 40) { x := x + 1; } print(x); } }",
        )
        .unwrap();
        let typed = armada_lang::check_module(&module).unwrap();
        let program = lower(&typed, "L").unwrap();
        let result = explore(&program, &Bounds::small());
        (0..result.arena.len())
            .map(|i| result.arena.get_arc(crate::arena::StateId(i as u32)))
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("armada-pager-{tag}-{}", std::process::id()))
    }

    #[test]
    fn pages_spill_fault_and_round_trip() {
        let states = states();
        assert!(states.len() >= 40, "need enough states to fill pages");
        let mut spec = SpillSpec::new(256, tmp_dir("rt"));
        spec.page_states = 8;
        let mut pager = Pager::new(spec).unwrap();
        for s in &states {
            pager.push(Arc::clone(s));
        }
        assert_eq!(pager.len(), states.len());
        let evictions = pager.counters()[2].1;
        assert!(evictions > 0, "a 256-byte cap must evict");
        // Every state reads back equal, resident or not.
        for (i, s) in states.iter().enumerate() {
            assert_eq!(pager.get(i).as_ref(), s.as_ref());
        }
        let misses = pager.counters()[1].1;
        assert!(misses > 0, "cold pages must fault");
    }

    #[test]
    fn corrupt_read_is_rejected_then_served_from_a_clean_reread() {
        let states = states();
        let mut spec = SpillSpec::new(1, tmp_dir("corrupt"));
        spec.page_states = 4;
        spec.corrupt_first_read = true;
        let mut pager = Pager::new(spec).unwrap();
        for s in &states {
            pager.push(Arc::clone(s));
        }
        // Touch an evicted page: the first read is corrupted, rejected by
        // the checksum, and the re-read serves the true bytes.
        assert_eq!(pager.get(0).as_ref(), states[0].as_ref());
        let counters = pager.counters();
        let rejected = counters
            .iter()
            .find(|(l, _)| *l == "spill.corrupt_rejected")
            .unwrap()
            .1;
        assert_eq!(rejected, 1);
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let dir = tmp_dir("cleanup");
        let run_dir;
        {
            let mut spec = SpillSpec::new(1, dir.clone());
            spec.page_states = 2;
            let mut pager = Pager::new(spec).unwrap();
            run_dir = pager.run_dir.clone();
            for s in states().iter().take(10) {
                pager.push(Arc::clone(s));
            }
            assert!(run_dir.exists());
        }
        assert!(!run_dir.exists(), "drop must clean the spill dir");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Lowering from the Armada AST to the micro-instruction [`Program`].
//!
//! Structured control flow becomes guarded branches; `explicit_yield` and
//! `atomic` blocks become region markers; body-less external methods get the
//! default Figure-8 model, synthesized as a single `somehow` with the
//! method's `requires`/`modifies`/`ensures` clauses.

use armada_lang::ast::*;
use armada_lang::typeck::TypedModule;
use armada_lang::LangError;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::program::{GhostDef, GlobalDef, Instr, LocalDef, Program, Routine};

/// An error produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(String);

impl LowerError {
    fn new(msg: impl Into<String>) -> Self {
        LowerError(msg.into())
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl Error for LowerError {}

impl From<LangError> for LowerError {
    fn from(err: LangError) -> Self {
        LowerError(err.to_string())
    }
}

/// Lowers the named level of a type-checked module to a [`Program`].
///
/// # Errors
///
/// Returns a [`LowerError`] if the level is missing, has no `main`, uses
/// `yield` outside `explicit_yield`, mixes allocation with multi-assignment,
/// or declares two locals with the same name in one method (the lowered
/// frame layout is flat).
pub fn lower(typed: &TypedModule, level_name: &str) -> Result<Program, LowerError> {
    let level = typed
        .module
        .level(level_name)
        .ok_or_else(|| LowerError::new(format!("unknown level `{level_name}`")))?;
    let info = typed
        .level_info(level_name)
        .ok_or_else(|| LowerError::new(format!("level `{level_name}` not checked")))?;

    let mut program = Program {
        name: level_name.to_string(),
        structs: info.structs.clone(),
        globals: Vec::new(),
        ghosts: Vec::new(),
        functions: BTreeMap::new(),
        routines: Vec::new(),
        main: 0,
    };
    for global in &info.globals {
        if global.ghost {
            program.ghosts.push(GhostDef {
                name: global.name.clone(),
                ty: global.ty.clone(),
                init: global.init.clone(),
            });
        } else {
            program.globals.push(GlobalDef {
                name: global.name.clone(),
                ty: global.ty.clone(),
                init: global.init.clone(),
            });
        }
    }
    for decl in &level.decls {
        if let Decl::Function(func) = decl {
            program.functions.insert(func.name.clone(), func.clone());
        }
    }

    // Routine indices are the order of method declarations.
    let methods: Vec<&MethodDecl> = level.methods().collect();
    let routine_index: BTreeMap<String, u32> = methods
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.clone(), i as u32))
        .collect();

    for method in &methods {
        let routine = lower_method(method, &routine_index)?;
        program.routines.push(routine);
    }

    program.main = *routine_index
        .get("main")
        .ok_or_else(|| LowerError::new(format!("level `{level_name}` has no `main` method")))?;
    Ok(program)
}

struct MethodLowerer<'a> {
    routine_index: &'a BTreeMap<String, u32>,
    locals: Vec<LocalDef>,
    instrs: Vec<Instr>,
    /// Jump-target patch lists for enclosing loops: (break sites, continue
    /// target).
    loop_stack: Vec<LoopCtx>,
    explicit_yield_depth: usize,
}

struct LoopCtx {
    break_sites: Vec<usize>,
    continue_target: u32,
}

fn lower_method(
    method: &MethodDecl,
    routine_index: &BTreeMap<String, u32>,
) -> Result<Routine, LowerError> {
    let mut lowerer = MethodLowerer {
        routine_index,
        locals: Vec::new(),
        instrs: Vec::new(),
        loop_stack: Vec::new(),
        explicit_yield_depth: 0,
    };
    for param in &method.params {
        lowerer.declare_local(&method.name, &param.name, param.ty.clone(), false)?;
    }

    match &method.body {
        Some(body) => {
            // Pre-scan for address-taken locals, and collect all local
            // declarations so the frame layout is known up front.
            lowerer.collect_locals(&method.name, &body.stmts)?;
            let addr_taken = collect_addr_taken(body);
            for local in &mut lowerer.locals {
                if addr_taken.contains(&local.name) {
                    local.addr_taken = true;
                }
            }
            lowerer.lower_block(body)?;
        }
        None => {
            // Default external model (Figure 8): one declarative atomic
            // action with the method's contract. A named return value is a
            // local the contract's `ensures` may constrain; it is havocked
            // with the write set and returned.
            let mut modifies = method.modifies.clone();
            if let (Some(ret_ty), Some(ret_name)) = (&method.ret, &method.ret_name) {
                lowerer.declare_local(&method.name, ret_name, ret_ty.clone(), false)?;
                modifies.push(armada_lang::ast::Expr::synthetic(
                    armada_lang::ast::ExprKind::Var(ret_name.clone()),
                ));
            }
            lowerer.instrs.push(Instr::Somehow {
                requires: method.requires.clone(),
                modifies,
                ensures: method.ensures.clone(),
            });
            if let Some(ret_name) = &method.ret_name {
                if method.ret.is_some() {
                    lowerer.instrs.push(Instr::Ret {
                        value: Some(armada_lang::ast::Expr::synthetic(
                            armada_lang::ast::ExprKind::Var(ret_name.clone()),
                        )),
                    });
                }
            }
        }
    }
    // Fall-through return.
    lowerer.instrs.push(Instr::Ret { value: None });

    Ok(Routine {
        name: method.name.clone(),
        param_count: method.params.len(),
        locals: lowerer.locals,
        instrs: lowerer.instrs,
        ret_ty: method.ret.clone(),
        external: method.external,
    })
}

/// Collects the names of locals (and parameters) whose address is taken
/// anywhere in the body; those must live in the heap forest.
fn collect_addr_taken(body: &Block) -> Vec<String> {
    let mut names = Vec::new();
    fn expr(e: &Expr, names: &mut Vec<String>) {
        match &e.kind {
            ExprKind::AddrOf(inner) => {
                if let Some(name) = lvalue_base(inner) {
                    names.push(name.to_string());
                }
                expr(inner, names);
            }
            ExprKind::Unary(_, a)
            | ExprKind::Deref(a)
            | ExprKind::Old(a)
            | ExprKind::Allocated(a)
            | ExprKind::AllocatedArray(a)
            | ExprKind::Field(a, _) => expr(a, names),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                expr(a, names);
                expr(b, names);
            }
            ExprKind::Call(_, args) | ExprKind::SeqLit(args) => {
                for a in args {
                    expr(a, names);
                }
            }
            ExprKind::Forall { lo, hi, body, .. } | ExprKind::Exists { lo, hi, body, .. } => {
                expr(lo, names);
                expr(hi, names);
                expr(body, names);
            }
            _ => {}
        }
    }
    fn rhs(r: &Rhs, names: &mut Vec<String>) {
        match r {
            Rhs::Expr(e) => expr(e, names),
            Rhs::Calloc { count, .. } => expr(count, names),
            Rhs::CreateThread { args, .. } => {
                for a in args {
                    expr(a, names);
                }
            }
            Rhs::Malloc { .. } => {}
        }
    }
    fn stmt(s: &Stmt, names: &mut Vec<String>) {
        match &s.kind {
            StmtKind::VarDecl { init: Some(r), .. } => rhs(r, names),
            StmtKind::VarDecl { .. } => {}
            StmtKind::Assign { lhs, rhs: rs, .. } => {
                for l in lhs {
                    expr(l, names);
                }
                for r in rs {
                    rhs(r, names);
                }
            }
            StmtKind::CallStmt { args, .. } | StmtKind::Print(args) => {
                for a in args {
                    expr(a, names);
                }
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                expr(cond, names);
                block(then_block, names);
                if let Some(e) = else_block {
                    block(e, names);
                }
            }
            StmtKind::While {
                cond,
                invariants,
                body,
            } => {
                expr(cond, names);
                for i in invariants {
                    expr(i, names);
                }
                block(body, names);
            }
            StmtKind::Return(Some(e))
            | StmtKind::Assert(e)
            | StmtKind::Assume(e)
            | StmtKind::Dealloc(e)
            | StmtKind::Join(e) => expr(e, names),
            StmtKind::Somehow {
                requires,
                modifies,
                ensures,
            } => {
                for e in requires.iter().chain(modifies).chain(ensures) {
                    expr(e, names);
                }
            }
            StmtKind::Label(_, inner) => stmt(inner, names),
            StmtKind::ExplicitYield(b) | StmtKind::Atomic(b) | StmtKind::Block(b) => {
                block(b, names)
            }
            _ => {}
        }
    }
    fn block(b: &Block, names: &mut Vec<String>) {
        for s in &b.stmts {
            stmt(s, names);
        }
    }
    block(body, &mut names);
    names
}

/// The base variable of an lvalue chain, e.g. `a` in `a[i].f`. Derefs have
/// no base variable (their target is already a heap object).
fn lvalue_base(expr: &Expr) -> Option<&str> {
    match &expr.kind {
        ExprKind::Var(name) => Some(name),
        ExprKind::Field(base, _) | ExprKind::Index(base, _) => lvalue_base(base),
        _ => None,
    }
}

impl MethodLowerer<'_> {
    fn declare_local(
        &mut self,
        method: &str,
        name: &str,
        ty: Type,
        ghost: bool,
    ) -> Result<(), LowerError> {
        if self.locals.iter().any(|l| l.name == name) {
            return Err(LowerError::new(format!(
                "method `{method}` declares local `{name}` twice; \
                 the lowered frame layout is flat, so rename one"
            )));
        }
        self.locals.push(LocalDef {
            name: name.to_string(),
            ty,
            ghost,
            addr_taken: false,
        });
        Ok(())
    }

    fn collect_locals(&mut self, method: &str, stmts: &[Stmt]) -> Result<(), LowerError> {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::VarDecl {
                    ghost, name, ty, ..
                } => {
                    self.declare_local(method, name, ty.clone(), *ghost)?;
                }
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    self.collect_locals(method, &then_block.stmts)?;
                    if let Some(els) = else_block {
                        self.collect_locals(method, &els.stmts)?;
                    }
                }
                StmtKind::While { body, .. } => self.collect_locals(method, &body.stmts)?,
                StmtKind::Label(_, inner) => {
                    self.collect_locals(method, std::slice::from_ref(inner))?
                }
                StmtKind::ExplicitYield(block)
                | StmtKind::Atomic(block)
                | StmtKind::Block(block) => self.collect_locals(method, &block.stmts)?,
                _ => {}
            }
        }
        Ok(())
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn lower_block(&mut self, block: &Block) -> Result<(), LowerError> {
        for stmt in &block.stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match &stmt.kind {
            StmtKind::VarDecl { name, init, .. } => {
                if let Some(init) = init {
                    let target = Expr::synthetic(ExprKind::Var(name.clone()));
                    self.lower_assign(&[target], std::slice::from_ref(init), false)?;
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs, sc } => self.lower_assign(lhs, rhs, *sc),
            StmtKind::CallStmt { method, args } => {
                let routine = self.resolve_routine(method)?;
                self.instrs.push(Instr::Call {
                    routine,
                    args: args.clone(),
                    into: None,
                });
                Ok(())
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let guard_at = self.instrs.len();
                self.instrs.push(Instr::Noop); // placeholder for Guard
                let then_pc = self.here();
                self.lower_block(then_block)?;
                match else_block {
                    Some(els) => {
                        let jump_at = self.instrs.len();
                        self.instrs.push(Instr::Noop); // placeholder for Jump
                        let else_pc = self.here();
                        self.lower_block(els)?;
                        let end = self.here();
                        self.instrs[guard_at] = Instr::Guard {
                            cond: cond.clone(),
                            then_pc,
                            else_pc,
                        };
                        self.instrs[jump_at] = Instr::Jump(end);
                    }
                    None => {
                        let end = self.here();
                        self.instrs[guard_at] = Instr::Guard {
                            cond: cond.clone(),
                            then_pc,
                            else_pc: end,
                        };
                    }
                }
                Ok(())
            }
            StmtKind::While {
                cond,
                invariants: _,
                body,
            } => {
                let head = self.here();
                let guard_at = self.instrs.len();
                self.instrs.push(Instr::Noop); // placeholder for Guard
                let body_pc = self.here();
                self.loop_stack.push(LoopCtx {
                    break_sites: Vec::new(),
                    continue_target: head,
                });
                self.lower_block(body)?;
                self.instrs.push(Instr::Jump(head));
                let end = self.here();
                self.instrs[guard_at] = Instr::Guard {
                    cond: cond.clone(),
                    then_pc: body_pc,
                    else_pc: end,
                };
                let ctx = self.loop_stack.pop().expect("pushed above");
                for site in ctx.break_sites {
                    self.instrs[site] = Instr::Jump(end);
                }
                Ok(())
            }
            StmtKind::Break => {
                let site = self.instrs.len();
                self.instrs.push(Instr::Noop); // patched to Jump(end)
                self.loop_stack
                    .last_mut()
                    .ok_or_else(|| LowerError::new("`break` outside loop"))?
                    .break_sites
                    .push(site);
                Ok(())
            }
            StmtKind::Continue => {
                let target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| LowerError::new("`continue` outside loop"))?
                    .continue_target;
                self.instrs.push(Instr::Jump(target));
                Ok(())
            }
            StmtKind::Return(value) => {
                self.instrs.push(Instr::Ret {
                    value: value.clone(),
                });
                Ok(())
            }
            StmtKind::Assert(cond) => {
                self.instrs.push(Instr::Assert(cond.clone()));
                Ok(())
            }
            StmtKind::Assume(cond) => {
                self.instrs.push(Instr::Assume(cond.clone()));
                Ok(())
            }
            StmtKind::Somehow {
                requires,
                modifies,
                ensures,
            } => {
                self.instrs.push(Instr::Somehow {
                    requires: requires.clone(),
                    modifies: modifies.clone(),
                    ensures: ensures.clone(),
                });
                Ok(())
            }
            StmtKind::Dealloc(target) => {
                self.instrs.push(Instr::Dealloc(target.clone()));
                Ok(())
            }
            StmtKind::Join(handle) => {
                self.instrs.push(Instr::Join(handle.clone()));
                Ok(())
            }
            StmtKind::Label(_, inner) => self.lower_stmt(inner),
            StmtKind::ExplicitYield(body) => {
                self.instrs.push(Instr::AtomicBegin { explicit: true });
                self.explicit_yield_depth += 1;
                self.lower_block(body)?;
                self.explicit_yield_depth -= 1;
                self.instrs.push(Instr::AtomicEnd);
                Ok(())
            }
            StmtKind::Yield => {
                if self.explicit_yield_depth == 0 {
                    return Err(LowerError::new("`yield` outside `explicit_yield`"));
                }
                self.instrs.push(Instr::YieldPoint);
                Ok(())
            }
            StmtKind::Atomic(body) => {
                self.instrs.push(Instr::AtomicBegin { explicit: false });
                self.lower_block(body)?;
                self.instrs.push(Instr::AtomicEnd);
                Ok(())
            }
            StmtKind::Print(args) => {
                self.instrs.push(Instr::Print(args.clone()));
                Ok(())
            }
            StmtKind::Fence => {
                self.instrs.push(Instr::Fence);
                Ok(())
            }
            StmtKind::Block(body) => self.lower_block(body),
        }
    }

    fn lower_assign(&mut self, lhs: &[Expr], rhs: &[Rhs], sc: bool) -> Result<(), LowerError> {
        // Allocation / thread / call RHSs only in single assignments; plain
        // expressions can be multi-assigned.
        let all_exprs = rhs.iter().all(|r| matches!(r, Rhs::Expr(_)));
        if all_exprs {
            // A top-level call RHS is a method call, not an expression.
            if rhs.len() == 1 {
                if let Rhs::Expr(expr) = &rhs[0] {
                    if let ExprKind::Call(name, args) = &expr.kind {
                        if let Some(routine) = self.routine_index.get(name) {
                            self.instrs.push(Instr::Call {
                                routine: *routine,
                                args: args.clone(),
                                into: Some(lhs[0].clone()),
                            });
                            return Ok(());
                        }
                    }
                }
            }
            let exprs: Vec<Expr> = rhs
                .iter()
                .map(|r| match r {
                    Rhs::Expr(e) => e.clone(),
                    _ => unreachable!("checked all_exprs"),
                })
                .collect();
            self.instrs.push(Instr::Assign {
                lhs: lhs.to_vec(),
                rhs: exprs,
                sc,
            });
            return Ok(());
        }
        if lhs.len() != 1 || rhs.len() != 1 {
            return Err(LowerError::new(
                "allocation, thread creation, and calls cannot appear in multi-assignments",
            ));
        }
        let target = lhs[0].clone();
        match &rhs[0] {
            Rhs::Malloc { ty, .. } => {
                self.instrs.push(Instr::Malloc {
                    into: target,
                    ty: ty.clone(),
                });
            }
            Rhs::Calloc { ty, count, .. } => {
                self.instrs.push(Instr::Calloc {
                    into: target,
                    ty: ty.clone(),
                    count: count.clone(),
                });
            }
            Rhs::CreateThread { method, args, .. } => {
                let routine = self.resolve_routine(method)?;
                self.instrs.push(Instr::CreateThread {
                    into: Some(target),
                    routine,
                    args: args.clone(),
                });
            }
            Rhs::Expr(_) => unreachable!("handled above"),
        }
        Ok(())
    }

    fn resolve_routine(&self, name: &str) -> Result<u32, LowerError> {
        self.routine_index
            .get(name)
            .copied()
            .ok_or_else(|| LowerError::new(format!("unknown method `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::{check_module, parse_module};

    fn lower_src(src: &str, level: &str) -> Result<Program, LowerError> {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, level)
    }

    #[test]
    fn lowers_control_flow_to_guards() {
        let program = lower_src(
            r#"level L {
                var x: uint32;
                void main() {
                    var i: uint32 := 0;
                    while (i < 3) {
                        if (i == 1) { x := i; } else { x := 0; }
                        i := i + 1;
                    }
                }
            }"#,
            "L",
        )
        .unwrap();
        let main = &program.routines[program.main as usize];
        let guards = main
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Guard { .. }))
            .count();
        assert_eq!(guards, 2, "one for while, one for if");
        // Every guard / jump target is in range.
        for instr in &main.instrs {
            match instr {
                Instr::Guard {
                    then_pc, else_pc, ..
                } => {
                    assert!((*then_pc as usize) < main.instrs.len());
                    assert!((*else_pc as usize) <= main.instrs.len());
                }
                Instr::Jump(t) => assert!((*t as usize) <= main.instrs.len()),
                _ => {}
            }
        }
    }

    #[test]
    fn detects_address_taken_locals() {
        let program = lower_src(
            r#"level L {
                void main() {
                    var x: uint32;
                    var p: ptr<uint32> := &x;
                    *p := 1;
                }
            }"#,
            "L",
        )
        .unwrap();
        let main = &program.routines[program.main as usize];
        let x = &main.locals[main.local_slot("x").unwrap()];
        assert!(x.addr_taken);
        let p = &main.locals[main.local_slot("p").unwrap()];
        assert!(!p.addr_taken);
    }

    #[test]
    fn external_method_without_body_gets_figure8_model() {
        let program = lower_src(
            r#"level L {
                ghost var log: seq<int>;
                method {:extern} P(n: uint32) modifies log ensures log == old(log) + [n];
                void main() { P(1); }
            }"#,
            "L",
        )
        .unwrap();
        let p = &program.routines[program.routine_index("P").unwrap() as usize];
        assert!(matches!(p.instrs[0], Instr::Somehow { .. }));
        assert!(matches!(p.instrs[1], Instr::Ret { .. }));
    }

    #[test]
    fn rejects_yield_outside_explicit_yield() {
        let err = lower_src("level L { void main() { yield; } }", "L").unwrap_err();
        assert!(err.to_string().contains("yield"));
    }

    #[test]
    fn rejects_missing_main() {
        let err = lower_src("level L { void helper() { } }", "L").unwrap_err();
        assert!(err.to_string().contains("main"));
    }

    #[test]
    fn rejects_duplicate_flat_locals() {
        let err = lower_src(
            r#"level L {
                void main() {
                    if (true) { var x: uint32; x := 1; } else { var x: uint32; x := 2; }
                }
            }"#,
            "L",
        )
        .unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn break_and_continue_lower_to_jumps() {
        let program = lower_src(
            r#"level L {
                void main() {
                    var i: uint32 := 0;
                    while (true) {
                        i := i + 1;
                        if (i == 2) { continue; }
                        if (i > 3) { break; }
                    }
                }
            }"#,
            "L",
        )
        .unwrap();
        let main = &program.routines[program.main as usize];
        let jumps = main
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Jump(_)))
            .count();
        assert!(jumps >= 3, "loop back-edge, continue, break; got {jumps}");
    }

    #[test]
    fn ghosts_and_globals_are_separated() {
        let program = lower_src(
            "level L { var a: uint32; ghost var g: int; var b: bool; void main() { } }",
            "L",
        )
        .unwrap();
        assert_eq!(program.globals.len(), 2);
        assert_eq!(program.ghosts.len(), 1);
        assert_eq!(program.global_index("a"), Some(0));
        assert_eq!(program.global_index("b"), Some(1));
        assert_eq!(program.ghost_index("g"), Some(0));
    }
}

//! Program states (§3.2): threads, heap, ghost state, observable log, and
//! termination status.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::heap::{Heap, Location, MemNode, ObjectId, RootKind};
use crate::program::{Pc, Program};
use crate::value::{UbReason, Value};

/// A thread identifier. The main thread is tid 1; `create_thread` hands out
/// 2, 3, … in order, keeping the semantics deterministic per step sequence.
pub type Tid = u64;

/// The tid of the initial (main) thread.
pub const MAIN_TID: Tid = 1;

/// How (and whether) the program has terminated (§3.2.3). Undefined behavior
/// is a terminating state, which removes enormous amounts of nondeterminism
/// from the semantics and lets refinement relations talk about it directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Termination {
    /// Still running.
    #[default]
    Running,
    /// `main` returned normally.
    Exited,
    /// An `assert` failed at the given PC.
    AssertFailed(Pc),
    /// The program invoked undefined behavior.
    UndefinedBehavior(UbReason),
}

impl Termination {
    /// True unless the program is still running.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Termination::Running)
    }
}

/// Storage for one routine-local variable slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalCell {
    /// A thread-private value tree (the common case).
    Val(MemNode),
    /// Backing heap object, for address-taken locals (§3.2.4: such locals
    /// are roots of the heap forest, freed at frame exit).
    Obj(ObjectId),
}

/// One stack frame.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame {
    /// Which routine this frame runs.
    pub routine: u32,
    /// Local storage, parameters first.
    pub locals: Vec<LocalCell>,
    /// PC of the `Call` instruction in the caller (the caller resumes at
    /// `call_pc.next()`, and the call's `into` lvalue is read back from the
    /// program there). `None` for a thread's bottom frame.
    pub call_pc: Option<Pc>,
}

/// Whether a thread can still step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadStatus {
    /// Live.
    Active,
    /// Returned from its bottom frame; `join` on it is enabled.
    Exited,
}

/// One entry of an x86-TSO store buffer: a pending write of a primitive
/// value to a shared location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferedWrite {
    /// Destination.
    pub loc: Location,
    /// Value to store.
    pub value: Value,
}

/// The state of one thread: program counter, call stack, store buffer, and
/// atomic-region depth.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadState {
    /// Current program counter (top frame).
    pub pc: Pc,
    /// Call stack, bottom first. Frames are individually `Arc`-shared so a
    /// state clone shares every frame the step does not write (steps that
    /// only move the pc — jumps, guards, prints — copy no locals at all);
    /// mutate through [`ThreadState::top_frame_mut`] / [`Arc::make_mut`].
    pub frames: Vec<Arc<Frame>>,
    /// x86-TSO store buffer, oldest write first.
    pub buffer: VecDeque<BufferedWrite>,
    /// Nesting depth of `atomic` / `explicit_yield` regions.
    pub atomic_depth: u32,
    /// Live or exited.
    pub status: ThreadStatus,
}

impl ThreadState {
    /// The top frame.
    ///
    /// # Panics
    ///
    /// Panics on an exited thread (no frames).
    pub fn top_frame(&self) -> &Frame {
        &**self.frames.last().expect("active thread has a frame")
    }

    /// The top frame, mutably (copy-on-write: unshares the frame if other
    /// states still hold it).
    ///
    /// # Panics
    ///
    /// Panics on an exited thread (no frames).
    pub fn top_frame_mut(&mut self) -> &mut Frame {
        Arc::make_mut(self.frames.last_mut().expect("active thread has a frame"))
    }
}

/// A complete program state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProgState {
    /// All threads ever created (exited ones stay, for `join`).
    pub threads: BTreeMap<Tid, ThreadState>,
    /// The heap forest; objects `0..globals.len()` back the globals.
    pub heap: Heap,
    /// Ghost global values, by slot.
    pub ghosts: Vec<Value>,
    /// The observable event log written by `print`.
    pub log: Vec<Value>,
    /// Termination status.
    pub termination: Termination,
    /// Next tid `create_thread` will hand out. Because threads are never
    /// removed and tids are handed out sequentially from 2, reachable
    /// states always satisfy `next_tid == threads.len() + 1` with
    /// contiguous tids `1..=threads.len()` — symmetry canonicalization
    /// (`crate::canon`) relies on this to renumber threads safely.
    pub next_tid: Tid,
}

impl ProgState {
    /// True if the whole program can take no more instruction steps.
    pub fn is_terminal(&self) -> bool {
        self.termination.is_terminal()
    }

    /// The thread with the given id.
    pub fn thread(&self, tid: Tid) -> Option<&ThreadState> {
        self.threads.get(&tid)
    }

    /// Reads a leaf location as seen by `tid` under x86-TSO: the newest
    /// matching entry of the thread's store buffer wins over global memory.
    pub fn read_leaf(&self, tid: Tid, loc: &Location) -> Result<Value, UbReason> {
        if let Some(thread) = self.threads.get(&tid) {
            for entry in thread.buffer.iter().rev() {
                if entry.loc == *loc {
                    return Ok(entry.value.clone());
                }
            }
        }
        match self.heap.read(loc)? {
            MemNode::Leaf(value) => Ok(value.clone()),
            _ => Err(UbReason::OutOfBounds),
        }
    }

    /// Reads the memory subtree at `loc` as seen by `tid`, overlaying any
    /// buffered leaf writes that fall inside it.
    pub fn read_node(&self, tid: Tid, loc: &Location) -> Result<MemNode, UbReason> {
        let mut node = self.heap.read(loc)?.clone();
        if let Some(thread) = self.threads.get(&tid) {
            for entry in &thread.buffer {
                if entry.loc.object == loc.object && entry.loc.path.starts_with(&loc.path) {
                    let rel = &entry.loc.path[loc.path.len()..];
                    if let Ok(target) = node.descend_mut(rel) {
                        *target = MemNode::Leaf(entry.value.clone());
                    }
                }
            }
        }
        Ok(node)
    }

    /// Applies the oldest buffered write of `tid` to global memory.
    /// Returns `false` if the buffer was empty.
    pub fn drain_one(&mut self, tid: Tid) -> Result<bool, UbReason> {
        let entry = match self
            .threads
            .get_mut(&tid)
            .and_then(|t| t.buffer.pop_front())
        {
            Some(entry) => entry,
            None => return Ok(false),
        };
        // A drain of a write to since-freed memory is benign in hardware; we
        // model it as dropping the write rather than UB (the *access* UB was
        // already attributable to the dealloc/write race if any).
        let _ = self.heap.write_leaf(&entry.loc, entry.value);
        Ok(true)
    }
}

impl fmt::Display for ProgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state ({:?})", self.termination)?;
        for (tid, thread) in &self.threads {
            writeln!(
                f,
                "  t{tid} pc={} frames={} buf={} {:?}",
                thread.pc,
                thread.frames.len(),
                thread.buffer.len(),
                thread.status
            )?;
        }
        writeln!(
            f,
            "  log: {:?}",
            self.log.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        )
    }
}

/// Builds the initial state of `program`: globals allocated (object *i* backs
/// global *i*) and initialized, ghosts initialized, and the main thread
/// poised at `main`'s first instruction.
///
/// # Errors
///
/// Returns an error if a global initializer is not a compile-time constant.
pub fn initial_state(program: &Program) -> Result<ProgState, String> {
    let mut heap = Heap::new();
    let mut ghosts = Vec::new();
    for global in &program.globals {
        let mut node = MemNode::zero(&global.ty, &program.structs);
        if let Some(init) = &global.init {
            let value = crate::eval::eval_const(init)
                .map_err(|err| format!("initializer of `{}`: {err}", global.name))?;
            node = MemNode::Leaf(value.coerce_to(&global.ty));
        }
        heap.alloc(node, RootKind::Static);
    }
    for ghost in &program.ghosts {
        let value = match &ghost.init {
            Some(init) => crate::eval::eval_const(init)
                .map_err(|err| format!("initializer of `{}`: {err}", ghost.name))?
                .coerce_to(&ghost.ty),
            None => Value::zero_of(&ghost.ty)
                .ok_or_else(|| format!("ghost `{}` has no zero value", ghost.name))?,
        };
        ghosts.push(value);
    }

    let mut state = ProgState {
        threads: BTreeMap::new(),
        heap,
        ghosts,
        log: Vec::new(),
        termination: Termination::Running,
        next_tid: MAIN_TID + 1,
    };
    let main = program.main;
    let frame = crate::step::build_frame(program, &mut state, main, &[])
        .map_err(|err| format!("building main frame: {err}"))?;
    state.threads.insert(
        MAIN_TID,
        ThreadState {
            pc: Pc::new(main, 0),
            frames: vec![Arc::new(frame)],
            buffer: VecDeque::new(),
            atomic_depth: 0,
            status: ThreadStatus::Active,
        },
    );
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::ast::IntType;

    #[test]
    fn termination_flags() {
        assert!(!Termination::Running.is_terminal());
        assert!(Termination::Exited.is_terminal());
        assert!(Termination::UndefinedBehavior(UbReason::NullDereference).is_terminal());
    }

    #[test]
    fn tso_read_sees_own_buffer_newest_first() {
        let mut heap = Heap::new();
        let obj = heap.alloc(MemNode::Leaf(Value::int(IntType::U32, 0)), RootKind::Static);
        let loc = Location {
            object: obj,
            path: vec![],
        };
        let mut state = ProgState {
            threads: BTreeMap::new(),
            heap,
            ghosts: vec![],
            log: vec![],
            termination: Termination::Running,
            next_tid: 2,
        };
        let mut thread = ThreadState {
            pc: Pc::default(),
            frames: vec![],
            buffer: VecDeque::new(),
            atomic_depth: 0,
            status: ThreadStatus::Active,
        };
        thread.buffer.push_back(BufferedWrite {
            loc: loc.clone(),
            value: Value::int(IntType::U32, 1),
        });
        thread.buffer.push_back(BufferedWrite {
            loc: loc.clone(),
            value: Value::int(IntType::U32, 2),
        });
        state.threads.insert(1, thread);

        // Own view: newest buffered write.
        assert_eq!(
            state.read_leaf(1, &loc).unwrap(),
            Value::int(IntType::U32, 2)
        );
        // Another thread: global memory.
        assert_eq!(
            state.read_leaf(9, &loc).unwrap(),
            Value::int(IntType::U32, 0)
        );

        // Drain applies FIFO: after one drain, memory holds the *older* write.
        assert!(state.drain_one(1).unwrap());
        assert_eq!(
            state.read_leaf(9, &loc).unwrap(),
            Value::int(IntType::U32, 1)
        );
        assert!(state.drain_one(1).unwrap());
        assert_eq!(
            state.read_leaf(9, &loc).unwrap(),
            Value::int(IntType::U32, 2)
        );
        assert!(!state.drain_one(1).unwrap());
    }
}

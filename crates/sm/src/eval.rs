//! Expression evaluation against a thread's view of the state.
//!
//! Reads go through the executing thread's x86-TSO store buffer
//! ([`crate::state::ProgState::read_leaf`]); `old(…)` switches evaluation to
//! the step's pre-state; every `*` (nondeterministic choice) consumes the
//! next value from the step object's nondet list, keeping evaluation a
//! deterministic function of `(state, step)` (§4.1, nondeterminism
//! encapsulation).

use armada_lang::ast::{BinOp, Expr, ExprKind, IntType, UnOp};
use std::fmt;

use crate::heap::{MemNode, ObjectId, PtrVal};
use crate::program::Program;
use crate::state::{LocalCell, ProgState, Tid};
use crate::value::{UbReason, Value};

/// Why evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalErr {
    /// The access was undefined behavior; the program transitions to the
    /// terminated-by-UB state.
    Ub(UbReason),
    /// The expression cannot be evaluated in this context (type confusion on
    /// a nondet candidate, exhausted nondet list, unsupported ghost lvalue).
    /// A stuck evaluation disables the step rather than changing the state.
    Stuck(String),
}

impl From<UbReason> for EvalErr {
    fn from(reason: UbReason) -> Self {
        EvalErr::Ub(reason)
    }
}

impl fmt::Display for EvalErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalErr::Ub(reason) => write!(f, "undefined behavior: {reason}"),
            EvalErr::Stuck(msg) => write!(f, "stuck: {msg}"),
        }
    }
}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalErr>;

/// Maximum quantifier range, function recursion depth, and `calloc` length,
/// to keep ghost evaluation total in practice.
const MAX_QUANT_RANGE: i128 = 4096;
const MAX_FN_DEPTH: u32 = 64;

/// Where an lvalue lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceBase {
    /// Slot of the executing thread's top frame.
    Local(usize),
    /// A heap object (global, address-taken local, or allocation).
    Heap(ObjectId),
    /// A ghost global slot.
    Ghost(usize),
}

/// A resolved lvalue: a base plus a path of child indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Where the storage lives.
    pub base: PlaceBase,
    /// Path below the base.
    pub path: Vec<u32>,
}

/// Evaluation context: one thread's view of one state, plus the step's
/// encapsulated nondeterminism.
pub struct EvalCtx<'a> {
    /// The program being executed.
    pub program: &'a Program,
    /// The state expressions are evaluated against.
    pub state: &'a ProgState,
    /// Pre-state for `old(…)`, when evaluating a two-state predicate.
    pub old_state: Option<&'a ProgState>,
    /// The executing thread.
    pub tid: Tid,
    /// Values consumed by `*` sites, in evaluation order.
    pub nondets: &'a [Value],
    /// Next nondet to consume.
    pub cursor: usize,
    /// Quantifier / ghost-function bindings, innermost last.
    pub bound: Vec<(String, Value)>,
    /// Ghost-function recursion depth.
    pub depth: u32,
}

impl<'a> EvalCtx<'a> {
    /// Creates a context for `tid` evaluating against `state`.
    pub fn new(program: &'a Program, state: &'a ProgState, tid: Tid, nondets: &'a [Value]) -> Self {
        EvalCtx {
            program,
            state,
            old_state: None,
            tid,
            nondets,
            cursor: 0,
            bound: Vec::new(),
            depth: 0,
        }
    }

    /// Attaches a pre-state so `old(…)` is meaningful.
    pub fn with_old(mut self, old_state: &'a ProgState) -> Self {
        self.old_state = Some(old_state);
        self
    }

    fn take_nondet(&mut self) -> EvalResult<Value> {
        let value = self
            .nondets
            .get(self.cursor)
            .cloned()
            .ok_or_else(|| EvalErr::Stuck("nondet values exhausted".into()))?;
        self.cursor += 1;
        Ok(value)
    }

    fn lookup_bound(&self, name: &str) -> Option<Value> {
        self.bound
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    /// Resolves a variable name to a place (bound variables are values, not
    /// places, and are rejected).
    fn var_place(&self, name: &str) -> EvalResult<Place> {
        if self.lookup_bound(name).is_some() {
            return Err(EvalErr::Stuck(format!(
                "bound variable `{name}` is not an lvalue"
            )));
        }
        // Local of the top frame?
        if let Some(thread) = self.state.thread(self.tid) {
            if let Some(frame) = thread.frames.last() {
                let routine = &self.program.routines[frame.routine as usize];
                if let Some(slot) = routine.local_slot(name) {
                    return Ok(match &frame.locals[slot] {
                        LocalCell::Val(_) => Place {
                            base: PlaceBase::Local(slot),
                            path: Vec::new(),
                        },
                        LocalCell::Obj(id) => Place {
                            base: PlaceBase::Heap(*id),
                            path: Vec::new(),
                        },
                    });
                }
            }
        }
        if let Some(index) = self.program.global_index(name) {
            return Ok(Place {
                base: PlaceBase::Heap(ObjectId(index)),
                path: Vec::new(),
            });
        }
        if let Some(index) = self.program.ghost_index(name) {
            return Ok(Place {
                base: PlaceBase::Ghost(index as usize),
                path: Vec::new(),
            });
        }
        Err(EvalErr::Stuck(format!("unknown variable `{name}`")))
    }

    /// Resolves an lvalue expression to a [`Place`].
    pub fn eval_place(&mut self, expr: &Expr) -> EvalResult<Place> {
        match &expr.kind {
            ExprKind::Var(name) => self.var_place(name),
            ExprKind::Deref(inner) => {
                let ptr = self.eval(inner)?;
                match ptr {
                    Value::Ptr(Some(p)) => Ok(Place {
                        base: PlaceBase::Heap(p.object),
                        path: p.path,
                    }),
                    Value::Ptr(None) => Err(UbReason::NullDereference.into()),
                    other => Err(EvalErr::Stuck(format!(
                        "dereference of non-pointer {other}"
                    ))),
                }
            }
            ExprKind::Field(base, field) => {
                let mut place = self.eval_place(base)?;
                let node = self.place_shape(&place)?;
                let index = node
                    .field_index(field)
                    .ok_or_else(|| EvalErr::Stuck(format!("no field `{field}` at this place")))?;
                place.path.push(index);
                Ok(place)
            }
            ExprKind::Index(base, index) => {
                let mut place = self.eval_place(base)?;
                let index_value = self.eval(index)?;
                let index = index_value
                    .as_int()
                    .ok_or_else(|| EvalErr::Stuck("non-numeric index".into()))?;
                if index < 0 {
                    return Err(UbReason::OutOfBounds.into());
                }
                place.path.push(index as u32);
                Ok(place)
            }
            _ => Err(EvalErr::Stuck("expression is not an lvalue".into())),
        }
    }

    /// The memory tree shape at a place (global view; shape is
    /// buffer-independent because store buffers only carry leaf writes).
    fn place_shape(&self, place: &Place) -> EvalResult<MemNode> {
        self.read_place_node(place)
    }

    /// Reads the whole memory tree at a place, applying the thread's store
    /// buffer overlay for heap places.
    pub fn read_place_node(&self, place: &Place) -> EvalResult<MemNode> {
        match &place.base {
            PlaceBase::Local(slot) => {
                let thread = self
                    .state
                    .thread(self.tid)
                    .ok_or(EvalErr::Ub(UbReason::FreedAccess))?;
                let frame = thread
                    .frames
                    .last()
                    .ok_or_else(|| EvalErr::Stuck("no frame".into()))?;
                match &frame.locals[*slot] {
                    LocalCell::Val(node) => Ok(node.descend(&place.path)?.clone()),
                    LocalCell::Obj(_) => unreachable!("Obj cells resolve to heap places"),
                }
            }
            PlaceBase::Heap(object) => {
                let loc = crate::heap::Location {
                    object: *object,
                    path: place.path.clone(),
                };
                Ok(self.state.read_node(self.tid, &loc)?)
            }
            PlaceBase::Ghost(slot) => {
                if !place.path.is_empty() {
                    return Err(EvalErr::Stuck(
                        "paths into ghost variables are not supported; \
                         assign whole ghost values"
                            .into(),
                    ));
                }
                Ok(MemNode::Leaf(
                    self.state
                        .ghosts
                        .get(*slot)
                        .cloned()
                        .ok_or_else(|| EvalErr::Stuck("ghost slot out of range".into()))?,
                ))
            }
        }
    }

    /// Reads the primitive value at a place.
    pub fn read_place(&self, place: &Place) -> EvalResult<Value> {
        match self.read_place_node(place)? {
            MemNode::Leaf(value) => Ok(value),
            _ => Err(EvalErr::Stuck(
                "composite value used where a primitive is needed".into(),
            )),
        }
    }

    /// Evaluates an expression to a primitive value.
    pub fn eval(&mut self, expr: &Expr) -> EvalResult<Value> {
        match &expr.kind {
            ExprKind::IntLit(value) => Ok(Value::MathInt(*value)),
            ExprKind::BoolLit(value) => Ok(Value::Bool(*value)),
            ExprKind::Null => Ok(Value::Ptr(None)),
            ExprKind::Nondet => self.take_nondet(),
            ExprKind::Me => Ok(Value::tid(self.tid)),
            ExprKind::SbEmpty => Ok(Value::Bool(
                self.state
                    .thread(self.tid)
                    .map(|t| t.buffer.is_empty())
                    .unwrap_or(true),
            )),
            ExprKind::Var(name) => {
                if let Some(value) = self.lookup_bound(name) {
                    return Ok(value);
                }
                let place = self.var_place(name)?;
                self.read_place(&place)
            }
            ExprKind::Unary(op, operand) => {
                let value = self.eval(operand)?;
                self.unary(*op, value)
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs),
            ExprKind::AddrOf(inner) => {
                let place = self.eval_place(inner)?;
                match place.base {
                    PlaceBase::Heap(object) => Ok(Value::Ptr(Some(PtrVal {
                        object,
                        path: place.path,
                    }))),
                    _ => Err(EvalErr::Stuck(
                        "cannot take the address of a non-addressable variable".into(),
                    )),
                }
            }
            ExprKind::Deref(_) | ExprKind::Field(_, _) | ExprKind::Index(_, _) => {
                // Ghost sequence/map indexing has no place; handle it first.
                if let ExprKind::Index(base, index) = &expr.kind {
                    if let Ok(base_value) = self.try_eval_ghost_collection(base) {
                        return self.index_ghost(base_value, index);
                    }
                }
                let place = self.eval_place(expr)?;
                self.read_place(&place)
            }
            ExprKind::Old(inner) => {
                let old_state = self
                    .old_state
                    .ok_or_else(|| EvalErr::Stuck("`old(…)` outside a two-state context".into()))?;
                let mut sub = EvalCtx {
                    program: self.program,
                    state: old_state,
                    old_state: None,
                    tid: self.tid,
                    nondets: self.nondets,
                    cursor: self.cursor,
                    bound: self.bound.clone(),
                    depth: self.depth,
                };
                let value = sub.eval(inner)?;
                self.cursor = sub.cursor;
                Ok(value)
            }
            ExprKind::Allocated(inner) => {
                let value = self.eval(inner)?;
                match value {
                    Value::Ptr(Some(p)) => Ok(Value::Bool(self.state.heap.is_valid(p.object))),
                    Value::Ptr(None) => Ok(Value::Bool(false)),
                    other => Err(EvalErr::Stuck(format!(
                        "allocated() of non-pointer {other}"
                    ))),
                }
            }
            ExprKind::AllocatedArray(inner) => {
                let value = self.eval(inner)?;
                match value {
                    Value::Ptr(Some(p)) => {
                        let ok = self.state.heap.is_valid(p.object)
                            && matches!(
                                self.state.heap.object(p.object).map(|o| o.kind),
                                Some(crate::heap::RootKind::Calloc)
                            );
                        Ok(Value::Bool(ok))
                    }
                    Value::Ptr(None) => Ok(Value::Bool(false)),
                    other => Err(EvalErr::Stuck(format!(
                        "allocated_array() of non-pointer {other}"
                    ))),
                }
            }
            ExprKind::Call(name, args) => self.call(name, args),
            ExprKind::SeqLit(elems) => {
                let values: Vec<Value> = elems
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<EvalResult<_>>()?;
                Ok(Value::Seq(values))
            }
            ExprKind::Forall { var, lo, hi, body } => self.quantify(var, lo, hi, body, true),
            ExprKind::Exists { var, lo, hi, body } => self.quantify(var, lo, hi, body, false),
        }
    }

    fn try_eval_ghost_collection(&mut self, base: &Expr) -> EvalResult<Value> {
        let saved_cursor = self.cursor;
        match &base.kind {
            ExprKind::Var(name) => {
                if let Some(value) = self.lookup_bound(name) {
                    if matches!(value, Value::Seq(_) | Value::Map(_)) {
                        return Ok(value);
                    }
                }
                let place = self.var_place(name)?;
                if matches!(place.base, PlaceBase::Ghost(_)) {
                    let value = self.read_place(&place)?;
                    if matches!(value, Value::Seq(_) | Value::Map(_)) {
                        return Ok(value);
                    }
                }
                self.cursor = saved_cursor;
                Err(EvalErr::Stuck("not a ghost collection".into()))
            }
            ExprKind::Old(_)
            | ExprKind::Call(_, _)
            | ExprKind::SeqLit(_)
            | ExprKind::Binary(_, _, _) => {
                let value = self.eval(base)?;
                if matches!(value, Value::Seq(_) | Value::Map(_)) {
                    Ok(value)
                } else {
                    self.cursor = saved_cursor;
                    Err(EvalErr::Stuck("not a ghost collection".into()))
                }
            }
            _ => Err(EvalErr::Stuck("not a ghost collection".into())),
        }
    }

    fn index_ghost(&mut self, base: Value, index: &Expr) -> EvalResult<Value> {
        let index_value = self.eval(index)?;
        match base {
            Value::Seq(elems) => {
                let i = index_value
                    .as_int()
                    .ok_or_else(|| EvalErr::Stuck("non-numeric sequence index".into()))?;
                if i < 0 || i as usize >= elems.len() {
                    return Err(UbReason::GhostPartialOperation.into());
                }
                Ok(elems[i as usize].clone())
            }
            Value::Map(entries) => entries
                .get(&normalize_key(index_value))
                .cloned()
                .ok_or_else(|| UbReason::GhostPartialOperation.into()),
            other => Err(EvalErr::Stuck(format!("cannot index {other}"))),
        }
    }

    fn quantify(
        &mut self,
        var: &str,
        lo: &Expr,
        hi: &Expr,
        body: &Expr,
        is_forall: bool,
    ) -> EvalResult<Value> {
        let lo = self
            .eval(lo)?
            .as_int()
            .ok_or_else(|| EvalErr::Stuck("non-numeric quantifier bound".into()))?;
        let hi = self
            .eval(hi)?
            .as_int()
            .ok_or_else(|| EvalErr::Stuck("non-numeric quantifier bound".into()))?;
        if hi - lo > MAX_QUANT_RANGE {
            return Err(EvalErr::Stuck(
                "quantifier range too large to evaluate".into(),
            ));
        }
        let mut i = lo;
        while i < hi {
            self.bound.push((var.to_string(), Value::MathInt(i)));
            let result = self.eval(body);
            self.bound.pop();
            let holds = result?
                .as_bool()
                .ok_or_else(|| EvalErr::Stuck("quantifier body not boolean".into()))?;
            if is_forall && !holds {
                return Ok(Value::Bool(false));
            }
            if !is_forall && holds {
                return Ok(Value::Bool(true));
            }
            i += 1;
        }
        Ok(Value::Bool(is_forall))
    }

    fn unary(&self, op: UnOp, value: Value) -> EvalResult<Value> {
        match (op, &value) {
            (UnOp::Neg, Value::Int { ty, val }) => Ok(Value::int(*ty, -*val)),
            (UnOp::Neg, Value::MathInt(val)) => val
                .checked_neg()
                .map(Value::MathInt)
                .ok_or_else(|| UbReason::MathOverflow.into()),
            (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (UnOp::BitNot, Value::Int { ty, val }) => Ok(Value::int(*ty, !*val)),
            (UnOp::BitNot, Value::MathInt(val)) => Ok(Value::MathInt(!*val)),
            _ => Err(EvalErr::Stuck(format!("`{op}` applied to {value}"))),
        }
    }

    fn binary(&mut self, op: BinOp, lhs_expr: &Expr, rhs_expr: &Expr) -> EvalResult<Value> {
        // Short-circuit logical operators: the C idiom `p != null && *p > 0`
        // must not evaluate (and UB on) the right operand when the left
        // decides.
        match op {
            BinOp::And => {
                let lhs = self.eval_bool(lhs_expr)?;
                if !lhs {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(self.eval_bool(rhs_expr)?));
            }
            BinOp::Or => {
                let lhs = self.eval_bool(lhs_expr)?;
                if lhs {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(self.eval_bool(rhs_expr)?));
            }
            BinOp::Implies => {
                let lhs = self.eval_bool(lhs_expr)?;
                if !lhs {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(self.eval_bool(rhs_expr)?));
            }
            _ => {}
        }
        let lhs = self.eval(lhs_expr)?;
        let rhs = self.eval(rhs_expr)?;
        self.binary_values(op, lhs, rhs)
    }

    fn eval_bool(&mut self, expr: &Expr) -> EvalResult<bool> {
        self.eval(expr)?
            .as_bool()
            .ok_or_else(|| EvalErr::Stuck("expected a boolean".into()))
    }

    /// Applies a non-short-circuit binary operator to evaluated operands.
    pub fn binary_values(&self, op: BinOp, lhs: Value, rhs: Value) -> EvalResult<Value> {
        use BinOp::*;
        // Pointer operations.
        if let (Value::Ptr(p), Value::Ptr(q)) = (&lhs, &rhs) {
            return match op {
                Eq => Ok(Value::Bool(self.state.heap.ptr_eq(p, q)?)),
                Ne => Ok(Value::Bool(!self.state.heap.ptr_eq(p, q)?)),
                Lt | Le | Gt | Ge => {
                    let (p, q) = match (p, q) {
                        (Some(p), Some(q)) => (p, q),
                        _ => return Err(UbReason::CrossArrayPointerOp.into()),
                    };
                    let ord = self.state.heap.ptr_order(p, q)?;
                    Ok(Value::Bool(match op {
                        Lt => ord.is_lt(),
                        Le => ord.is_le(),
                        Gt => ord.is_gt(),
                        _ => ord.is_ge(),
                    }))
                }
                Sub => {
                    let (p, q) = match (p, q) {
                        (Some(p), Some(q)) => (p, q),
                        _ => return Err(UbReason::CrossArrayPointerOp.into()),
                    };
                    Ok(Value::MathInt(self.state.heap.ptr_diff(p, q)?))
                }
                _ => Err(EvalErr::Stuck(format!("`{op}` on pointers"))),
            };
        }
        // Pointer ± integer.
        if let (Value::Ptr(p), true) = (&lhs, rhs.is_numeric()) {
            if matches!(op, Add | Sub) {
                let p = p.as_ref().ok_or(EvalErr::Ub(UbReason::NullDereference))?;
                let offset = rhs.as_int().expect("numeric");
                let offset = if op == Sub { -offset } else { offset };
                return Ok(Value::Ptr(Some(self.state.heap.ptr_add(p, offset)?)));
            }
        }
        // Ghost collection operators.
        match (op, &lhs, &rhs) {
            (Add, Value::Seq(a), Value::Seq(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                return Ok(Value::Seq(out));
            }
            (Add, Value::Set(a), Value::Set(b)) => {
                return Ok(Value::Set(a.union(b).cloned().collect()));
            }
            (Sub, Value::Set(a), Value::Set(b)) => {
                return Ok(Value::Set(a.difference(b).cloned().collect()));
            }
            _ => {}
        }
        // Equality on like ghost values and booleans.
        if matches!(op, Eq | Ne) && !lhs.is_numeric() && !rhs.is_numeric() {
            let eq = normalize_key(lhs) == normalize_key(rhs);
            return Ok(Value::Bool(if op == Eq { eq } else { !eq }));
        }
        // Numeric operations.
        let (a, b) = match (lhs.as_int(), rhs.as_int()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(EvalErr::Stuck(format!("`{op}` applied to {lhs} and {rhs}"))),
        };
        if op.is_comparison() {
            let result = match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                _ => a >= b,
            };
            return Ok(Value::Bool(result));
        }
        let result_ty = join_int_type(&lhs, &rhs);
        let exact = match op {
            Add => a.checked_add(b),
            Sub => a.checked_sub(b),
            Mul => a.checked_mul(b),
            Div => {
                if b == 0 {
                    return Err(UbReason::DivisionByZero.into());
                }
                a.checked_div(b)
            }
            Mod => {
                if b == 0 {
                    return Err(UbReason::DivisionByZero.into());
                }
                a.checked_rem(b)
            }
            BitAnd => Some(a & b),
            BitOr => Some(a | b),
            BitXor => Some(a ^ b),
            Shl | Shr => {
                let width = match result_ty {
                    Some(ty) => ty.bits as i128,
                    None => 127,
                };
                if b < 0 || b >= width {
                    return Err(UbReason::InvalidShift.into());
                }
                if op == Shl {
                    a.checked_shl(b as u32)
                } else {
                    Some(a >> b)
                }
            }
            _ => unreachable!("logical/comparison handled above"),
        };
        match result_ty {
            Some(ty) => {
                // Fixed-width arithmetic wraps like the compiled C.
                let wrapped = exact
                    .map(|v| ty.wrap(v))
                    .unwrap_or_else(|| wrap_overflowed(op, a, b, ty));
                Ok(Value::int(ty, wrapped))
            }
            None => exact
                .map(Value::MathInt)
                .ok_or_else(|| UbReason::MathOverflow.into()),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> EvalResult<Value> {
        let values: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<EvalResult<_>>()?;
        if let Some(result) = builtin(name, &values)? {
            return Ok(result);
        }
        let func = self
            .program
            .functions
            .get(name)
            .ok_or_else(|| EvalErr::Stuck(format!("unknown function `{name}`")))?
            .clone();
        if func.params.len() != values.len() {
            return Err(EvalErr::Stuck(format!("arity mismatch calling `{name}`")));
        }
        if self.depth >= MAX_FN_DEPTH {
            return Err(EvalErr::Stuck(format!("recursion too deep in `{name}`")));
        }
        let saved_len = self.bound.len();
        for (param, value) in func.params.iter().zip(values) {
            self.bound
                .push((param.name.clone(), value.coerce_to(&param.ty)));
        }
        self.depth += 1;
        let result = self.eval(&func.body);
        self.depth -= 1;
        self.bound.truncate(saved_len);
        Ok(result?.coerce_to(&func.ret))
    }
}

/// Values used as set elements and map keys are normalized so that `2u32`
/// and mathematical `2` are the same key.
pub fn normalize_key(value: Value) -> Value {
    match value {
        Value::Int { val, .. } => Value::MathInt(val),
        Value::Seq(elems) => Value::Seq(elems.into_iter().map(normalize_key).collect()),
        Value::Set(elems) => Value::Set(elems.into_iter().map(normalize_key).collect()),
        Value::Map(entries) => Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (normalize_key(k), normalize_key(v)))
                .collect(),
        ),
        Value::Opt(Some(inner)) => Value::Opt(Some(Box::new(normalize_key(*inner)))),
        other => other,
    }
}

/// Ghost builtin functions shared by the evaluator and the proof engine.
/// Returns `Ok(None)` if `name` is not a builtin.
pub fn builtin(name: &str, args: &[Value]) -> EvalResult<Option<Value>> {
    let bad = |expected: &str| EvalErr::Stuck(format!("`{name}` expects {expected}"));
    let result = match (name, args) {
        ("len", [Value::Seq(elems)]) => Value::MathInt(elems.len() as i128),
        ("len", [Value::Set(elems)]) => Value::MathInt(elems.len() as i128),
        ("len", [Value::Map(entries)]) => Value::MathInt(entries.len() as i128),
        ("len", _) => return Err(bad("a collection")),
        ("set_add", [Value::Set(elems), value]) => {
            let mut out = elems.clone();
            out.insert(normalize_key(value.clone()));
            Value::Set(out)
        }
        ("set_remove", [Value::Set(elems), value]) => {
            let mut out = elems.clone();
            out.remove(&normalize_key(value.clone()));
            Value::Set(out)
        }
        ("set_contains", [Value::Set(elems), value]) => {
            Value::Bool(elems.contains(&normalize_key(value.clone())))
        }
        ("set_add" | "set_remove" | "set_contains", _) => return Err(bad("a set")),
        ("map_set", [Value::Map(entries), key, value]) => {
            let mut out = entries.clone();
            out.insert(normalize_key(key.clone()), value.clone());
            Value::Map(out)
        }
        ("map_get", [Value::Map(entries), key]) => entries
            .get(&normalize_key(key.clone()))
            .cloned()
            .ok_or(EvalErr::Ub(UbReason::GhostPartialOperation))?,
        ("map_contains", [Value::Map(entries), key]) => {
            Value::Bool(entries.contains_key(&normalize_key(key.clone())))
        }
        ("map_remove", [Value::Map(entries), key]) => {
            let mut out = entries.clone();
            out.remove(&normalize_key(key.clone()));
            Value::Map(out)
        }
        ("map_set" | "map_get" | "map_contains" | "map_remove", _) => return Err(bad("a map")),
        ("some", [value]) => Value::Opt(Some(Box::new(value.clone()))),
        ("is_some", [Value::Opt(inner)]) => Value::Bool(inner.is_some()),
        ("is_none", [Value::Opt(inner)]) => Value::Bool(inner.is_none()),
        ("is_some" | "is_none", _) => return Err(bad("an option")),
        ("unwrap", [Value::Opt(Some(inner))]) => (**inner).clone(),
        ("unwrap", [Value::Opt(None)]) => return Err(EvalErr::Ub(UbReason::GhostPartialOperation)),
        ("unwrap", _) => return Err(bad("an option")),
        ("update", [Value::Seq(elems), index, value]) => {
            let i = index.as_int().ok_or_else(|| bad("a numeric index"))?;
            if i < 0 || i as usize >= elems.len() {
                return Err(EvalErr::Ub(UbReason::GhostPartialOperation));
            }
            let mut out = elems.clone();
            out[i as usize] = value.clone();
            Value::Seq(out)
        }
        ("update", _) => return Err(bad("a seq, index, and element")),
        _ => return Ok(None),
    };
    Ok(Some(result))
}

fn join_int_type(lhs: &Value, rhs: &Value) -> Option<IntType> {
    match (lhs, rhs) {
        (Value::Int { ty: a, .. }, Value::Int { ty: b, .. }) => {
            Some(if a.bits >= b.bits { *a } else { *b })
        }
        (Value::Int { ty, .. }, Value::MathInt(_)) => Some(*ty),
        (Value::MathInt(_), Value::Int { ty, .. }) => Some(*ty),
        _ => None,
    }
}

/// When checked i128 arithmetic overflows but the result type is
/// fixed-width, compute the wrapped result via wide wrapping arithmetic.
fn wrap_overflowed(op: BinOp, a: i128, b: i128, ty: IntType) -> i128 {
    let result = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Shl => a.wrapping_shl(b as u32),
        _ => a,
    };
    ty.wrap(result)
}

/// Evaluates a compile-time constant expression (global initializers).
///
/// # Errors
///
/// Returns a message if the expression reads state or is otherwise not a
/// constant.
pub fn eval_const(expr: &Expr) -> Result<Value, String> {
    match &expr.kind {
        ExprKind::IntLit(value) => Ok(Value::MathInt(*value)),
        ExprKind::BoolLit(value) => Ok(Value::Bool(*value)),
        ExprKind::Null => Ok(Value::Ptr(None)),
        ExprKind::SeqLit(elems) => Ok(Value::Seq(
            elems.iter().map(eval_const).collect::<Result<_, _>>()?,
        )),
        ExprKind::Unary(UnOp::Neg, inner) => {
            let value = eval_const(inner)?;
            value
                .as_int()
                .map(|v| Value::MathInt(-v))
                .ok_or_else(|| "non-numeric negation".to_string())
        }
        ExprKind::Binary(op, lhs, rhs) => {
            let (a, b) = (eval_const(lhs)?, eval_const(rhs)?);
            let (a, b) = match (a.as_int(), b.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err("non-numeric constant arithmetic".into()),
            };
            let value = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div if b != 0 => a / b,
                BinOp::Mod if b != 0 => a % b,
                BinOp::Shl if (0..127).contains(&b) => a << b,
                BinOp::Shr if (0..127).contains(&b) => a >> b,
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                other => return Err(format!("`{other}` not allowed in constants")),
            };
            Ok(Value::MathInt(value))
        }
        _ => Err("initializer is not a compile-time constant".into()),
    }
}

/// Counts the syntactic `*` (nondet) sites of an expression, the maximum
/// number of nondet values its evaluation can consume.
pub fn count_nondet_sites(expr: &Expr) -> usize {
    use ExprKind::*;
    match &expr.kind {
        Nondet => 1,
        Unary(_, a) | AddrOf(a) | Deref(a) | Old(a) | Allocated(a) | AllocatedArray(a) => {
            count_nondet_sites(a)
        }
        Binary(_, a, b) | Index(a, b) => count_nondet_sites(a) + count_nondet_sites(b),
        Field(a, _) => count_nondet_sites(a),
        Call(_, args) | SeqLit(args) => args.iter().map(count_nondet_sites).sum(),
        Forall { lo, hi, body, .. } | Exists { lo, hi, body, .. } => {
            count_nondet_sites(lo) + count_nondet_sites(hi) + count_nondet_sites(body)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval_handles_hex_and_arithmetic() {
        let expr = armada_lang::parse_expr("0xFF + 2 * 3").unwrap();
        assert_eq!(eval_const(&expr), Ok(Value::MathInt(261)));
        let expr = armada_lang::parse_expr("1 << 10").unwrap();
        assert_eq!(eval_const(&expr), Ok(Value::MathInt(1024)));
    }

    #[test]
    fn const_eval_rejects_state_reads() {
        let expr = armada_lang::parse_expr("x + 1").unwrap();
        assert!(eval_const(&expr).is_err());
    }

    #[test]
    fn builtin_set_and_map_ops() {
        let set = Value::Set(Default::default());
        let set = builtin("set_add", &[set, Value::MathInt(3)])
            .unwrap()
            .unwrap();
        assert_eq!(
            builtin("set_contains", &[set.clone(), Value::int(IntType::U32, 3)]),
            Ok(Some(Value::Bool(true))),
            "fixed-width and math ints normalize to the same key"
        );
        assert_eq!(builtin("len", &[set]), Ok(Some(Value::MathInt(1))));
        assert_eq!(
            builtin("unwrap", &[Value::Opt(None)]),
            Err(EvalErr::Ub(UbReason::GhostPartialOperation))
        );
    }

    #[test]
    fn nondet_site_counting() {
        let expr = armada_lang::parse_expr("(*) && x < 3").unwrap();
        assert_eq!(count_nondet_sites(&expr), 1);
        let expr = armada_lang::parse_expr("f(*, *) + 1").unwrap();
        assert_eq!(count_nondet_sites(&expr), 2);
    }
}

//! Step objects and the deterministic transition function (§4.1).
//!
//! A [`Step`] names a thread and either an instruction execution (carrying
//! the values consumed by every nondeterministic site, in evaluation order)
//! or an asynchronous store-buffer drain. [`next_state`] is a *total
//! deterministic function* of `(state, step)` — a disabled or stuck step
//! returns the state unchanged — which is exactly the NextState function the
//! paper's proofs rely on. [`try_step`] is the partial variant used by the
//! explorers.

use armada_lang::ast::{Expr, ExprKind, Type};
use armada_lang::pretty::expr_to_string;

use crate::eval::{count_nondet_sites, EvalCtx, EvalErr, Place, PlaceBase};
use crate::heap::{Location, MemNode, PtrVal, RootKind};
use crate::program::{Instr, Pc, Program};
use crate::state::{
    Frame, LocalCell, ProgState, Termination, ThreadState, ThreadStatus, Tid, MAIN_TID,
};
use crate::value::{UbReason, Value};
use std::sync::Arc;

/// Upper bound on `calloc` lengths the model executes.
const MAX_CALLOC: i128 = 100_000;

/// What a step does.
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Execute the instruction at the thread's PC. `nondets` holds one value
    /// per nondeterministic site consumed, in evaluation order.
    Instr {
        /// Values for `*` sites and unsolved `somehow` havoc targets.
        nondets: Vec<Value>,
    },
    /// Apply the oldest entry of the thread's store buffer to memory.
    Drain,
}

/// A step object: thread plus action. All nondeterminism of the transition
/// relation is encapsulated here.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The acting thread.
    pub tid: Tid,
    /// The action.
    pub kind: StepKind,
}

impl Step {
    /// An instruction step with no nondeterminism.
    pub fn instr(tid: Tid) -> Step {
        Step {
            tid,
            kind: StepKind::Instr {
                nondets: Vec::new(),
            },
        }
    }

    /// An instruction step with the given nondet values.
    pub fn instr_with(tid: Tid, nondets: Vec<Value>) -> Step {
        Step {
            tid,
            kind: StepKind::Instr { nondets },
        }
    }

    /// A store-buffer drain step.
    pub fn drain(tid: Tid) -> Step {
        Step {
            tid,
            kind: StepKind::Drain,
        }
    }
}

/// The thread (if any) that currently blocks all others: it is inside an
/// atomic region and not parked at a yield point.
pub fn atomic_blocker(program: &Program, state: &ProgState) -> Option<Tid> {
    for (tid, thread) in &state.threads {
        if thread.status == ThreadStatus::Active && thread.atomic_depth > 0 {
            match program.instr_at(thread.pc) {
                Some(Instr::YieldPoint) => continue,
                _ => return Some(*tid),
            }
        }
    }
    None
}

/// The deterministic total transition function: applies `step` to `state`,
/// returning the unchanged state when the step is disabled or stuck.
pub fn next_state(program: &Program, state: &ProgState, step: &Step) -> ProgState {
    try_step(program, state, step, usize::MAX).unwrap_or_else(|| state.clone())
}

/// Applies `step` if it is enabled. `max_buffer` models the finite hardware
/// store buffer: a buffered write is disabled (the processor stalls) while
/// the buffer is full.
pub fn try_step(
    program: &Program,
    state: &ProgState,
    step: &Step,
    max_buffer: usize,
) -> Option<ProgState> {
    try_step_with_blocker(
        program,
        state,
        step,
        max_buffer,
        atomic_blocker(program, state),
    )
}

/// [`try_step`] with the state's [`atomic_blocker`] precomputed — the
/// blocker is a property of the state alone, and enumeration calls
/// `try_step` once per candidate, so recomputing the thread scan per
/// candidate is pure waste on the hottest path.
pub(crate) fn try_step_with_blocker(
    program: &Program,
    state: &ProgState,
    step: &Step,
    max_buffer: usize,
    blocker: Option<Tid>,
) -> Option<ProgState> {
    if state.is_terminal() {
        return None;
    }
    if let Some(blocker) = blocker {
        if blocker != step.tid {
            return None;
        }
    }
    match &step.kind {
        StepKind::Drain => {
            let thread = state.thread(step.tid)?;
            if thread.buffer.is_empty() {
                return None;
            }
            let mut new_state = state.clone();
            new_state.drain_one(step.tid).ok()?;
            Some(new_state)
        }
        StepKind::Instr { nondets } => {
            let thread = state.thread(step.tid)?;
            if thread.status != ThreadStatus::Active {
                return None;
            }
            let instr = program.instr_at(thread.pc)?;
            match exec_instr(program, state, step.tid, instr, nondets, max_buffer) {
                Ok(new_state) => Some(new_state),
                Err(ExecStop::Disabled) => None,
                Err(ExecStop::Terminal(term)) => {
                    let mut new_state = state.clone();
                    new_state.termination = term;
                    Some(new_state)
                }
            }
        }
    }
}

enum ExecStop {
    /// Step not enabled in this state (assume false, join pending, buffer
    /// full, or nondet candidates of the wrong shape).
    Disabled,
    /// The step executes but terminates the program (assert failure or UB).
    Terminal(Termination),
}

fn lift(err: EvalErr) -> ExecStop {
    match err {
        EvalErr::Ub(reason) => ExecStop::Terminal(Termination::UndefinedBehavior(reason)),
        EvalErr::Stuck(_) => ExecStop::Disabled,
    }
}

type ExecResult = Result<ProgState, ExecStop>;

/// What an assignment's right-hand side evaluated to.
enum Evaluated {
    Prim(Value),
    Composite(MemNode),
}

fn exec_instr(
    program: &Program,
    state: &ProgState,
    tid: Tid,
    instr: &Instr,
    nondets: &[Value],
    max_buffer: usize,
) -> ExecResult {
    let pc = state.thread(tid).expect("caller checked").pc;
    let mut ctx = EvalCtx::new(program, state, tid, nondets);
    match instr {
        Instr::Noop | Instr::YieldPoint => advance(state, tid, pc.next()),
        Instr::Jump(target) => advance(state, tid, Pc::new(pc.routine, *target)),
        Instr::AtomicBegin { .. } => {
            let mut new_state = state.clone();
            let thread = new_state.threads.get_mut(&tid).expect("active");
            thread.atomic_depth += 1;
            thread.pc = pc.next();
            Ok(new_state)
        }
        Instr::AtomicEnd => {
            let mut new_state = state.clone();
            let thread = new_state.threads.get_mut(&tid).expect("active");
            thread.atomic_depth = thread.atomic_depth.saturating_sub(1);
            thread.pc = pc.next();
            Ok(new_state)
        }
        Instr::Guard {
            cond,
            then_pc,
            else_pc,
        } => {
            let value = ctx.eval(cond).map_err(lift)?;
            let cond = value.as_bool().ok_or(ExecStop::Disabled)?;
            let target = if cond { *then_pc } else { *else_pc };
            advance(state, tid, Pc::new(pc.routine, target))
        }
        Instr::Assert(cond) => {
            let value = ctx.eval(cond).map_err(lift)?;
            match value.as_bool() {
                Some(true) => advance(state, tid, pc.next()),
                Some(false) => Err(ExecStop::Terminal(Termination::AssertFailed(pc))),
                None => Err(ExecStop::Disabled),
            }
        }
        Instr::Assume(cond) => {
            let value = ctx.eval(cond).map_err(lift)?;
            match value.as_bool() {
                Some(true) => advance(state, tid, pc.next()),
                _ => Err(ExecStop::Disabled),
            }
        }
        Instr::Print(args) => {
            let values: Vec<Value> = args
                .iter()
                .map(|a| ctx.eval(a))
                .collect::<Result<_, _>>()
                .map_err(lift)?;
            let mut new_state = state.clone();
            // Log entries are observations, not typed storage: normalize so
            // that a `uint32` 1 and a ghost 1 are the same event and levels
            // of different concreteness stay comparable under R.
            new_state
                .log
                .extend(values.into_iter().map(crate::eval::normalize_key));
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Fence => {
            let mut new_state = state.clone();
            while new_state.drain_one(tid).map_err(|e| lift(e.into()))? {}
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Assign { lhs, rhs, sc } => {
            // Evaluate all RHSs, then all LHS places, against the pre-state;
            // then apply the writes left to right.
            let mut values = Vec::with_capacity(rhs.len());
            for value_expr in rhs {
                values.push(eval_rhs(&mut ctx, value_expr).map_err(lift)?);
            }
            let mut places = Vec::with_capacity(lhs.len());
            for target in lhs {
                places.push(ctx.eval_place(target).map_err(lift)?);
            }
            let mut new_state = state.clone();
            for (place, value) in places.into_iter().zip(values) {
                match value {
                    Evaluated::Prim(value) => {
                        write_value(program, &mut new_state, tid, &place, value, *sc, max_buffer)?
                    }
                    Evaluated::Composite(node) => write_node(&mut new_state, tid, &place, node)?,
                }
            }
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Malloc { into, ty } => {
            let place = ctx.eval_place(into).map_err(lift)?;
            let mut new_state = state.clone();
            let node = MemNode::zero(ty, &program.structs);
            let id = new_state.heap.alloc(node, RootKind::Malloc);
            let ptr = Value::Ptr(Some(PtrVal::to_root(id)));
            write_value(program, &mut new_state, tid, &place, ptr, false, max_buffer)?;
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Calloc { into, ty, count } => {
            let count = ctx
                .eval(count)
                .map_err(lift)?
                .as_int()
                .ok_or(ExecStop::Disabled)?;
            if count <= 0 {
                return Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                    UbReason::OutOfBounds,
                )));
            }
            if count > MAX_CALLOC {
                return Err(ExecStop::Disabled);
            }
            let place = ctx.eval_place(into).map_err(lift)?;
            let mut new_state = state.clone();
            let elem = MemNode::zero(ty, &program.structs);
            let node = MemNode::Array(vec![elem; count as usize]);
            let id = new_state.heap.alloc(node, RootKind::Calloc);
            let ptr = Value::Ptr(Some(PtrVal {
                object: id,
                path: vec![0],
            }));
            write_value(program, &mut new_state, tid, &place, ptr, false, max_buffer)?;
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Dealloc(target) => {
            let value = ctx.eval(target).map_err(lift)?;
            let ptr = match value {
                Value::Ptr(Some(p)) => p,
                Value::Ptr(None) => {
                    return Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                        UbReason::InvalidDealloc,
                    )))
                }
                _ => return Err(ExecStop::Disabled),
            };
            let mut new_state = state.clone();
            new_state
                .heap
                .dealloc(&ptr)
                .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))?;
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Call {
            routine,
            args,
            into: _,
        } => {
            let values: Vec<Value> = args
                .iter()
                .map(|a| ctx.eval(a))
                .collect::<Result<_, _>>()
                .map_err(lift)?;
            let mut new_state = state.clone();
            let mut frame =
                build_frame(program, &mut new_state, *routine, &values).map_err(lift)?;
            frame.call_pc = Some(pc);
            let thread = new_state.threads.get_mut(&tid).expect("active");
            thread.frames.push(Arc::new(frame));
            thread.pc = Pc::new(*routine, 0);
            Ok(new_state)
        }
        Instr::Ret { value } => {
            let routine = &program.routines[pc.routine as usize];
            let result = match (value, &routine.ret_ty) {
                (Some(expr), Some(ret_ty)) => Some(ctx.eval(expr).map_err(lift)?.coerce_to(ret_ty)),
                (Some(expr), None) => {
                    let _ = ctx.eval(expr).map_err(lift)?;
                    None
                }
                (None, _) => None,
            };
            let mut new_state = state.clone();
            let thread = new_state.threads.get_mut(&tid).expect("active");
            let popped = thread.frames.pop().expect("active thread has a frame");
            // Address-taken locals die with the frame (§3.2.4).
            for cell in &popped.locals {
                if let LocalCell::Obj(id) = cell {
                    new_state.heap.free_static(*id);
                }
            }
            match popped.call_pc {
                None => {
                    // Bottom frame: the thread exits.
                    let thread = new_state.threads.get_mut(&tid).expect("active");
                    thread.status = ThreadStatus::Exited;
                    if tid == MAIN_TID {
                        new_state.termination = Termination::Exited;
                    }
                    Ok(new_state)
                }
                Some(call_pc) => {
                    let thread = new_state.threads.get_mut(&tid).expect("active");
                    thread.pc = call_pc.next();
                    // Write the return value into the caller's lvalue.
                    let into = match program.instr_at(call_pc) {
                        Some(Instr::Call { into, .. }) => into.clone(),
                        _ => None,
                    };
                    if let (Some(into), Some(result)) = (into, result) {
                        let mut caller_ctx = EvalCtx::new(program, &new_state, tid, &[]);
                        let place = caller_ctx.eval_place(&into).map_err(lift)?;
                        write_value(
                            program,
                            &mut new_state,
                            tid,
                            &place,
                            result,
                            false,
                            max_buffer,
                        )?;
                    }
                    Ok(new_state)
                }
            }
        }
        Instr::CreateThread {
            into,
            routine,
            args,
        } => {
            let values: Vec<Value> = args
                .iter()
                .map(|a| ctx.eval(a))
                .collect::<Result<_, _>>()
                .map_err(lift)?;
            let into_place = match into {
                Some(target) => Some(ctx.eval_place(target).map_err(lift)?),
                None => None,
            };
            let mut new_state = state.clone();
            let frame = build_frame(program, &mut new_state, *routine, &values).map_err(lift)?;
            let new_tid = new_state.next_tid;
            new_state.next_tid += 1;
            new_state.threads.insert(
                new_tid,
                ThreadState {
                    pc: Pc::new(*routine, 0),
                    frames: vec![Arc::new(frame)],
                    buffer: Default::default(),
                    atomic_depth: 0,
                    status: ThreadStatus::Active,
                },
            );
            if let Some(place) = into_place {
                write_value(
                    program,
                    &mut new_state,
                    tid,
                    &place,
                    Value::tid(new_tid),
                    false,
                    max_buffer,
                )?;
            }
            set_pc(&mut new_state, tid, pc.next());
            Ok(new_state)
        }
        Instr::Join(handle) => {
            let value = ctx.eval(handle).map_err(lift)?;
            let target = value.as_int().ok_or(ExecStop::Disabled)?;
            if target < 0 {
                return Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                    UbReason::InvalidJoin,
                )));
            }
            match state.thread(target as Tid) {
                Some(thread) if thread.status == ThreadStatus::Exited => {
                    advance(state, tid, pc.next())
                }
                Some(_) => Err(ExecStop::Disabled),
                None => Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                    UbReason::InvalidJoin,
                ))),
            }
        }
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => exec_somehow(
            program, state, tid, requires, modifies, ensures, nondets, pc,
        ),
    }
}

fn exec_somehow(
    program: &Program,
    state: &ProgState,
    tid: Tid,
    requires: &[Expr],
    modifies: &[Expr],
    ensures: &[Expr],
    nondets: &[Value],
    pc: Pc,
) -> ExecResult {
    let mut ctx = EvalCtx::new(program, state, tid, nondets);
    for clause in requires {
        match ctx.eval(clause).map_err(lift)?.as_bool() {
            Some(true) => {}
            Some(false) => {
                return Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                    UbReason::RequiresViolated,
                )))
            }
            None => return Err(ExecStop::Disabled),
        }
    }
    let places: Vec<Place> = modifies
        .iter()
        .map(|m| ctx.eval_place(m))
        .collect::<Result<_, _>>()
        .map_err(lift)?;
    let mut cursor = ctx.cursor;

    let mut new_state = state.clone();
    for (target, place) in modifies.iter().zip(&places) {
        let value = match somehow_solution(target, ensures) {
            Some(solution) => {
                // Deterministic targets like `log == old(log) + [n]` are
                // computed directly rather than havocked.
                let mut solve_ctx = EvalCtx::new(program, &new_state, tid, &[]).with_old(state);
                match solve_ctx.eval(solution) {
                    Ok(value) => value,
                    Err(EvalErr::Ub(reason)) => {
                        return Err(ExecStop::Terminal(Termination::UndefinedBehavior(reason)))
                    }
                    Err(EvalErr::Stuck(_)) => take_nondet(nondets, &mut cursor)?,
                }
            }
            None => take_nondet(nondets, &mut cursor)?,
        };
        // Somehow is an atomic declarative action: its writes are
        // sequentially consistent (the Figure-8 model runs the whole action
        // in one step).
        write_value(program, &mut new_state, tid, place, value, true, usize::MAX)?;
    }
    // Check the two-state postconditions.
    let mut post_ctx = EvalCtx::new(program, &new_state, tid, &[]).with_old(state);
    for clause in ensures {
        match post_ctx.eval(clause) {
            Ok(Value::Bool(true)) => {}
            Ok(_) => return Err(ExecStop::Disabled),
            Err(EvalErr::Ub(reason)) => {
                return Err(ExecStop::Terminal(Termination::UndefinedBehavior(reason)))
            }
            Err(EvalErr::Stuck(_)) => return Err(ExecStop::Disabled),
        }
    }
    set_pc(&mut new_state, tid, pc.next());
    Ok(new_state)
}

fn take_nondet(nondets: &[Value], cursor: &mut usize) -> Result<Value, ExecStop> {
    let value = nondets.get(*cursor).cloned().ok_or(ExecStop::Disabled)?;
    *cursor += 1;
    Ok(value)
}

/// Finds an `ensures` clause of the form `<target> == e` and returns `e`.
/// The comparison is syntactic (span-insensitive, via pretty-printing).
pub fn somehow_solution<'a>(target: &Expr, ensures: &'a [Expr]) -> Option<&'a Expr> {
    let target_text = expr_to_string(target);
    for clause in ensures {
        if let ExprKind::Binary(armada_lang::ast::BinOp::Eq, lhs, rhs) = &clause.kind {
            if expr_to_string(lhs) == target_text {
                return Some(rhs);
            }
            if expr_to_string(rhs) == target_text {
                return Some(lhs);
            }
        }
    }
    None
}

fn eval_rhs(ctx: &mut EvalCtx<'_>, expr: &Expr) -> Result<Evaluated, EvalErr> {
    // An lvalue-shaped RHS may denote a composite (struct/array copy).
    if matches!(
        expr.kind,
        ExprKind::Var(_) | ExprKind::Deref(_) | ExprKind::Field(_, _) | ExprKind::Index(_, _)
    ) {
        if let Ok(place) = ctx.eval_place(expr) {
            match ctx.read_place_node(&place)? {
                MemNode::Leaf(value) => return Ok(Evaluated::Prim(value)),
                composite => return Ok(Evaluated::Composite(composite)),
            }
        }
    }
    Ok(Evaluated::Prim(ctx.eval(expr)?))
}

fn advance(state: &ProgState, tid: Tid, pc: Pc) -> ExecResult {
    let mut new_state = state.clone();
    set_pc(&mut new_state, tid, pc);
    Ok(new_state)
}

fn set_pc(state: &mut ProgState, tid: Tid, pc: Pc) {
    state.threads.get_mut(&tid).expect("active thread").pc = pc;
}

/// Writes a primitive value at a place. Heap writes go through the store
/// buffer unless `sc`; a full buffer disables the step (the processor
/// stalls). Values are coerced to the type of the location's current
/// occupant, modeling assignment-width wrapping.
fn write_value(
    program: &Program,
    state: &mut ProgState,
    tid: Tid,
    place: &Place,
    value: Value,
    sc: bool,
    max_buffer: usize,
) -> Result<(), ExecStop> {
    match &place.base {
        PlaceBase::Local(slot) => {
            let thread = state.threads.get_mut(&tid).expect("active thread");
            let frame = thread.top_frame_mut();
            let node = match &mut frame.locals[*slot] {
                LocalCell::Val(node) => node,
                LocalCell::Obj(_) => unreachable!("Obj cells resolve to heap places"),
            };
            let target = node
                .descend_mut(&place.path)
                .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))?;
            let coerced = coerce_like(target, value).ok_or(ExecStop::Disabled)?;
            *target = MemNode::Leaf(coerced);
            Ok(())
        }
        PlaceBase::Ghost(slot) => {
            let ty = program.ghosts.get(*slot).map(|g| g.ty.clone());
            let coerced = match ty {
                Some(ty) => value.coerce_to(&ty),
                None => value,
            };
            state.ghosts[*slot] = coerced;
            Ok(())
        }
        PlaceBase::Heap(object) => {
            let loc = Location {
                object: *object,
                path: place.path.clone(),
            };
            // Validate the destination and fetch its occupant for coercion.
            let occupant = state
                .heap
                .read(&loc)
                .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))?;
            let coerced = coerce_like(occupant, value).ok_or(ExecStop::Disabled)?;
            match occupant {
                MemNode::Leaf(_) => {}
                _ => {
                    return Err(ExecStop::Terminal(Termination::UndefinedBehavior(
                        UbReason::OutOfBounds,
                    )))
                }
            }
            if sc {
                state
                    .heap
                    .write_leaf(&loc, coerced)
                    .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))?;
            } else {
                let thread = state.threads.get_mut(&tid).expect("active thread");
                if thread.buffer.len() >= max_buffer {
                    return Err(ExecStop::Disabled);
                }
                thread.buffer.push_back(crate::state::BufferedWrite {
                    loc,
                    value: coerced,
                });
            }
            Ok(())
        }
    }
}

/// Writes a composite node (struct/array copy). Composite stores bypass the
/// store buffer: hardware cannot buffer a multi-word store atomically, and
/// core Armada's one-shared-access rule keeps compiled code away from this;
/// proof levels use it for whole-object ghost manipulation.
fn write_node(
    state: &mut ProgState,
    tid: Tid,
    place: &Place,
    node: MemNode,
) -> Result<(), ExecStop> {
    match &place.base {
        PlaceBase::Local(slot) => {
            let thread = state.threads.get_mut(&tid).expect("active thread");
            let frame = thread.top_frame_mut();
            let cell = match &mut frame.locals[*slot] {
                LocalCell::Val(existing) => existing,
                LocalCell::Obj(_) => unreachable!("Obj cells resolve to heap places"),
            };
            let target = cell
                .descend_mut(&place.path)
                .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))?;
            *target = node;
            Ok(())
        }
        PlaceBase::Heap(object) => {
            let loc = Location {
                object: *object,
                path: place.path.clone(),
            };
            state
                .heap
                .write(&loc, node)
                .map_err(|r| ExecStop::Terminal(Termination::UndefinedBehavior(r)))
        }
        PlaceBase::Ghost(_) => Err(ExecStop::Disabled),
    }
}

/// Coerces `value` to match the type of the occupant leaf. A shape mismatch
/// (boolean into an integer cell, pointer into a boolean, …) yields `None`;
/// callers disable the step, which prunes ill-typed nondet candidates
/// during enumeration.
fn coerce_like(occupant: &MemNode, value: Value) -> Option<Value> {
    match occupant {
        MemNode::Leaf(Value::Int { ty, .. }) => {
            if value.is_numeric() {
                Some(value.coerce_to(&Type::Int(*ty)))
            } else {
                None
            }
        }
        MemNode::Leaf(Value::MathInt(_)) => {
            if value.is_numeric() {
                Some(value.coerce_to(&Type::MathInt))
            } else {
                None
            }
        }
        MemNode::Leaf(Value::Bool(_)) => matches!(value, Value::Bool(_)).then_some(value),
        MemNode::Leaf(Value::Ptr(_)) => matches!(value, Value::Ptr(_)).then_some(value),
        _ => Some(value),
    }
}

/// Builds a frame for `routine` with `args` as its leading locals. Allocates
/// heap objects for address-taken locals (which makes frame construction
/// part of the state transition, as in the paper where uninitialized locals
/// are step-object fields).
pub fn build_frame(
    program: &Program,
    state: &mut ProgState,
    routine: u32,
    args: &[Value],
) -> Result<Frame, EvalErr> {
    let def = program
        .routines
        .get(routine as usize)
        .ok_or_else(|| EvalErr::Stuck("unknown routine".into()))?;
    if args.len() != def.param_count {
        return Err(EvalErr::Stuck(format!(
            "routine `{}` expects {} arguments, got {}",
            def.name,
            def.param_count,
            args.len()
        )));
    }
    let mut locals = Vec::with_capacity(def.locals.len());
    for (index, local) in def.locals.iter().enumerate() {
        let mut node = MemNode::zero(&local.ty, &program.structs);
        if index < def.param_count {
            let value = args[index].clone().coerce_to(&local.ty);
            node = MemNode::Leaf(value);
        }
        if local.addr_taken {
            let id = state.heap.alloc(node, RootKind::Static);
            locals.push(LocalCell::Obj(id));
        } else {
            locals.push(LocalCell::Val(node));
        }
    }
    Ok(Frame {
        routine,
        locals,
        call_pc: None,
    })
}

/// The maximum number of nondet values `instr` can consume: its syntactic
/// `*` sites plus one per `somehow` havoc target without a solvable
/// `ensures` equation.
pub fn max_nondet_sites(instr: &Instr) -> usize {
    match instr {
        Instr::Assign { lhs, rhs, .. } => {
            lhs.iter().map(count_nondet_sites).sum::<usize>()
                + rhs.iter().map(count_nondet_sites).sum::<usize>()
        }
        Instr::Guard { cond, .. } | Instr::Assert(cond) | Instr::Assume(cond) => {
            count_nondet_sites(cond)
        }
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => {
            let syntactic: usize = requires
                .iter()
                .chain(modifies.iter())
                .map(count_nondet_sites)
                .sum();
            let unsolved = modifies
                .iter()
                .filter(|m| somehow_solution(m, ensures).is_none())
                .count();
            syntactic + unsolved
        }
        Instr::Call { args, .. } | Instr::Print(args) => args.iter().map(count_nondet_sites).sum(),
        Instr::CreateThread { args, into, .. } => {
            args.iter().map(count_nondet_sites).sum::<usize>()
                + into.as_ref().map(count_nondet_sites).unwrap_or(0)
        }
        Instr::Calloc { count, into, .. } => count_nondet_sites(count) + count_nondet_sites(into),
        Instr::Malloc { into, .. } => count_nondet_sites(into),
        Instr::Dealloc(target) | Instr::Join(target) => count_nondet_sites(target),
        Instr::Ret { value } => value.as_ref().map(count_nondet_sites).unwrap_or(0),
        _ => 0,
    }
}

/// Enumerates the enabled steps of `state` together with their successor
/// states, drawing nondet values from `pool`.
pub fn enabled_steps(
    program: &Program,
    state: &ProgState,
    pool: &[Value],
    max_buffer: usize,
) -> Vec<(Step, ProgState)> {
    let mut out = Vec::new();
    if state.is_terminal() {
        return out;
    }
    let blocker = atomic_blocker(program, state);
    for (&tid, thread) in &state.threads {
        // Drain step.
        if !thread.buffer.is_empty() {
            let step = Step::drain(tid);
            if let Some(next) = try_step_with_blocker(program, state, &step, max_buffer, blocker) {
                out.push((step, next));
            }
        }
        if thread.status != ThreadStatus::Active {
            continue;
        }
        let instr = match program.instr_at(thread.pc) {
            Some(instr) => instr,
            None => continue,
        };
        let sites = max_nondet_sites(instr);
        if sites == 0 {
            let step = Step::instr(tid);
            if let Some(next) = try_step_with_blocker(program, state, &step, max_buffer, blocker) {
                out.push((step, next));
            }
        } else {
            let mut tuple = Vec::with_capacity(sites);
            enumerate_tuples(
                program, state, tid, pool, sites, &mut tuple, max_buffer, blocker, &mut out,
            );
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate_tuples(
    program: &Program,
    state: &ProgState,
    tid: Tid,
    pool: &[Value],
    remaining: usize,
    tuple: &mut Vec<Value>,
    max_buffer: usize,
    blocker: Option<Tid>,
    out: &mut Vec<(Step, ProgState)>,
) {
    if remaining == 0 {
        let step = Step::instr_with(tid, tuple.clone());
        if let Some(next) = try_step_with_blocker(program, state, &step, max_buffer, blocker) {
            out.push((step, next));
        }
        return;
    }
    for candidate in pool {
        tuple.push(candidate.clone());
        enumerate_tuples(
            program,
            state,
            tid,
            pool,
            remaining - 1,
            tuple,
            max_buffer,
            blocker,
            out,
        );
        tuple.pop();
    }
}

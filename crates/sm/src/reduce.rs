//! Sound local-step reduction: fuses maximal runs of thread-local steps
//! into single macro-transitions before interleaving enumeration.
//!
//! The interleaving explosion that exploration and refinement checking
//! fight is mostly *pointless*: a step that reads and writes nothing shared
//! (a jump, a local-only assignment, a guard over locals) commutes with
//! every step of every other thread, so exploring it in all interleaved
//! positions multiplies the state space without changing anything
//! observable. This module implements a conservative special case of
//! ample-set partial-order reduction tailored to the x86-TSO semantics:
//!
//! At a state `s`, the lowest-numbered thread `t` with a *fusable* step is
//! selected, and the maximal run of fusable `t`-steps from `s` is collapsed
//! into one [`MacroStep`] — the only transition explored at `s`. A step is
//! fusable when all of the following hold:
//!
//! - the instruction is one of `Noop`, `Jump`, `Guard`, `Assert`, `Assume`,
//!   `Assign`, or a `YieldPoint` outside any atomic region — kinds whose
//!   execution cannot create threads, allocate, fence, log, or return;
//! - it has no nondeterministic sites (`max_nondet_sites == 0`), so the
//!   transition is deterministic;
//! - its [`Effects`](crate::effects::Effects) footprint is thread-local:
//!   no shared reads or writes, no allocation, no fence — and the executing
//!   routine has no address-taken locals, so its locals cannot alias the
//!   heap that effects analysis tracks;
//! - the step is enabled and its successor is still `Running`: a
//!   terminating step (a failing assert) is *visible* — termination is an
//!   observable — and must stay interleaved with other threads' steps.
//!
//! Everything in the first three bullets is a property of the *program
//! point*, not the state, so a [`Reducer`] precomputes one eligibility bit
//! per instruction when constructed and the per-state work is a table
//! lookup plus the actual step.
//!
//! Such a step is invisible (log and termination unchanged), independent of
//! every transition of every other thread (they can only reach `t`'s
//! program counter or non-address-taken locals, which is to say they
//! cannot), and independent of `t`'s own pending drain steps (it touches
//! neither the buffer nor the heap). That satisfies the ample-set
//! conditions C0–C2; the cycle condition C3 is handled by *abandoning*
//! reduction at any state whose fused run revisits a state (detected by
//! fingerprint): a purely local cycle (`while (true) {}`) would otherwise
//! let the ample thread starve everyone else. On abandonment the state gets
//! a full unreduced expansion, so every state of a local cycle exposes all
//! threads' steps. Fusion is also capped at [`MAX_FUSE`] steps; stopping a
//! fusion early is always sound because the endpoint is expanded on its own
//! (with reduction re-applied there).
//!
//! What the reduction preserves — and what exploration / refinement
//! checking consume — are the *observable* terminal classes: the set of
//! exited logs, assertion-failure and UB terminations, stuckness, and
//! reachability of every observable event sequence. The exact set of
//! intermediate (and even terminal) states may shrink: that is the point.
//!
//! Reduction composes freely with symmetry canonicalization
//! (`crate::canon`): reduction prunes *edges* out of a state, symmetry
//! merges equivalent *endpoint states* after the edge is taken. Each
//! preserves observables on its own, so the engines apply both by default
//! and the gains multiply.

use crate::effects::instr_effects;
use crate::program::{Instr, Program};
use crate::state::{ProgState, Termination, ThreadStatus, Tid};
use crate::step::{atomic_blocker, enabled_steps, max_nondet_sites, try_step, Step};
use crate::value::Value;
use crate::StateArena;
use std::collections::HashSet;

/// Fusion cap: bounds the transient memory of one macro-transition (every
/// intermediate state is materialized for trace reconstruction). Stopping
/// at the cap is sound — the endpoint is expanded as its own state.
pub const MAX_FUSE: usize = 4096;

/// A (possibly fused) transition: one or more micro-steps executed
/// back-to-back by a single thread, presented as one edge.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroStep {
    /// The underlying micro-steps, in execution order. Unfused transitions
    /// carry exactly one.
    pub steps: Vec<Step>,
    /// The intermediate states threaded through a fused run: `mids[i]` is
    /// the state *after* `steps[i]` and before `steps[i + 1]`; the state
    /// after the final step is the edge's target. Empty when unfused.
    pub mids: Vec<ProgState>,
}

impl MacroStep {
    /// An unfused single-step edge.
    pub fn single(step: Step) -> MacroStep {
        MacroStep {
            steps: vec![step],
            mids: Vec::new(),
        }
    }

    /// The number of micro-steps this edge represents.
    pub fn micro_len(&self) -> usize {
        self.steps.len()
    }
}

/// Precomputed reduction oracle for one program: one fusability bit per
/// instruction (see the module docs for the conditions), computed once so
/// the per-state fusion probe is a table lookup.
pub struct Reducer<'p> {
    program: &'p Program,
    /// `fusable[routine][instr]`: the state-independent part of fusability.
    /// `YieldPoint` bits still require `atomic_depth == 0` at runtime.
    fusable: Vec<Vec<bool>>,
}

impl<'p> Reducer<'p> {
    /// Analyzes `program` and builds the per-instruction fusability table.
    pub fn new(program: &'p Program) -> Reducer<'p> {
        let fusable = program
            .routines
            .iter()
            .map(|routine| {
                // Address-taken locals live in the heap from the effects
                // analysis's point of view, but direct accesses to them
                // record no effects; rule out the whole routine so "no
                // effects" really means thread-local.
                if routine.locals.iter().any(|local| local.addr_taken) {
                    return vec![false; routine.instrs.len()];
                }
                routine
                    .instrs
                    .iter()
                    .map(|instr| {
                        let kind_ok = matches!(
                            instr,
                            Instr::Noop
                                | Instr::Jump(_)
                                | Instr::Guard { .. }
                                | Instr::Assert(_)
                                | Instr::Assume(_)
                                | Instr::Assign { .. }
                                | Instr::YieldPoint
                        );
                        kind_ok
                            && max_nondet_sites(instr) == 0
                            && instr_effects(program, routine, instr).is_thread_local()
                    })
                    .collect()
            })
            .collect();
        Reducer { program, fusable }
    }

    /// If thread `tid` has a fusable step at `state`, returns its (unique)
    /// successor.
    fn fusable_step(&self, state: &ProgState, tid: Tid, max_buffer: usize) -> Option<ProgState> {
        let thread = state.threads.get(&tid)?;
        if thread.status != ThreadStatus::Active {
            return None;
        }
        let pc = thread.pc;
        if !*self
            .fusable
            .get(pc.routine as usize)?
            .get(pc.instr as usize)?
        {
            return None;
        }
        // A yield inside an atomic region gates other threads' enabledness
        // (it is where they may interleave); outside one it is pure noop.
        if matches!(self.program.instr_at(pc), Some(Instr::YieldPoint)) && thread.atomic_depth > 0 {
            return None;
        }
        let next = try_step(self.program, state, &Step::instr(tid), max_buffer)?;
        // Termination is observable: a terminating step (failing assert)
        // must remain interleaved with other threads' alternatives.
        if next.termination != Termination::Running {
            return None;
        }
        Some(next)
    }

    /// Walks the maximal fused run of `tid` starting from its already-taken
    /// first step, invoking `keep` on each intermediate state. Returns
    /// `None` if the run revisits a state (C3: abandon reduction) and the
    /// `(micro length, endpoint)` otherwise.
    fn fuse_run(
        &self,
        origin: &ProgState,
        first: ProgState,
        tid: Tid,
        max_buffer: usize,
        mut keep: impl FnMut(&ProgState),
    ) -> Option<(usize, ProgState)> {
        let mut run_fps = HashSet::new();
        run_fps.insert(StateArena::fingerprint(origin));
        run_fps.insert(StateArena::fingerprint(&first));
        let mut micro = 1usize;
        let mut cur = first;
        loop {
            if micro >= MAX_FUSE {
                break;
            }
            let Some(next) = self.fusable_step(&cur, tid, max_buffer) else {
                break;
            };
            if !run_fps.insert(StateArena::fingerprint(&next)) {
                // The local run revisits a state: a pure local cycle under
                // reduction would starve every other thread (C3). Abandon
                // reduction at this state entirely.
                return None;
            }
            keep(&cur);
            micro += 1;
            cur = next;
        }
        Some((micro, cur))
    }

    /// The thread chosen for reduction at `state`, with its first fused
    /// successor: the lowest thread id with a fusable step (deterministic).
    fn ample_thread(&self, state: &ProgState, max_buffer: usize) -> Option<(Tid, ProgState)> {
        if state.termination != Termination::Running {
            return None;
        }
        // Another thread holding an atomic region disables everyone else,
        // including every fusable candidate; skip the probe entirely.
        let blocker = atomic_blocker(self.program, state);
        state
            .threads
            .keys()
            .filter(|&&tid| blocker.is_none_or(|b| b == tid))
            .find_map(|&tid| Some((tid, self.fusable_step(state, tid, max_buffer)?)))
    }

    /// Enumerates the (possibly fused) successor edges of `state`, with
    /// full per-micro-step [`MacroStep`] detail — what the refinement
    /// checker needs for trace reconstruction.
    ///
    /// With `reduce` off, this is exactly [`enabled_steps`] with each edge
    /// wrapped as a singleton [`MacroStep`]. With `reduce` on, a state
    /// where some thread has a fusable step yields *one* edge: the maximal
    /// fused run of that thread's local steps. States with no fusable step
    /// — and states whose fused run would cycle — get the full unreduced
    /// expansion.
    pub fn macro_steps(
        &self,
        state: &ProgState,
        pool: &[Value],
        max_buffer: usize,
        reduce: bool,
    ) -> Vec<(MacroStep, ProgState)> {
        if reduce {
            if let Some((tid, first)) = self.ample_thread(state, max_buffer) {
                let mut mids: Vec<ProgState> = Vec::new();
                if let Some((micro, end)) =
                    self.fuse_run(state, first, tid, max_buffer, |mid| mids.push(mid.clone()))
                {
                    let steps = vec![Step::instr(tid); micro];
                    return vec![(MacroStep { steps, mids }, end)];
                }
            }
        }
        unreduced(self.program, state, pool, max_buffer)
    }

    /// Lean edge enumeration for exploration: `(micro length, successor)`
    /// per edge, skipping the [`MacroStep`] step-vector and intermediate
    /// state clones that only trace reconstruction needs.
    pub fn successors(
        &self,
        state: &ProgState,
        pool: &[Value],
        max_buffer: usize,
        reduce: bool,
    ) -> Vec<(usize, ProgState)> {
        if reduce {
            if let Some((tid, first)) = self.ample_thread(state, max_buffer) {
                if let Some(edge) = self.fuse_run(state, first, tid, max_buffer, |_| {}) {
                    return vec![edge];
                }
            }
        }
        enabled_steps(self.program, state, pool, max_buffer)
            .into_iter()
            .map(|(_, next)| (1, next))
            .collect()
    }
}

/// Convenience wrapper: [`Reducer::macro_steps`] with a freshly built
/// table. Engines that expand many states should build one [`Reducer`] and
/// reuse it.
pub fn macro_steps(
    program: &Program,
    state: &ProgState,
    pool: &[Value],
    max_buffer: usize,
    reduce: bool,
) -> Vec<(MacroStep, ProgState)> {
    Reducer::new(program).macro_steps(state, pool, max_buffer, reduce)
}

fn unreduced(
    program: &Program,
    state: &ProgState,
    pool: &[Value],
    max_buffer: usize,
) -> Vec<(MacroStep, ProgState)> {
    enabled_steps(program, state, pool, max_buffer)
        .into_iter()
        .map(|(step, next)| (MacroStep::single(step), next))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::state::initial_state;
    use crate::Bounds;
    use armada_lang::{check_module, parse_module};

    fn program(src: &str) -> Program {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, &module.levels[0].name.clone()).expect("lower")
    }

    #[test]
    fn fuses_local_runs_into_one_edge() {
        // Five local increments and the surrounding jumps collapse into a
        // single macro edge from the initial state.
        let p = program(
            r#"level L {
                var x: uint32;
                void main() {
                    var i: uint32 := 0;
                    while (i < 5) { i := i + 1; }
                    x := i;
                    print(x);
                }
            }"#,
        );
        let bounds = Bounds::small();
        let pool = bounds.pool_for(&p);
        let initial = initial_state(&p).unwrap();
        let edges = macro_steps(&p, &initial, &pool, bounds.max_buffer, true);
        assert_eq!(edges.len(), 1, "one fused edge");
        let (macro_step, target) = &edges[0];
        assert!(
            macro_step.micro_len() > 5,
            "the whole local loop fuses: {} steps",
            macro_step.micro_len()
        );
        assert_eq!(macro_step.mids.len(), macro_step.micro_len() - 1);
        // The lean exploration path agrees on micro length and endpoint.
        let lean = Reducer::new(&p).successors(&initial, &pool, bounds.max_buffer, true);
        assert_eq!(lean, vec![(macro_step.micro_len(), target.clone())]);
        // With reduction off the same state has exactly one (singleton)
        // edge too — main is the only thread — but of length 1.
        let unfused = macro_steps(&p, &initial, &pool, bounds.max_buffer, false);
        assert!(unfused.iter().all(|(m, _)| m.micro_len() == 1));
    }

    #[test]
    fn shared_access_is_not_fused() {
        // `x := 1` writes a global: it must stay an interleaving point.
        let p = program("level L { var x: uint32; void main() { x := 1; } }");
        let bounds = Bounds::small();
        let pool = bounds.pool_for(&p);
        let initial = initial_state(&p).unwrap();
        let edges = macro_steps(&p, &initial, &pool, bounds.max_buffer, true);
        assert!(edges.iter().all(|(m, _)| m.micro_len() == 1));
    }

    #[test]
    fn local_cycle_abandons_reduction() {
        // A pure local spin: fusing it would starve the writer thread
        // forever. Reduction must fall back to full expansion so the
        // spinning state still interleaves everyone.
        let p = program(
            r#"level L {
                var stop: uint32;
                void main() {
                    var i: uint32 := 0;
                    while (i < 1) { i := i * 1; }
                    print(i);
                }
            }"#,
        );
        let bounds = Bounds::small();
        let pool = bounds.pool_for(&p);
        let initial = initial_state(&p).unwrap();
        let edges = macro_steps(&p, &initial, &pool, bounds.max_buffer, true);
        // The spin revisits states, so no macro edge may swallow it.
        assert!(
            edges.iter().all(|(m, _)| m.micro_len() == 1),
            "cycle must abandon fusion"
        );
    }

    #[test]
    fn failing_assert_is_not_fused_past() {
        // The assert's failure is observable; the fused run must stop
        // before it so the failing step stays interleaved.
        let p = program(
            r#"level L {
                void main() {
                    var i: uint32 := 0;
                    i := i + 1;
                    assert i == 2;
                }
            }"#,
        );
        let bounds = Bounds::small();
        let pool = bounds.pool_for(&p);
        let initial = initial_state(&p).unwrap();
        let edges = macro_steps(&p, &initial, &pool, bounds.max_buffer, true);
        assert_eq!(edges.len(), 1);
        let (macro_step, target) = &edges[0];
        // Fusion carries us up to (not through) the failing assert.
        assert_eq!(target.termination, Termination::Running);
        assert!(macro_step.micro_len() >= 1);
        // The next expansion exposes the failure as an unfused edge.
        let next_edges = macro_steps(&p, target, &pool, bounds.max_buffer, true);
        assert!(next_edges
            .iter()
            .any(|(_, s)| matches!(s.termination, Termination::AssertFailed(_))));
    }
}

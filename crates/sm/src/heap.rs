//! The forest-shaped heap model (§3.2.4).
//!
//! The heap is a forest of *pointable-to objects*: dynamically allocated
//! objects plus every global or local variable whose address is taken in the
//! program text. An array object has its elements as children; a struct
//! object has its fields as children. Pointers name a root object and a path
//! of child indices, so pointers to struct fields and array elements are
//! first-class.
//!
//! The forest is immutable in shape: allocation *finds* a fresh object and
//! marks it valid; `dealloc` marks it freed. Accessing (or comparing
//! against) a pointer into a freed object is undefined behavior, as is
//! pointer arithmetic or ordering across distinct arrays.

use armada_lang::ast::Type;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::value::{UbReason, Value};

/// Index of a heap object within the forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A pointer value: a root object plus a path of child indices (array
/// element or struct field positions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PtrVal {
    /// The root object.
    pub object: ObjectId,
    /// Child indices from the root to the pointee.
    pub path: Vec<u32>,
}

impl PtrVal {
    /// A pointer to the root of `object`.
    pub fn to_root(object: ObjectId) -> PtrVal {
        PtrVal {
            object,
            path: Vec::new(),
        }
    }

    /// The memory location this pointer designates.
    pub fn location(&self) -> Location {
        Location {
            object: self.object,
            path: self.path.clone(),
        }
    }
}

impl fmt::Display for PtrVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.object)?;
        for seg in &self.path {
            write!(f, ".{seg}")?;
        }
        Ok(())
    }
}

/// A shared-memory location: the unit of store-buffer entries and of effect
/// analysis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The root object.
    pub object: ObjectId,
    /// Child indices from the root.
    pub path: Vec<u32>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.object)?;
        for seg in &self.path {
            write!(f, ".{seg}")?;
        }
        Ok(())
    }
}

/// A memory tree: primitive leaf, array of children, or struct of fields
/// (field order follows the struct declaration; names are kept so the
/// evaluator can resolve `e.field` to a child index from the node alone).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemNode {
    /// A primitive (or ghost) value.
    Leaf(Value),
    /// An array; children are the elements.
    Array(Vec<MemNode>),
    /// A struct; children are the named fields in declaration order.
    Struct(Vec<(String, MemNode)>),
}

impl MemNode {
    /// Builds the zero-initialized layout of `ty`, resolving struct names
    /// through `structs`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` mentions a struct absent from `structs`; the type
    /// checker guarantees this cannot happen for checked programs.
    pub fn zero(ty: &Type, structs: &BTreeMap<String, Vec<(String, Type)>>) -> MemNode {
        match ty {
            Type::Array(elem, len) => {
                MemNode::Array((0..*len).map(|_| MemNode::zero(elem, structs)).collect())
            }
            Type::Named(name) => {
                let fields = structs
                    .get(name)
                    .unwrap_or_else(|| panic!("unknown struct `{name}` in layout"));
                MemNode::Struct(
                    fields
                        .iter()
                        .map(|(field, t)| (field.clone(), MemNode::zero(t, structs)))
                        .collect(),
                )
            }
            other => MemNode::Leaf(Value::zero_of(other).expect("primitive type has a zero")),
        }
    }

    /// Navigates to the node at `path`.
    pub fn descend(&self, path: &[u32]) -> Result<&MemNode, UbReason> {
        let mut node = self;
        for &seg in path {
            node = match node {
                MemNode::Array(children) => {
                    children.get(seg as usize).ok_or(UbReason::OutOfBounds)?
                }
                MemNode::Struct(fields) => {
                    &fields.get(seg as usize).ok_or(UbReason::OutOfBounds)?.1
                }
                MemNode::Leaf(_) => return Err(UbReason::OutOfBounds),
            };
        }
        Ok(node)
    }

    /// Navigates mutably to the node at `path`.
    pub fn descend_mut(&mut self, path: &[u32]) -> Result<&mut MemNode, UbReason> {
        let mut node = self;
        for &seg in path {
            node = match node {
                MemNode::Array(children) => children
                    .get_mut(seg as usize)
                    .ok_or(UbReason::OutOfBounds)?,
                MemNode::Struct(fields) => {
                    &mut fields.get_mut(seg as usize).ok_or(UbReason::OutOfBounds)?.1
                }
                MemNode::Leaf(_) => return Err(UbReason::OutOfBounds),
            };
        }
        Ok(node)
    }

    /// Resolves a struct field name to its child index at this node.
    pub fn field_index(&self, name: &str) -> Option<u32> {
        match self {
            MemNode::Struct(fields) => fields
                .iter()
                .position(|(field, _)| field == name)
                .map(|i| i as u32),
            _ => None,
        }
    }

    /// The primitive value at this node, if it is a leaf.
    pub fn as_leaf(&self) -> Option<&Value> {
        match self {
            MemNode::Leaf(value) => Some(value),
            _ => None,
        }
    }
}

/// Whether an object is live or has been freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AllocStatus {
    /// The object is live.
    Valid,
    /// The object has been deallocated; any access through it is UB.
    Freed,
}

/// How an object came to exist, which controls whether `dealloc` may free it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RootKind {
    /// Backing storage of a global or an address-taken local. Never
    /// deallocated by `dealloc`; locals are freed at frame exit.
    Static,
    /// A `malloc` allocation (dealloc expects a pointer to the root).
    Malloc,
    /// A `calloc` allocation (dealloc expects a pointer to element 0).
    Calloc,
}

/// One object of the heap forest.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapObject {
    /// The object's memory tree.
    pub node: MemNode,
    /// Live or freed.
    pub status: AllocStatus,
    /// Provenance.
    pub kind: RootKind,
}

/// The heap forest. Object ids are assigned in allocation order, which keeps
/// the semantics deterministic given a step sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Heap {
    /// Objects are individually `Arc`-shared so cloning a state for one
    /// step shares every object the step does not write (copy-on-write via
    /// [`Arc::make_mut`]): a heap clone is one `Vec` allocation plus a
    /// refcount bump per object instead of a deep tree copy.
    objects: Vec<Arc<HeapObject>>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of objects ever allocated (live and freed).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no object was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates a new object and returns its id.
    pub fn alloc(&mut self, node: MemNode, kind: RootKind) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(Arc::new(HeapObject {
            node,
            status: AllocStatus::Valid,
            kind,
        }));
        id
    }

    /// The object with the given id, if it exists.
    pub fn object(&self, id: ObjectId) -> Option<&HeapObject> {
        self.objects.get(id.0 as usize).map(Arc::as_ref)
    }

    /// True if the object exists and is live.
    pub fn is_valid(&self, id: ObjectId) -> bool {
        matches!(self.object(id), Some(obj) if obj.status == AllocStatus::Valid)
    }

    /// Reads the memory node at `loc`.
    ///
    /// # Errors
    ///
    /// [`UbReason::FreedAccess`] if the object is freed or unknown;
    /// [`UbReason::OutOfBounds`] if the path does not exist.
    pub fn read(&self, loc: &Location) -> Result<&MemNode, UbReason> {
        let obj = self.object(loc.object).ok_or(UbReason::FreedAccess)?;
        if obj.status == AllocStatus::Freed {
            return Err(UbReason::FreedAccess);
        }
        obj.node.descend(&loc.path)
    }

    /// Writes the memory node at `loc`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Heap::read`].
    pub fn write(&mut self, loc: &Location, node: MemNode) -> Result<(), UbReason> {
        let obj = self
            .objects
            .get_mut(loc.object.0 as usize)
            .ok_or(UbReason::FreedAccess)?;
        if obj.status == AllocStatus::Freed {
            return Err(UbReason::FreedAccess);
        }
        // Validate the path against the shared object first: make_mut
        // unshares (deep-copies) the object, so don't pay that on a write
        // that turns out to be out of bounds.
        obj.node.descend(&loc.path)?;
        *Arc::make_mut(obj).node.descend_mut(&loc.path)? = node;
        Ok(())
    }

    /// Writes a primitive value at `loc`, which must designate a leaf.
    pub fn write_leaf(&mut self, loc: &Location, value: Value) -> Result<(), UbReason> {
        self.write(loc, MemNode::Leaf(value))
    }

    /// Frees the allocation designated by `ptr` (§3.2.4: freeing marks all
    /// the object's pointers freed).
    ///
    /// # Errors
    ///
    /// [`UbReason::InvalidDealloc`] unless `ptr` is the root of a live
    /// `malloc` allocation or element 0 of a live `calloc` allocation.
    pub fn dealloc(&mut self, ptr: &PtrVal) -> Result<(), UbReason> {
        let obj = self
            .objects
            .get_mut(ptr.object.0 as usize)
            .ok_or(UbReason::InvalidDealloc)?;
        if obj.status == AllocStatus::Freed {
            return Err(UbReason::FreedAccess);
        }
        let root_ok = match obj.kind {
            RootKind::Malloc => ptr.path.is_empty(),
            RootKind::Calloc => ptr.path == [0],
            RootKind::Static => false,
        };
        if !root_ok {
            return Err(UbReason::InvalidDealloc);
        }
        Arc::make_mut(obj).status = AllocStatus::Freed;
        Ok(())
    }

    /// Consumes the heap into its object list, in id order. Paired with
    /// [`Heap::from_objects`] by symmetry canonicalization, which permutes
    /// dynamic object ids (see `crate::canon`).
    pub fn into_objects(self) -> Vec<Arc<HeapObject>> {
        self.objects
    }

    /// Rebuilds a heap from an object list; the index of each entry becomes
    /// its [`ObjectId`]. The caller is responsible for having rewritten any
    /// pointers consistently with the new numbering.
    pub fn from_objects(objects: Vec<Arc<HeapObject>>) -> Heap {
        Heap { objects }
    }

    /// Marks an object freed without dealloc rules; used for address-taken
    /// locals at frame exit.
    pub fn free_static(&mut self, id: ObjectId) {
        if let Some(obj) = self.objects.get_mut(id.0 as usize) {
            Arc::make_mut(obj).status = AllocStatus::Freed;
        }
    }

    /// Pointer arithmetic `ptr + offset` within a single array (§3.2.4).
    /// One-past-the-end pointers are representable (for comparisons) but
    /// dereferencing them fails the bounds check in [`Heap::read`].
    ///
    /// # Errors
    ///
    /// [`UbReason::FreedAccess`] on freed objects,
    /// [`UbReason::CrossArrayPointerOp`] if the pointee is not an array
    /// element, [`UbReason::OutOfBounds`] if the result strays outside
    /// `0..=len`.
    pub fn ptr_add(&self, ptr: &PtrVal, offset: i128) -> Result<PtrVal, UbReason> {
        let obj = self.object(ptr.object).ok_or(UbReason::FreedAccess)?;
        if obj.status == AllocStatus::Freed {
            return Err(UbReason::FreedAccess);
        }
        let (parent_path, last) = match ptr.path.split_last() {
            Some((last, init)) => (init, *last),
            None => return Err(UbReason::CrossArrayPointerOp),
        };
        let parent = obj.node.descend(parent_path)?;
        let len = match parent {
            MemNode::Array(children) => children.len() as i128,
            _ => return Err(UbReason::CrossArrayPointerOp),
        };
        let new_index = last as i128 + offset;
        if new_index < 0 || new_index > len {
            return Err(UbReason::OutOfBounds);
        }
        let mut path = parent_path.to_vec();
        path.push(new_index as u32);
        Ok(PtrVal {
            object: ptr.object,
            path,
        })
    }

    /// Pointer subtraction `p - q`, defined only for elements of the same
    /// array.
    pub fn ptr_diff(&self, p: &PtrVal, q: &PtrVal) -> Result<i128, UbReason> {
        self.check_same_array(p, q)?;
        let (pi, qi) = (
            *p.path.last().expect("checked") as i128,
            *q.path.last().expect("checked") as i128,
        );
        Ok(pi - qi)
    }

    /// Pointer ordering `p < q` etc., defined only within a single array.
    pub fn ptr_order(&self, p: &PtrVal, q: &PtrVal) -> Result<std::cmp::Ordering, UbReason> {
        self.check_same_array(p, q)?;
        Ok(p.path.last().cmp(&q.path.last()))
    }

    /// Pointer equality. Comparing against a pointer into freed memory is UB
    /// (§3.2.4); `null` compares fine with anything.
    pub fn ptr_eq(&self, p: &Option<PtrVal>, q: &Option<PtrVal>) -> Result<bool, UbReason> {
        for side in [p, q].into_iter().flatten() {
            if !self.is_valid(side.object) {
                return Err(UbReason::FreedAccess);
            }
        }
        Ok(p == q)
    }

    fn check_same_array(&self, p: &PtrVal, q: &PtrVal) -> Result<(), UbReason> {
        for side in [p, q] {
            if !self.is_valid(side.object) {
                return Err(UbReason::FreedAccess);
            }
        }
        if p.object != q.object
            || p.path.is_empty()
            || q.path.is_empty()
            || p.path[..p.path.len() - 1] != q.path[..q.path.len() - 1]
        {
            return Err(UbReason::CrossArrayPointerOp);
        }
        // The shared parent must actually be an array, not a struct.
        let obj = self.object(p.object).ok_or(UbReason::FreedAccess)?;
        match obj.node.descend(&p.path[..p.path.len() - 1])? {
            MemNode::Array(_) => Ok(()),
            _ => Err(UbReason::CrossArrayPointerOp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::ast::IntType;

    fn u32v(v: i128) -> Value {
        Value::int(IntType::U32, v)
    }

    fn array_heap() -> (Heap, ObjectId) {
        let mut heap = Heap::new();
        let node = MemNode::Array((0..4).map(|i| MemNode::Leaf(u32v(i))).collect());
        let id = heap.alloc(node, RootKind::Calloc);
        (heap, id)
    }

    #[test]
    fn read_write_through_paths() {
        let (mut heap, id) = array_heap();
        let loc = Location {
            object: id,
            path: vec![2],
        };
        assert_eq!(heap.read(&loc).unwrap().as_leaf(), Some(&u32v(2)));
        heap.write_leaf(&loc, u32v(99)).unwrap();
        assert_eq!(heap.read(&loc).unwrap().as_leaf(), Some(&u32v(99)));
    }

    #[test]
    fn out_of_bounds_path_is_ub() {
        let (heap, id) = array_heap();
        let loc = Location {
            object: id,
            path: vec![9],
        };
        assert_eq!(heap.read(&loc), Err(UbReason::OutOfBounds));
    }

    #[test]
    fn freed_access_is_ub() {
        let (mut heap, id) = array_heap();
        heap.dealloc(&PtrVal {
            object: id,
            path: vec![0],
        })
        .unwrap();
        let loc = Location {
            object: id,
            path: vec![1],
        };
        assert_eq!(heap.read(&loc), Err(UbReason::FreedAccess));
        assert_eq!(heap.write_leaf(&loc, u32v(0)), Err(UbReason::FreedAccess));
    }

    #[test]
    fn dealloc_rules() {
        let mut heap = Heap::new();
        let malloc_id = heap.alloc(MemNode::Leaf(u32v(0)), RootKind::Malloc);
        let static_id = heap.alloc(MemNode::Leaf(u32v(0)), RootKind::Static);
        // malloc: pointer to root required.
        assert!(heap.dealloc(&PtrVal::to_root(malloc_id)).is_ok());
        // double free is UB.
        assert_eq!(
            heap.dealloc(&PtrVal::to_root(malloc_id)),
            Err(UbReason::FreedAccess)
        );
        // statics cannot be deallocated.
        assert_eq!(
            heap.dealloc(&PtrVal::to_root(static_id)),
            Err(UbReason::InvalidDealloc)
        );
    }

    #[test]
    fn pointer_arithmetic_stays_in_array() {
        let (heap, id) = array_heap();
        let base = PtrVal {
            object: id,
            path: vec![0],
        };
        let third = heap.ptr_add(&base, 3).unwrap();
        assert_eq!(third.path, vec![3]);
        // one-past-the-end is representable…
        let end = heap.ptr_add(&base, 4).unwrap();
        // …but not dereferenceable.
        assert_eq!(heap.read(&end.location()), Err(UbReason::OutOfBounds));
        // beyond that is UB immediately.
        assert_eq!(heap.ptr_add(&base, 5), Err(UbReason::OutOfBounds));
        assert_eq!(heap.ptr_add(&base, -1), Err(UbReason::OutOfBounds));
    }

    #[test]
    fn cross_array_comparison_is_ub() {
        let (mut heap, a) = array_heap();
        let node = MemNode::Array((0..4).map(|_| MemNode::Leaf(u32v(0))).collect());
        let b = heap.alloc(node, RootKind::Calloc);
        let pa = PtrVal {
            object: a,
            path: vec![1],
        };
        let pb = PtrVal {
            object: b,
            path: vec![1],
        };
        assert_eq!(heap.ptr_order(&pa, &pb), Err(UbReason::CrossArrayPointerOp));
        assert_eq!(heap.ptr_diff(&pa, &pb), Err(UbReason::CrossArrayPointerOp));
        assert_eq!(
            heap.ptr_order(
                &pa,
                &PtrVal {
                    object: a,
                    path: vec![3]
                }
            ),
            Ok(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn equality_with_freed_pointer_is_ub() {
        let (mut heap, id) = array_heap();
        let p = PtrVal {
            object: id,
            path: vec![0],
        };
        assert_eq!(heap.ptr_eq(&Some(p.clone()), &None), Ok(false));
        heap.dealloc(&p).unwrap();
        assert_eq!(heap.ptr_eq(&Some(p), &None), Err(UbReason::FreedAccess));
    }

    #[test]
    fn struct_layout_zeroes() {
        let mut structs = BTreeMap::new();
        structs.insert(
            "S".to_string(),
            vec![
                ("a".to_string(), Type::Int(IntType::U32)),
                ("b".to_string(), Type::array(Type::Bool, 2)),
            ],
        );
        let node = MemNode::zero(&Type::Named("S".into()), &structs);
        match node {
            MemNode::Struct(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "a");
                assert_eq!(fields[0].1.as_leaf(), Some(&u32v(0)));
                assert!(matches!(&fields[1].1, MemNode::Array(a) if a.len() == 2));
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn ptr_order_requires_array_parent_not_struct() {
        let mut structs = BTreeMap::new();
        structs.insert(
            "S".to_string(),
            vec![
                ("a".to_string(), Type::Int(IntType::U32)),
                ("b".to_string(), Type::Int(IntType::U32)),
            ],
        );
        let mut heap = Heap::new();
        let id = heap.alloc(
            MemNode::zero(&Type::Named("S".into()), &structs),
            RootKind::Malloc,
        );
        let pa = PtrVal {
            object: id,
            path: vec![0],
        };
        let pb = PtrVal {
            object: id,
            path: vec![1],
        };
        assert_eq!(heap.ptr_order(&pa, &pb), Err(UbReason::CrossArrayPointerOp));
    }
}

//! The lowered program representation.
//!
//! Each level is compiled to a [`Program`]: a set of [`Routine`]s whose
//! bodies are flat lists of micro-instructions ([`Instr`]), with structured
//! control flow lowered to guarded branches. A program counter ([`Pc`])
//! names a routine and an instruction index.
//!
//! The semantics are *program-specific* in the paper's sense (§3.2.2): the
//! possible steps of a state machine are exactly "thread t executes the
//! instruction at its PC" (plus store-buffer drains), and each instruction
//! carries the concrete lvalues and rvalues of its source statement.

use armada_lang::ast::{Expr, FunctionDecl, Type};
use std::collections::BTreeMap;
use std::fmt;

/// A program counter: routine index plus instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc {
    /// Index into [`Program::routines`].
    pub routine: u32,
    /// Index into [`Routine::instrs`].
    pub instr: u32,
}

impl Pc {
    /// Creates a program counter.
    pub fn new(routine: u32, instr: u32) -> Pc {
        Pc { routine, instr }
    }

    /// The next instruction in the same routine.
    pub fn next(self) -> Pc {
        Pc {
            routine: self.routine,
            instr: self.instr + 1,
        }
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}:{}", self.routine, self.instr)
    }
}

/// A non-ghost global variable. Its backing storage is heap object number
/// `index-in-this-list`, allocated by [`crate::state::initial_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Constant initializer, if any (zero otherwise).
    pub init: Option<Expr>,
}

/// A ghost global variable, stored sequentially consistently outside the
/// heap (§3.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct GhostDef {
    /// Variable name.
    pub name: String,
    /// Type (any ghost type).
    pub ty: Type,
    /// Constant initializer, if any.
    pub init: Option<Expr>,
}

/// A routine-local variable (parameters come first).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDef {
    /// Variable name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Whether the variable is ghost.
    pub ghost: bool,
    /// Whether the program text takes its address, forcing it to live in the
    /// heap forest (§3.2.4).
    pub addr_taken: bool,
}

/// A micro-instruction; executing one is a single state-machine step.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Multi-assignment. `sc` selects TSO-bypassing (`::=`) semantics.
    Assign {
        /// Lvalue targets.
        lhs: Vec<Expr>,
        /// Value expressions, one per target.
        rhs: Vec<Expr>,
        /// `true` for sequentially consistent (`::=`) stores.
        sc: bool,
    },
    /// `into := malloc(T)`.
    Malloc {
        /// Lvalue receiving the pointer.
        into: Expr,
        /// Allocated type.
        ty: Type,
    },
    /// `into := calloc(T, count)`.
    Calloc {
        /// Lvalue receiving the pointer to element 0.
        into: Expr,
        /// Element type.
        ty: Type,
        /// Element count.
        count: Expr,
    },
    /// `into := create_thread r(args)` (or bare `create_thread`).
    CreateThread {
        /// Lvalue receiving the new thread's id, if any.
        into: Option<Expr>,
        /// Routine index the thread runs.
        routine: u32,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call. Evaluates arguments, pushes a frame.
    Call {
        /// Callee routine index.
        routine: u32,
        /// Arguments.
        args: Vec<Expr>,
        /// Lvalue receiving the return value, if any.
        into: Option<Expr>,
    },
    /// Return from the current routine.
    Ret {
        /// Returned value, if the routine is non-void.
        value: Option<Expr>,
    },
    /// Conditional branch: evaluating the guard is itself a step.
    Guard {
        /// The condition.
        cond: Expr,
        /// Target when true.
        then_pc: u32,
        /// Target when false.
        else_pc: u32,
    },
    /// Unconditional jump.
    Jump(u32),
    /// `assert e;` — false crashes the program (terminating state).
    Assert(Expr),
    /// `assume e;` — enablement condition: the step only exists when true.
    Assume(Expr),
    /// Declarative atomic action (§3.1.2). Undefined behavior if a
    /// `requires` fails; havocs the `modifies` lvalues subject to `ensures`.
    Somehow {
        /// Preconditions.
        requires: Vec<Expr>,
        /// Havocked lvalues.
        modifies: Vec<Expr>,
        /// Two-state postconditions.
        ensures: Vec<Expr>,
    },
    /// `dealloc e;`.
    Dealloc(Expr),
    /// `join e;` — enabled only once the target thread has exited.
    Join(Expr),
    /// Appends values to the observable event log.
    Print(Vec<Expr>),
    /// Drains the executing thread's store buffer completely.
    Fence,
    /// Enter an atomic region. `explicit` marks `explicit_yield` blocks,
    /// which are interruptible at [`Instr::YieldPoint`]s.
    AtomicBegin {
        /// Whether the region came from `explicit_yield`.
        explicit: bool,
    },
    /// Leave an atomic region.
    AtomicEnd,
    /// A `yield;` marker inside an `explicit_yield` block: while a thread's
    /// PC rests here, other threads may interleave.
    YieldPoint,
    /// No effect; used for labels and empty declarations.
    Noop,
}

impl Instr {
    /// A one-line rendering used in diagnostics and generated proof text.
    pub fn describe(&self) -> String {
        use armada_lang::pretty::expr_to_string;
        match self {
            Instr::Assign { lhs, rhs, sc } => {
                let op = if *sc { "::=" } else { ":=" };
                format!(
                    "{} {op} {}",
                    lhs.iter()
                        .map(expr_to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    rhs.iter()
                        .map(expr_to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Instr::Malloc { into, ty } => {
                format!("{} := malloc({ty})", expr_to_string(into))
            }
            Instr::Calloc { into, ty, count } => {
                format!(
                    "{} := calloc({ty}, {})",
                    expr_to_string(into),
                    expr_to_string(count)
                )
            }
            Instr::CreateThread { routine, .. } => format!("create_thread r{routine}"),
            Instr::Call { routine, .. } => format!("call r{routine}"),
            Instr::Ret { .. } => "return".to_string(),
            Instr::Guard {
                cond,
                then_pc,
                else_pc,
            } => {
                format!("if {} goto {then_pc} else {else_pc}", expr_to_string(cond))
            }
            Instr::Jump(target) => format!("goto {target}"),
            Instr::Assert(cond) => format!("assert {}", expr_to_string(cond)),
            Instr::Assume(cond) => format!("assume {}", expr_to_string(cond)),
            Instr::Somehow { .. } => "somehow".to_string(),
            Instr::Dealloc(target) => format!("dealloc {}", expr_to_string(target)),
            Instr::Join(handle) => format!("join {}", expr_to_string(handle)),
            Instr::Print(_) => "print".to_string(),
            Instr::Fence => "fence".to_string(),
            Instr::AtomicBegin { explicit: true } => "explicit_yield {".to_string(),
            Instr::AtomicBegin { explicit: false } => "atomic {".to_string(),
            Instr::AtomicEnd => "}".to_string(),
            Instr::YieldPoint => "yield".to_string(),
            Instr::Noop => "noop".to_string(),
        }
    }
}

/// A lowered routine.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    /// Source method name.
    pub name: String,
    /// Number of leading locals that are parameters.
    pub param_count: usize,
    /// All locals, parameters first.
    pub locals: Vec<LocalDef>,
    /// The instruction list; control falls off the end only via `Ret`
    /// (lowering appends one).
    pub instrs: Vec<Instr>,
    /// Return type (`None` = void).
    pub ret_ty: Option<Type>,
    /// Whether the source method was `{:extern}`.
    pub external: bool,
}

impl Routine {
    /// Resolves a local name to its slot.
    pub fn local_slot(&self, name: &str) -> Option<usize> {
        self.locals.iter().position(|l| l.name == name)
    }
}

/// A complete lowered program (one level).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Level name.
    pub name: String,
    /// Struct name → ordered fields.
    pub structs: BTreeMap<String, Vec<(String, Type)>>,
    /// Non-ghost globals; global *i* is heap object *i*.
    pub globals: Vec<GlobalDef>,
    /// Ghost globals, in ghost-slot order.
    pub ghosts: Vec<GhostDef>,
    /// Ghost pure functions by name.
    pub functions: BTreeMap<String, FunctionDecl>,
    /// All routines.
    pub routines: Vec<Routine>,
    /// Index of `main` in `routines`.
    pub main: u32,
}

impl Program {
    /// Resolves a routine name to its index.
    pub fn routine_index(&self, name: &str) -> Option<u32> {
        self.routines
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as u32)
    }

    /// Resolves a non-ghost global name to its index (= heap object id).
    pub fn global_index(&self, name: &str) -> Option<u32> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| i as u32)
    }

    /// Resolves a ghost global name to its slot.
    pub fn ghost_index(&self, name: &str) -> Option<u32> {
        self.ghosts
            .iter()
            .position(|g| g.name == name)
            .map(|i| i as u32)
    }

    /// The instruction at `pc`, if it exists.
    pub fn instr_at(&self, pc: Pc) -> Option<&Instr> {
        self.routines
            .get(pc.routine as usize)?
            .instrs
            .get(pc.instr as usize)
    }

    /// Renders the whole program as an instruction listing, used in
    /// diagnostics and generated proof artifacts.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (ri, routine) in self.routines.iter().enumerate() {
            out.push_str(&format!("routine r{ri} {} {{\n", routine.name));
            for (ii, instr) in routine.instrs.iter().enumerate() {
                out.push_str(&format!("  {ii:3}: {}\n", instr.describe()));
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_ordering_and_next() {
        let a = Pc::new(0, 3);
        assert_eq!(a.next(), Pc::new(0, 4));
        assert!(Pc::new(0, 3) < Pc::new(1, 0));
        assert_eq!(a.to_string(), "r0:3");
    }
}

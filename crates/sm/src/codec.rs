//! Binary codec for program states, steps, and the spill/checkpoint file
//! discipline.
//!
//! States that spill to disk or land in a checkpoint must round-trip
//! *exactly*: the decoded [`ProgState`] compares equal to the original and
//! hashes to the same arena fingerprint, so a faulted page or resumed run
//! can never diverge from an uninterrupted one. The format is a
//! hand-rolled length-prefixed tag encoding (the workspace takes no
//! external dependencies, so no serde); it is a cache/checkpoint format,
//! not an interchange format — both ends are always the same build.
//!
//! File-level durability reuses the discipline proven in
//! `armada-verify::store`: writes go to a same-directory temp file and
//! `rename` into place, and every file carries a trailing FNV-1a checksum
//! over its payload. [`read_verified`] returns exactly what a completed
//! [`write_atomic`] wrote, or an error — never a torn or corrupted prefix.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use armada_lang::ast::IntType;

use crate::heap::{AllocStatus, Heap, HeapObject, Location, MemNode, ObjectId, PtrVal, RootKind};
use crate::program::Pc;
use crate::state::{
    BufferedWrite, Frame, LocalCell, ProgState, Termination, ThreadState, ThreadStatus,
};
use crate::step::{Step, StepKind};
use crate::value::{UbReason, Value};

/// 64-bit FNV-1a over a byte slice — the same checksum `armada-verify`'s
/// cert store uses, reimplemented here so `armada-sm` stays dependency-free.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Decode failure: what went wrong and (roughly) where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type DecResult<T> = Result<T, CodecError>;

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed usize (stored as u64).
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn str(&mut self, v: &str) {
        self.len_of(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.len_of(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// True once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CodecError(format!("truncated at byte {}", self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("bad bool byte {other}"))),
        }
    }

    pub fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i128(&mut self) -> DecResult<i128> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn len_of(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        // Cap implausible lengths so a corrupt prefix cannot trigger a huge
        // allocation before the checksum would have caught it.
        if v > (1u64 << 40) {
            return Err(CodecError(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    pub fn str(&mut self) -> DecResult<String> {
        let n = self.len_of()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError("bad utf-8".into()))
    }

    pub fn bytes(&mut self) -> DecResult<Vec<u8>> {
        let n = self.len_of()?;
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Value / heap codecs
// ---------------------------------------------------------------------------

fn enc_int_type(e: &mut Enc, ty: &IntType) {
    e.bool(ty.signed);
    e.u8(ty.bits);
}

fn dec_int_type(d: &mut Dec) -> DecResult<IntType> {
    let signed = d.bool()?;
    let bits = d.u8()?;
    if !matches!(bits, 8 | 16 | 32 | 64) {
        return Err(CodecError(format!("bad int width {bits}")));
    }
    Ok(IntType { signed, bits })
}

fn enc_ptr_val(e: &mut Enc, p: &PtrVal) {
    e.u32(p.object.0);
    e.len_of(p.path.len());
    for &seg in &p.path {
        e.u32(seg);
    }
}

fn dec_ptr_val(d: &mut Dec) -> DecResult<PtrVal> {
    let object = ObjectId(d.u32()?);
    let n = d.len_of()?;
    let mut path = Vec::with_capacity(n);
    for _ in 0..n {
        path.push(d.u32()?);
    }
    Ok(PtrVal { object, path })
}

fn enc_location(e: &mut Enc, l: &Location) {
    e.u32(l.object.0);
    e.len_of(l.path.len());
    for &seg in &l.path {
        e.u32(seg);
    }
}

fn dec_location(d: &mut Dec) -> DecResult<Location> {
    let object = ObjectId(d.u32()?);
    let n = d.len_of()?;
    let mut path = Vec::with_capacity(n);
    for _ in 0..n {
        path.push(d.u32()?);
    }
    Ok(Location { object, path })
}

pub fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Int { ty, val } => {
            e.u8(0);
            enc_int_type(e, ty);
            e.i128(*val);
        }
        Value::MathInt(val) => {
            e.u8(1);
            e.i128(*val);
        }
        Value::Bool(b) => {
            e.u8(2);
            e.bool(*b);
        }
        Value::Ptr(p) => {
            e.u8(3);
            match p {
                None => e.bool(false),
                Some(ptr) => {
                    e.bool(true);
                    enc_ptr_val(e, ptr);
                }
            }
        }
        Value::Seq(elems) => {
            e.u8(4);
            e.len_of(elems.len());
            for elem in elems {
                enc_value(e, elem);
            }
        }
        Value::Set(elems) => {
            e.u8(5);
            e.len_of(elems.len());
            for elem in elems {
                enc_value(e, elem);
            }
        }
        Value::Map(entries) => {
            e.u8(6);
            e.len_of(entries.len());
            for (k, val) in entries {
                enc_value(e, k);
                enc_value(e, val);
            }
        }
        Value::Opt(inner) => {
            e.u8(7);
            match inner {
                None => e.bool(false),
                Some(boxed) => {
                    e.bool(true);
                    enc_value(e, boxed);
                }
            }
        }
    }
}

pub fn dec_value(d: &mut Dec) -> DecResult<Value> {
    Ok(match d.u8()? {
        0 => {
            let ty = dec_int_type(d)?;
            let val = d.i128()?;
            Value::Int { ty, val }
        }
        1 => Value::MathInt(d.i128()?),
        2 => Value::Bool(d.bool()?),
        3 => Value::Ptr(if d.bool()? {
            Some(dec_ptr_val(d)?)
        } else {
            None
        }),
        4 => {
            let n = d.len_of()?;
            let mut elems = Vec::with_capacity(n);
            for _ in 0..n {
                elems.push(dec_value(d)?);
            }
            Value::Seq(elems)
        }
        5 => {
            let n = d.len_of()?;
            let mut elems = BTreeSet::new();
            for _ in 0..n {
                elems.insert(dec_value(d)?);
            }
            Value::Set(elems)
        }
        6 => {
            let n = d.len_of()?;
            let mut entries = BTreeMap::new();
            for _ in 0..n {
                let k = dec_value(d)?;
                let v = dec_value(d)?;
                entries.insert(k, v);
            }
            Value::Map(entries)
        }
        7 => Value::Opt(if d.bool()? {
            Some(Box::new(dec_value(d)?))
        } else {
            None
        }),
        tag => return Err(CodecError(format!("bad value tag {tag}"))),
    })
}

fn enc_mem_node(e: &mut Enc, n: &MemNode) {
    match n {
        MemNode::Leaf(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        MemNode::Array(children) => {
            e.u8(1);
            e.len_of(children.len());
            for child in children {
                enc_mem_node(e, child);
            }
        }
        MemNode::Struct(fields) => {
            e.u8(2);
            e.len_of(fields.len());
            for (name, child) in fields {
                e.str(name);
                enc_mem_node(e, child);
            }
        }
    }
}

fn dec_mem_node(d: &mut Dec) -> DecResult<MemNode> {
    Ok(match d.u8()? {
        0 => MemNode::Leaf(dec_value(d)?),
        1 => {
            let n = d.len_of()?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(dec_mem_node(d)?);
            }
            MemNode::Array(children)
        }
        2 => {
            let n = d.len_of()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str()?;
                fields.push((name, dec_mem_node(d)?));
            }
            MemNode::Struct(fields)
        }
        tag => return Err(CodecError(format!("bad memnode tag {tag}"))),
    })
}

const UB_REASONS: [UbReason; 11] = [
    UbReason::NullDereference,
    UbReason::FreedAccess,
    UbReason::OutOfBounds,
    UbReason::DivisionByZero,
    UbReason::InvalidShift,
    UbReason::CrossArrayPointerOp,
    UbReason::RequiresViolated,
    UbReason::GhostPartialOperation,
    UbReason::InvalidJoin,
    UbReason::InvalidDealloc,
    UbReason::MathOverflow,
];

fn enc_ub_reason(e: &mut Enc, r: &UbReason) {
    let tag = UB_REASONS
        .iter()
        .position(|candidate| candidate == r)
        .expect("every UbReason is in the table") as u8;
    e.u8(tag);
}

fn dec_ub_reason(d: &mut Dec) -> DecResult<UbReason> {
    let tag = d.u8()? as usize;
    UB_REASONS
        .get(tag)
        .cloned()
        .ok_or_else(|| CodecError(format!("bad ub tag {tag}")))
}

fn enc_pc(e: &mut Enc, pc: &Pc) {
    e.u32(pc.routine);
    e.u32(pc.instr);
}

fn dec_pc(d: &mut Dec) -> DecResult<Pc> {
    Ok(Pc {
        routine: d.u32()?,
        instr: d.u32()?,
    })
}

fn enc_termination(e: &mut Enc, t: &Termination) {
    match t {
        Termination::Running => e.u8(0),
        Termination::Exited => e.u8(1),
        Termination::AssertFailed(pc) => {
            e.u8(2);
            enc_pc(e, pc);
        }
        Termination::UndefinedBehavior(reason) => {
            e.u8(3);
            enc_ub_reason(e, reason);
        }
    }
}

fn dec_termination(d: &mut Dec) -> DecResult<Termination> {
    Ok(match d.u8()? {
        0 => Termination::Running,
        1 => Termination::Exited,
        2 => Termination::AssertFailed(dec_pc(d)?),
        3 => Termination::UndefinedBehavior(dec_ub_reason(d)?),
        tag => return Err(CodecError(format!("bad termination tag {tag}"))),
    })
}

fn enc_frame(e: &mut Enc, f: &Frame) {
    e.u32(f.routine);
    e.len_of(f.locals.len());
    for local in &f.locals {
        match local {
            LocalCell::Val(node) => {
                e.u8(0);
                enc_mem_node(e, node);
            }
            LocalCell::Obj(id) => {
                e.u8(1);
                e.u32(id.0);
            }
        }
    }
    match &f.call_pc {
        None => e.bool(false),
        Some(pc) => {
            e.bool(true);
            enc_pc(e, pc);
        }
    }
}

fn dec_frame(d: &mut Dec) -> DecResult<Frame> {
    let routine = d.u32()?;
    let n = d.len_of()?;
    let mut locals = Vec::with_capacity(n);
    for _ in 0..n {
        locals.push(match d.u8()? {
            0 => LocalCell::Val(dec_mem_node(d)?),
            1 => LocalCell::Obj(ObjectId(d.u32()?)),
            tag => return Err(CodecError(format!("bad local tag {tag}"))),
        });
    }
    let call_pc = if d.bool()? { Some(dec_pc(d)?) } else { None };
    Ok(Frame {
        routine,
        locals,
        call_pc,
    })
}

fn enc_thread(e: &mut Enc, t: &ThreadState) {
    enc_pc(e, &t.pc);
    e.len_of(t.frames.len());
    for frame in &t.frames {
        enc_frame(e, frame);
    }
    e.len_of(t.buffer.len());
    for write in &t.buffer {
        enc_location(e, &write.loc);
        enc_value(e, &write.value);
    }
    e.u32(t.atomic_depth);
    e.u8(match t.status {
        ThreadStatus::Active => 0,
        ThreadStatus::Exited => 1,
    });
}

fn dec_thread(d: &mut Dec) -> DecResult<ThreadState> {
    let pc = dec_pc(d)?;
    let nframes = d.len_of()?;
    let mut frames = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        frames.push(Arc::new(dec_frame(d)?));
    }
    let nbuf = d.len_of()?;
    let mut buffer = VecDeque::with_capacity(nbuf);
    for _ in 0..nbuf {
        let loc = dec_location(d)?;
        let value = dec_value(d)?;
        buffer.push_back(BufferedWrite { loc, value });
    }
    let atomic_depth = d.u32()?;
    let status = match d.u8()? {
        0 => ThreadStatus::Active,
        1 => ThreadStatus::Exited,
        tag => return Err(CodecError(format!("bad thread status {tag}"))),
    };
    Ok(ThreadState {
        pc,
        frames,
        buffer,
        atomic_depth,
        status,
    })
}

fn enc_heap(e: &mut Enc, heap: &Heap) {
    e.len_of(heap.len());
    for i in 0..heap.len() {
        let obj = heap
            .object(ObjectId(i as u32))
            .expect("object ids are dense");
        enc_mem_node(e, &obj.node);
        e.u8(match obj.status {
            AllocStatus::Valid => 0,
            AllocStatus::Freed => 1,
        });
        e.u8(match obj.kind {
            RootKind::Static => 0,
            RootKind::Malloc => 1,
            RootKind::Calloc => 2,
        });
    }
}

fn dec_heap(d: &mut Dec) -> DecResult<Heap> {
    let n = d.len_of()?;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let node = dec_mem_node(d)?;
        let status = match d.u8()? {
            0 => AllocStatus::Valid,
            1 => AllocStatus::Freed,
            tag => return Err(CodecError(format!("bad alloc status {tag}"))),
        };
        let kind = match d.u8()? {
            0 => RootKind::Static,
            1 => RootKind::Malloc,
            2 => RootKind::Calloc,
            tag => return Err(CodecError(format!("bad root kind {tag}"))),
        };
        objects.push(Arc::new(HeapObject { node, status, kind }));
    }
    Ok(Heap::from_objects(objects))
}

/// Encodes a full program state into `e`.
pub fn enc_state(e: &mut Enc, state: &ProgState) {
    e.len_of(state.threads.len());
    for (tid, thread) in &state.threads {
        e.u64(*tid);
        enc_thread(e, thread);
    }
    enc_heap(e, &state.heap);
    e.len_of(state.ghosts.len());
    for ghost in &state.ghosts {
        enc_value(e, ghost);
    }
    e.len_of(state.log.len());
    for event in &state.log {
        enc_value(e, event);
    }
    enc_termination(e, &state.termination);
    e.u64(state.next_tid);
}

/// Decodes a full program state.
pub fn dec_state(d: &mut Dec) -> DecResult<ProgState> {
    let nthreads = d.len_of()?;
    let mut threads = BTreeMap::new();
    for _ in 0..nthreads {
        let tid = d.u64()?;
        threads.insert(tid, dec_thread(d)?);
    }
    let heap = dec_heap(d)?;
    let nghosts = d.len_of()?;
    let mut ghosts = Vec::with_capacity(nghosts);
    for _ in 0..nghosts {
        ghosts.push(dec_value(d)?);
    }
    let nlog = d.len_of()?;
    let mut log = Vec::with_capacity(nlog);
    for _ in 0..nlog {
        log.push(dec_value(d)?);
    }
    let termination = dec_termination(d)?;
    let next_tid = d.u64()?;
    Ok(ProgState {
        threads,
        heap,
        ghosts,
        log,
        termination,
        next_tid,
    })
}

/// Convenience: one state to an owned byte vector.
pub fn state_to_bytes(state: &ProgState) -> Vec<u8> {
    let mut e = Enc::new();
    enc_state(&mut e, state);
    e.into_bytes()
}

/// Convenience: one state from a byte slice (must consume every byte).
pub fn state_from_bytes(bytes: &[u8]) -> DecResult<ProgState> {
    let mut d = Dec::new(bytes);
    let state = dec_state(&mut d)?;
    if !d.at_end() {
        return Err(CodecError("trailing bytes after state".into()));
    }
    Ok(state)
}

/// Encodes a step (for checkpointed traces).
pub fn enc_step(e: &mut Enc, step: &Step) {
    e.u64(step.tid);
    match &step.kind {
        StepKind::Drain => e.u8(0),
        StepKind::Instr { nondets } => {
            e.u8(1);
            e.len_of(nondets.len());
            for v in nondets {
                enc_value(e, v);
            }
        }
    }
}

/// Decodes a step.
pub fn dec_step(d: &mut Dec) -> DecResult<Step> {
    let tid = d.u64()?;
    let kind = match d.u8()? {
        0 => StepKind::Drain,
        1 => {
            let n = d.len_of()?;
            let mut nondets = Vec::with_capacity(n);
            for _ in 0..n {
                nondets.push(dec_value(d)?);
            }
            StepKind::Instr { nondets }
        }
        tag => return Err(CodecError(format!("bad step tag {tag}"))),
    };
    Ok(Step { tid, kind })
}

// ---------------------------------------------------------------------------
// Atomic checksummed files
// ---------------------------------------------------------------------------

/// Magic prefix of every spill/checkpoint file, versioned so a format
/// change invalidates stale files instead of misreading them.
const FILE_MAGIC: &[u8; 8] = b"armspl1\n";

static TEMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// Writes `payload` to `path` crash-safely: magic + payload + FNV-1a
/// checksum go to a same-directory temp file, then `rename` into place.
/// Readers therefore observe the old file, the new file, or no file —
/// never a torn mix.
pub fn write_atomic(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let nonce = TEMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".tmp-{}-{nonce}-{}",
        std::process::id(),
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "spill".into())
    ));
    let checksum = fnv1a_64(payload);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(FILE_MAGIC)?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(payload)?;
        file.write_all(&checksum.to_le_bytes())?;
        file.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(err) => {
            let _ = fs::remove_file(&tmp);
            Err(err)
        }
    }
}

/// Verifies an in-memory image of a [`write_atomic`] file (magic, length,
/// checksum) and returns its payload. `path` only labels errors.
pub fn verify_bytes(raw: &[u8], path: &Path) -> Result<Vec<u8>, String> {
    if raw.len() < FILE_MAGIC.len() + 16 {
        return Err(format!("{}: truncated header", path.display()));
    }
    if &raw[..FILE_MAGIC.len()] != FILE_MAGIC {
        return Err(format!("{}: bad magic", path.display()));
    }
    let mut off = FILE_MAGIC.len();
    let len = u64::from_le_bytes(raw[off..off + 8].try_into().unwrap()) as usize;
    off += 8;
    if raw.len() != off + len + 8 {
        return Err(format!(
            "{}: length mismatch (header says {len}, file holds {})",
            path.display(),
            raw.len().saturating_sub(off + 8)
        ));
    }
    let payload = &raw[off..off + len];
    let stored = u64::from_le_bytes(raw[off + len..].try_into().unwrap());
    let actual = fnv1a_64(payload);
    if stored != actual {
        return Err(format!(
            "{}: checksum mismatch (stored {stored:016x}, computed {actual:016x})",
            path.display()
        ));
    }
    Ok(payload.to_vec())
}

/// Reads a file written by [`write_atomic`], verifying magic, length, and
/// checksum. Returns the payload, or an error naming what was wrong.
pub fn read_verified(path: &Path) -> Result<Vec<u8>, String> {
    let raw = fs::read(path).map_err(|err| format!("{}: {err}", path.display()))?;
    verify_bytes(&raw, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::StateArena;
    use crate::explore::{explore, Bounds};
    use crate::lower::lower;

    fn program(source: &str) -> crate::program::Program {
        let module = armada_lang::parse_module(source).expect("parse");
        let typed = armada_lang::check_module(&module).expect("check");
        lower(&typed, "L").expect("lower")
    }

    #[test]
    fn every_explored_state_round_trips_exactly() {
        // A subject that exercises threads, TSO buffers, heap allocation,
        // ghosts, and the log — every codec branch that exploration hits.
        let prog = program(
            r#"level L {
                var x: uint32;
                ghost var g: int := 3;
                void worker() {
                    var cell: ptr<uint32> := malloc(uint32);
                    *cell := 5;
                    x := x + 1;
                    dealloc cell;
                }
                void main() {
                    var t: uint64 := create_thread worker();
                    x := 1;
                    join t;
                    print(x);
                }
            }"#,
        );
        let result = explore(&prog, &Bounds::small());
        assert!(result.arena.len() > 10, "subject must produce real states");
        for state in result.arena.iter() {
            let bytes = state_to_bytes(state);
            let back = state_from_bytes(&bytes).expect("round trip");
            assert_eq!(*state, back);
            assert_eq!(
                StateArena::fingerprint(state),
                StateArena::fingerprint(&back),
                "fingerprints must survive the round trip"
            );
        }
    }

    #[test]
    fn ghost_collection_values_round_trip() {
        let mut set = BTreeSet::new();
        set.insert(Value::MathInt(-7));
        set.insert(Value::Bool(true));
        let mut map = BTreeMap::new();
        map.insert(Value::MathInt(1), Value::Seq(vec![Value::MathInt(2)]));
        let samples = vec![
            Value::int(IntType::I8, -5),
            Value::MathInt(i128::MAX),
            Value::Ptr(Some(PtrVal {
                object: ObjectId(3),
                path: vec![0, 2],
            })),
            Value::Set(set),
            Value::Map(map),
            Value::Opt(Some(Box::new(Value::Bool(false)))),
            Value::Opt(None),
        ];
        for v in &samples {
            let mut e = Enc::new();
            enc_value(&mut e, v);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_value(&mut d).expect("decode"), *v);
            assert!(d.at_end());
        }
    }

    #[test]
    fn steps_round_trip() {
        let samples = vec![
            Step::drain(3),
            Step::instr(1),
            Step::instr_with(2, vec![Value::MathInt(9), Value::Bool(true)]),
        ];
        for step in &samples {
            let mut e = Enc::new();
            enc_step(&mut e, step);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_step(&mut d).expect("decode"), *step);
            assert!(d.at_end());
        }
    }

    #[test]
    fn atomic_files_verify_and_reject_corruption() {
        let dir = std::env::temp_dir().join(format!("armada-codec-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("page.bin");
        let payload = b"the quick brown fox".to_vec();
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);

        // Flip one payload byte: checksum must catch it.
        let mut raw = fs::read(&path).unwrap();
        let mid = FILE_MAGIC.len() + 8 + 4;
        raw[mid] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        assert!(read_verified(&path).unwrap_err().contains("checksum"));

        // Truncate: length check must catch it.
        raw.truncate(raw.len() - 3);
        fs::write(&path, &raw).unwrap();
        assert!(read_verified(&path)
            .unwrap_err()
            .contains("length mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Hash-consed state arena: dense ids + cached fingerprints for `ProgState`.
//!
//! Both hot engines — [`crate::explore`] and the refinement checker in
//! `armada-verify` — used to carry whole [`ProgState`] trees in their
//! frontiers and key their seen-sets on full states, which re-hashes and
//! deep-compares a thread-map/frame-stack/heap forest on every probe. A
//! [`StateArena`] interns each distinct state exactly once, hands out a
//! dense [`StateId`] (`u32`), and caches a 64-bit FNV-1a fingerprint per
//! state so that:
//!
//! - seen-set probes are an integer bucket lookup (full structural equality
//!   runs only on the rare fingerprint collision inside one bucket);
//! - frontiers, parent links, and traces carry 4-byte ids instead of
//!   cloned states;
//! - every interned state is stored behind an [`Arc`], so handing a state
//!   to a result set (terminal classes, counterexamples) is a refcount
//!   bump, not a deep clone.
//!
//! Ids are assigned in interning order, so an engine that interns states
//! in a deterministic order (the wave-commit order in `explore` and
//! `check_refinement`) gets deterministic ids for free — `jobs=1 ≡ jobs=N`
//! comparisons can compare arenas structurally.
//!
//! The arena stores exactly what callers pass it: under symmetry reduction
//! (`crate::canon`, on by default) the engines canonicalize each state
//! *before* fingerprinting and interning, so the stored representative
//! **is** the canonical state and every symmetric copy of it maps to the
//! same id. The arena itself needs no symmetry awareness — equality and
//! fingerprints over canonical forms do the collapsing.
//!
//! Fingerprints are computed by feeding the state's derived [`Hash`]
//! implementation into [`FpHasher`], an in-repo word-at-a-time
//! rotate-xor-multiply hasher (hermetic-build policy: no crates.io
//! hashers). Fingerprinting runs once per *generated edge* in the hot
//! engines, so it is built for speed: one multiply per hashed word, not
//! one per byte like FNV. Collisions cost only a structural equality check
//! inside the bucket — never correctness. Fingerprints are stable within a
//! process run, which is all the engines need; nothing persists them.

use crate::state::ProgState;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// A dense handle to an interned [`ProgState`] inside one [`StateArena`].
///
/// Ids are only meaningful relative to the arena that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Word-at-a-time fingerprint hasher: `state = (state <<< 5 ^ word) * K`
/// per 64-bit word, with the odd multiplier from splitmix64's increment.
/// Derived `Hash` impls on state types mostly emit fixed-width integer
/// writes, so each field costs one rotate-xor-multiply — roughly an order
/// of magnitude fewer operations than a byte-serial FNV over the same
/// state. Not cryptographic and not collision-free, and doesn't need to
/// be: arena buckets re-check structural equality on every fingerprint
/// hit.
#[derive(Default)]
pub struct FpHasher(u64);

const FP_K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FpHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FP_K);
    }
}

impl Hasher for FpHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so short inputs still spread across all 64 bits.
        let mut v = self.0;
        v ^= v >> 32;
        v = v.wrapping_mul(FP_K);
        v ^= v >> 29;
        v
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" + "" and "a" + "b" diverge.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_i128(&mut self, v: i128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
}

/// Pass-through hasher for the fingerprint-keyed bucket map: the key *is*
/// already a 64-bit hash, so re-hashing it (std's SipHash default) would
/// only burn cycles on the hottest probe path.
#[derive(Default)]
pub struct FpIdentityHasher(u64);

impl Hasher for FpIdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys hash via write_u64");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A fingerprint bucket: the common case is exactly one id per
/// fingerprint, held inline so no per-state allocation happens; genuine
/// 64-bit collisions overflow into `rest` (empty `Vec`s don't allocate).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bucket {
    first: u32,
    rest: Vec<u32>,
}

impl Bucket {
    fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first).chain(self.rest.iter().copied())
    }
}

/// An arena of hash-consed program states.
#[derive(Debug, Clone, Default)]
pub struct StateArena {
    /// Interned states, indexed by [`StateId`]; insertion order is the
    /// caller's interning order.
    states: Vec<Arc<ProgState>>,
    /// Cached fingerprint per state, same indexing.
    fps: Vec<u64>,
    /// Fingerprint → ids carrying it.
    buckets: HashMap<u64, Bucket, BuildHasherDefault<FpIdentityHasher>>,
}

impl StateArena {
    /// An empty arena.
    pub fn new() -> StateArena {
        StateArena::default()
    }

    /// Number of distinct interned states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The 64-bit fingerprint of a state (whether interned or not).
    pub fn fingerprint(state: &ProgState) -> u64 {
        let mut h = FpHasher::default();
        state.hash(&mut h);
        h.finish()
    }

    /// Interns a state, returning its id and whether it was fresh.
    pub fn intern(&mut self, state: ProgState) -> (StateId, bool) {
        let fp = StateArena::fingerprint(&state);
        self.intern_with_fp(fp, state)
    }

    /// Interns a state whose fingerprint the caller already computed
    /// (e.g. in a parallel expansion phase, off the commit path).
    pub fn intern_with_fp(&mut self, fp: u64, state: ProgState) -> (StateId, bool) {
        if let Some(id) = self.lookup_with_fp(fp, &state) {
            return (id, false);
        }
        let id = u32::try_from(self.states.len()).expect("state arena overflow (> u32::MAX ids)");
        self.states.push(Arc::new(state));
        self.fps.push(fp);
        self.buckets
            .entry(fp)
            .and_modify(|b| b.rest.push(id))
            .or_insert(Bucket {
                first: id,
                rest: Vec::new(),
            });
        (StateId(id), true)
    }

    /// Looks up a state already interned, by precomputed fingerprint.
    /// Structural equality runs only on ids sharing the fingerprint.
    pub fn lookup_with_fp(&self, fp: u64, state: &ProgState) -> Option<StateId> {
        let bucket = self.buckets.get(&fp)?;
        bucket
            .ids()
            .find(|&id| *self.states[id as usize] == *state)
            .map(StateId)
    }

    /// Looks up a state already interned.
    pub fn lookup(&self, state: &ProgState) -> Option<StateId> {
        self.lookup_with_fp(StateArena::fingerprint(state), state)
    }

    /// The state behind an id.
    pub fn get(&self, id: StateId) -> &ProgState {
        &self.states[id.index()]
    }

    /// A shared handle to the state behind an id (refcount bump, no clone).
    pub fn get_arc(&self, id: StateId) -> Arc<ProgState> {
        Arc::clone(&self.states[id.index()])
    }

    /// The cached fingerprint of an interned state.
    pub fn fp_of(&self, id: StateId) -> u64 {
        self.fps[id.index()]
    }

    /// All interned states in id (interning) order.
    pub fn iter(&self) -> impl Iterator<Item = &ProgState> {
        self.states.iter().map(|arc| arc.as_ref())
    }
}

/// Arenas compare by interned content *and order*: two deterministic
/// engines agree iff they interned the same states in the same order.
impl PartialEq for StateArena {
    fn eq(&self, other: &StateArena) -> bool {
        self.fps == other.fps
            && self.states.len() == other.states.len()
            && self.states.iter().zip(&other.states).all(|(a, b)| a == b)
    }
}

impl Eq for StateArena {}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::{check_module, parse_module};

    fn tiny_states() -> Vec<ProgState> {
        let module =
            parse_module("level L { var x: uint32; void main() { x := 1; x := 2; print(x); } }")
                .unwrap();
        let typed = check_module(&module).unwrap();
        let program = crate::lower(&typed, "L").unwrap();
        let exploration = crate::explore(&program, &crate::Bounds::small());
        exploration.arena.iter().cloned().collect()
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let states = tiny_states();
        assert!(states.len() >= 3, "expected a few distinct states");
        let mut arena = StateArena::new();
        let mut ids = Vec::new();
        for state in &states {
            let (id, fresh) = arena.intern(state.clone());
            assert!(fresh);
            ids.push(id);
        }
        // Re-interning yields the same ids, marked stale.
        for (state, &expect) in states.iter().zip(&ids) {
            let (id, fresh) = arena.intern(state.clone());
            assert!(!fresh);
            assert_eq!(id, expect);
        }
        assert_eq!(arena.len(), states.len());
        // Ids are dense and ordered by interning.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(arena.get(*id), &states[i]);
        }
    }

    #[test]
    fn fingerprints_cached_and_consistent() {
        let states = tiny_states();
        let mut arena = StateArena::new();
        for state in &states {
            let fp = StateArena::fingerprint(state);
            let (id, _) = arena.intern(state.clone());
            assert_eq!(arena.fp_of(id), fp);
            assert_eq!(arena.lookup_with_fp(fp, state), Some(id));
            assert_eq!(arena.lookup(state), Some(id));
        }
    }

    #[test]
    fn collision_buckets_fall_back_to_equality() {
        // Force two distinct states into one bucket by lying about the
        // fingerprint: structural equality must still keep them apart.
        let states = tiny_states();
        let (a, b) = (&states[0], &states[1]);
        assert_ne!(a, b);
        let mut arena = StateArena::new();
        let (ia, fresh_a) = arena.intern_with_fp(42, a.clone());
        let (ib, fresh_b) = arena.intern_with_fp(42, b.clone());
        assert!(fresh_a && fresh_b);
        assert_ne!(ia, ib);
        assert_eq!(arena.lookup_with_fp(42, a), Some(ia));
        assert_eq!(arena.lookup_with_fp(42, b), Some(ib));
        assert_eq!(arena.get(ia), a);
        assert_eq!(arena.get(ib), b);
    }

    #[test]
    fn arena_equality_is_order_sensitive() {
        let states = tiny_states();
        let mut fwd = StateArena::new();
        let mut rev = StateArena::new();
        for state in &states {
            fwd.intern(state.clone());
        }
        for state in states.iter().rev() {
            rev.intern(state.clone());
        }
        let mut fwd2 = StateArena::new();
        for state in &states {
            fwd2.intern(state.clone());
        }
        assert_eq!(fwd, fwd2);
        assert_ne!(fwd, rev);
    }
}

//! Hash-consed state arena: dense ids + cached fingerprints for `ProgState`.
//!
//! Both hot engines — [`crate::explore`] and the refinement checker in
//! `armada-verify` — used to carry whole [`ProgState`] trees in their
//! frontiers and key their seen-sets on full states, which re-hashes and
//! deep-compares a thread-map/frame-stack/heap forest on every probe. A
//! [`StateArena`] interns each distinct state exactly once, hands out a
//! dense [`StateId`] (`u32`), and caches a 64-bit FNV-1a fingerprint per
//! state so that:
//!
//! - seen-set probes are an integer bucket lookup (full structural equality
//!   runs only on the rare fingerprint collision inside one bucket);
//! - frontiers, parent links, and traces carry 4-byte ids instead of
//!   cloned states;
//! - every interned state is stored behind an [`Arc`], so handing a state
//!   to a result set (terminal classes, counterexamples) is a refcount
//!   bump, not a deep clone.
//!
//! Ids are assigned in interning order, so an engine that interns states
//! in a deterministic order (the wave-commit order in `explore` and
//! `check_refinement`) gets deterministic ids for free — `jobs=1 ≡ jobs=N`
//! comparisons can compare arenas structurally.
//!
//! The arena stores exactly what callers pass it: under symmetry reduction
//! (`crate::canon`, on by default) the engines canonicalize each state
//! *before* fingerprinting and interning, so the stored representative
//! **is** the canonical state and every symmetric copy of it maps to the
//! same id. The arena itself needs no symmetry awareness — equality and
//! fingerprints over canonical forms do the collapsing.
//!
//! Fingerprints are computed by feeding the state's derived [`Hash`]
//! implementation into [`FpHasher`], an in-repo word-at-a-time
//! rotate-xor-multiply hasher (hermetic-build policy: no crates.io
//! hashers). Fingerprinting runs once per *generated edge* in the hot
//! engines, so it is built for speed: one multiply per hashed word, not
//! one per byte like FNV. Collisions cost only a structural equality check
//! inside the bucket — never correctness. Fingerprints are stable within a
//! process run, which is all the engines need; nothing persists them.

use crate::pager::{Pager, SpillSpec};
use crate::state::ProgState;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// A dense handle to an interned [`ProgState`] inside one [`StateArena`].
///
/// Ids are only meaningful relative to the arena that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Word-at-a-time fingerprint hasher: `state = (state <<< 5 ^ word) * K`
/// per 64-bit word, with the odd multiplier from splitmix64's increment.
/// Derived `Hash` impls on state types mostly emit fixed-width integer
/// writes, so each field costs one rotate-xor-multiply — roughly an order
/// of magnitude fewer operations than a byte-serial FNV over the same
/// state. Not cryptographic and not collision-free, and doesn't need to
/// be: arena buckets re-check structural equality on every fingerprint
/// hit.
#[derive(Default)]
pub struct FpHasher(u64);

const FP_K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FpHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FP_K);
    }
}

impl Hasher for FpHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so short inputs still spread across all 64 bits.
        let mut v = self.0;
        v ^= v >> 32;
        v = v.wrapping_mul(FP_K);
        v ^= v >> 29;
        v
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" + "" and "a" + "b" diverge.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_i128(&mut self, v: i128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
}

/// Pass-through hasher for the fingerprint-keyed bucket map: the key *is*
/// already a 64-bit hash, so re-hashing it (std's SipHash default) would
/// only burn cycles on the hottest probe path.
#[derive(Default)]
pub struct FpIdentityHasher(u64);

impl Hasher for FpIdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint keys hash via write_u64");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A fingerprint bucket: the common case is exactly one id per
/// fingerprint, held inline so no per-state allocation happens; genuine
/// 64-bit collisions overflow into `rest` (empty `Vec`s don't allocate).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bucket {
    first: u32,
    rest: Vec<u32>,
}

impl Bucket {
    fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first).chain(self.rest.iter().copied())
    }
}

/// An arena of hash-consed program states.
///
/// # Spill mode
///
/// [`StateArena::enable_spill`] swaps the resident `Vec` of states for a
/// disk-backed [`Pager`] governed by a byte budget. Fingerprints and
/// buckets — 8 bytes + bucket entry per state — always stay resident, so
/// dedup *probes* stay an integer lookup; only the rare fingerprint *hit*
/// needs the state bytes for the equality check, and may fault a cold
/// page. In spill mode the faulting accessors (`get_arc_mut`,
/// `lookup_with_fp_mut`) must be used anywhere an evicted state could be
/// touched; the `&self` accessors panic on an evicted state rather than
/// silently guess. Both engines access the arena only from the
/// coordinator thread, so the `&mut` requirement costs nothing.
#[derive(Debug, Default)]
pub struct StateArena {
    /// Interned states, indexed by [`StateId`]; insertion order is the
    /// caller's interning order. Empty in spill mode.
    states: Vec<Arc<ProgState>>,
    /// Disk-backed store replacing `states` when spill is enabled.
    pager: Option<Pager>,
    /// Cached fingerprint per state, same indexing. Always resident.
    fps: Vec<u64>,
    /// Fingerprint → ids carrying it.
    buckets: HashMap<u64, Bucket, BuildHasherDefault<FpIdentityHasher>>,
}

impl Clone for StateArena {
    /// Clones the resident image. Spill mode is a run-scoped property of
    /// one engine invocation; cloning a spilled arena would alias its
    /// backing files, so it is not supported.
    fn clone(&self) -> StateArena {
        assert!(
            self.pager.is_none(),
            "cannot clone a spilled arena (backing files are run-scoped)"
        );
        StateArena {
            states: self.states.clone(),
            pager: None,
            fps: self.fps.clone(),
            buckets: self.buckets.clone(),
        }
    }
}

impl StateArena {
    /// An empty arena.
    pub fn new() -> StateArena {
        StateArena::default()
    }

    /// Switches this arena to disk-backed storage under `spec`'s budget.
    /// Must be called before anything is interned.
    ///
    /// # Errors
    ///
    /// Fails if the spill directory cannot be created.
    pub fn enable_spill(&mut self, spec: SpillSpec) -> std::io::Result<()> {
        assert!(self.is_empty(), "spill must be enabled on an empty arena");
        self.pager = Some(Pager::new(spec)?);
        Ok(())
    }

    /// True if this arena pages state bytes to disk.
    pub fn spill_enabled(&self) -> bool {
        self.pager.is_some()
    }

    /// The spill pager's event counters (`(label, value)` pairs), if
    /// spill is enabled — drained into stage telemetry by the engines.
    pub fn spill_counters(&self) -> Option<Vec<(&'static str, u64)>> {
        self.pager.as_ref().map(|p| p.counters())
    }

    /// Total encoded bytes the arena's states occupy on disk (spill mode
    /// only) — the footprint axis of the spill bench.
    pub fn spill_total_bytes(&self) -> Option<u64> {
        self.pager.as_ref().map(|p| p.total_bytes())
    }

    /// Number of distinct interned states.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// The 64-bit fingerprint of a state (whether interned or not).
    pub fn fingerprint(state: &ProgState) -> u64 {
        let mut h = FpHasher::default();
        state.hash(&mut h);
        h.finish()
    }

    /// Interns a state, returning its id and whether it was fresh.
    pub fn intern(&mut self, state: ProgState) -> (StateId, bool) {
        let fp = StateArena::fingerprint(&state);
        self.intern_with_fp(fp, state)
    }

    /// Interns a state whose fingerprint the caller already computed
    /// (e.g. in a parallel expansion phase, off the commit path).
    pub fn intern_with_fp(&mut self, fp: u64, state: ProgState) -> (StateId, bool) {
        if let Some(id) = self.lookup_with_fp_mut(fp, &state) {
            return (id, false);
        }
        let id = u32::try_from(self.len()).expect("state arena overflow (> u32::MAX ids)");
        match &mut self.pager {
            Some(pager) => pager.push(Arc::new(state)),
            None => self.states.push(Arc::new(state)),
        }
        self.fps.push(fp);
        self.buckets
            .entry(fp)
            .and_modify(|b| b.rest.push(id))
            .or_insert(Bucket {
                first: id,
                rest: Vec::new(),
            });
        (StateId(id), true)
    }

    /// Looks up a state already interned, by precomputed fingerprint.
    /// Structural equality runs only on ids sharing the fingerprint.
    ///
    /// # Panics
    ///
    /// In spill mode, panics if a candidate state is evicted — use
    /// [`StateArena::lookup_with_fp_mut`] on paths that may touch cold
    /// pages.
    pub fn lookup_with_fp(&self, fp: u64, state: &ProgState) -> Option<StateId> {
        let bucket = self.buckets.get(&fp)?;
        bucket
            .ids()
            .find(|&id| *self.resident(id as usize) == *state)
            .map(StateId)
    }

    /// [`StateArena::lookup_with_fp`], faulting evicted candidates in
    /// from disk for the equality check (exact dedup is kept even past
    /// RAM: a fingerprint hit costs at most one page fault, never
    /// correctness).
    pub fn lookup_with_fp_mut(&mut self, fp: u64, state: &ProgState) -> Option<StateId> {
        let Some(bucket) = self.buckets.get(&fp) else {
            return None;
        };
        match &mut self.pager {
            None => bucket
                .ids()
                .find(|&id| *self.states[id as usize] == *state)
                .map(StateId),
            Some(pager) => {
                let ids: Vec<u32> = bucket.ids().collect();
                ids.into_iter()
                    .find(|&id| *pager.get(id as usize) == *state)
                    .map(StateId)
            }
        }
    }

    /// Looks up a state already interned.
    pub fn lookup(&self, state: &ProgState) -> Option<StateId> {
        self.lookup_with_fp(StateArena::fingerprint(state), state)
    }

    /// Resident access by raw index, for the `&self` accessors.
    fn resident(&self, index: usize) -> &ProgState {
        match &self.pager {
            None => &self.states[index],
            Some(_) => {
                panic!("state {index} may be evicted; use a faulting (&mut) accessor in spill mode")
            }
        }
    }

    /// The state behind an id.
    ///
    /// # Panics
    ///
    /// Panics in spill mode (the state may be evicted); use
    /// [`StateArena::get_arc_mut`] there.
    pub fn get(&self, id: StateId) -> &ProgState {
        self.resident(id.index())
    }

    /// A shared handle to the state behind an id (refcount bump, no clone).
    ///
    /// # Panics
    ///
    /// Panics in spill mode; use [`StateArena::get_arc_mut`] there.
    pub fn get_arc(&self, id: StateId) -> Arc<ProgState> {
        self.resident(id.index());
        Arc::clone(&self.states[id.index()])
    }

    /// A shared handle to the state behind an id, faulting its page in
    /// from disk if evicted.
    pub fn get_arc_mut(&mut self, id: StateId) -> Arc<ProgState> {
        match &mut self.pager {
            None => Arc::clone(&self.states[id.index()]),
            Some(pager) => pager.get(id.index()),
        }
    }

    /// The cached fingerprint of an interned state.
    pub fn fp_of(&self, id: StateId) -> u64 {
        self.fps[id.index()]
    }

    /// All interned states in id (interning) order.
    ///
    /// # Panics
    ///
    /// Panics in spill mode; iterate ids and use
    /// [`StateArena::get_arc_mut`] instead.
    pub fn iter(&self) -> impl Iterator<Item = &ProgState> {
        assert!(
            self.pager.is_none(),
            "cannot iterate a spilled arena by reference; fault states by id instead"
        );
        self.states.iter().map(|arc| arc.as_ref())
    }
}

/// Arenas compare by interned content *and order*: two deterministic
/// engines agree iff they interned the same states in the same order.
/// If either side spills, the comparison uses the resident fingerprint
/// sequence (64 bits per state, same interning order) — the states
/// themselves live on disk, and the identity gates additionally compare
/// rendered output.
impl PartialEq for StateArena {
    fn eq(&self, other: &StateArena) -> bool {
        if self.fps != other.fps {
            return false;
        }
        if self.pager.is_some() || other.pager.is_some() {
            return self.len() == other.len();
        }
        self.states.len() == other.states.len()
            && self.states.iter().zip(&other.states).all(|(a, b)| a == b)
    }
}

impl Eq for StateArena {}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::{check_module, parse_module};

    fn tiny_states() -> Vec<ProgState> {
        let module =
            parse_module("level L { var x: uint32; void main() { x := 1; x := 2; print(x); } }")
                .unwrap();
        let typed = check_module(&module).unwrap();
        let program = crate::lower(&typed, "L").unwrap();
        let exploration = crate::explore(&program, &crate::Bounds::small());
        exploration.arena.iter().cloned().collect()
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let states = tiny_states();
        assert!(states.len() >= 3, "expected a few distinct states");
        let mut arena = StateArena::new();
        let mut ids = Vec::new();
        for state in &states {
            let (id, fresh) = arena.intern(state.clone());
            assert!(fresh);
            ids.push(id);
        }
        // Re-interning yields the same ids, marked stale.
        for (state, &expect) in states.iter().zip(&ids) {
            let (id, fresh) = arena.intern(state.clone());
            assert!(!fresh);
            assert_eq!(id, expect);
        }
        assert_eq!(arena.len(), states.len());
        // Ids are dense and ordered by interning.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(arena.get(*id), &states[i]);
        }
    }

    #[test]
    fn fingerprints_cached_and_consistent() {
        let states = tiny_states();
        let mut arena = StateArena::new();
        for state in &states {
            let fp = StateArena::fingerprint(state);
            let (id, _) = arena.intern(state.clone());
            assert_eq!(arena.fp_of(id), fp);
            assert_eq!(arena.lookup_with_fp(fp, state), Some(id));
            assert_eq!(arena.lookup(state), Some(id));
        }
    }

    #[test]
    fn collision_buckets_fall_back_to_equality() {
        // Force two distinct states into one bucket by lying about the
        // fingerprint: structural equality must still keep them apart.
        let states = tiny_states();
        let (a, b) = (&states[0], &states[1]);
        assert_ne!(a, b);
        let mut arena = StateArena::new();
        let (ia, fresh_a) = arena.intern_with_fp(42, a.clone());
        let (ib, fresh_b) = arena.intern_with_fp(42, b.clone());
        assert!(fresh_a && fresh_b);
        assert_ne!(ia, ib);
        assert_eq!(arena.lookup_with_fp(42, a), Some(ia));
        assert_eq!(arena.lookup_with_fp(42, b), Some(ib));
        assert_eq!(arena.get(ia), a);
        assert_eq!(arena.get(ib), b);
    }

    #[test]
    fn spilled_arena_interns_dedups_and_faults_like_a_resident_one() {
        let states = tiny_states();
        let dir = std::env::temp_dir().join(format!("armada-arena-spill-{}", std::process::id()));
        let mut spec = crate::pager::SpillSpec::new(64, dir.clone());
        spec.page_states = 2;
        let mut spilled = StateArena::new();
        spilled.enable_spill(spec).unwrap();
        let mut resident = StateArena::new();
        for state in &states {
            let (a, fresh_a) = spilled.intern(state.clone());
            let (b, fresh_b) = resident.intern(state.clone());
            assert_eq!(a, b);
            assert_eq!(fresh_a, fresh_b);
        }
        // Dedup still works across evicted pages (exact, via page fault).
        for (state, i) in states.iter().zip(0u32..) {
            let (id, fresh) = spilled.intern(state.clone());
            assert!(!fresh);
            assert_eq!(id, StateId(i));
            assert_eq!(spilled.get_arc_mut(id).as_ref(), state);
            assert_eq!(spilled.fp_of(id), resident.fp_of(id));
        }
        assert_eq!(spilled, resident);
        let counters = spilled.spill_counters().unwrap();
        let get = |label: &str| counters.iter().find(|(l, _)| *l == label).unwrap().1;
        assert!(get("spill.evictions") > 0, "64-byte cap must evict");
        assert!(get("spill.misses") > 0, "dedup probes must fault");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arena_equality_is_order_sensitive() {
        let states = tiny_states();
        let mut fwd = StateArena::new();
        let mut rev = StateArena::new();
        for state in &states {
            fwd.intern(state.clone());
        }
        for state in states.iter().rev() {
            rev.intern(state.clone());
        }
        let mut fwd2 = StateArena::new();
        for state in &states {
            fwd2.intern(state.clone());
        }
        assert_eq!(fwd, fwd2);
        assert_ne!(fwd, rev);
    }
}

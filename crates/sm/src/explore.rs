//! Bounded exhaustive exploration of a program's state space, and a
//! deterministic scheduler for single runs.
//!
//! Exploration enumerates *all* interleavings — instruction steps of every
//! thread plus store-buffer drain steps at every point — up to configurable
//! bounds, with nondeterministic values drawn from a finite candidate pool.
//! This is the executable substitute for the paper's Dafny/Z3 backend: the
//! refinement checker in `armada-verify` walks these state graphs, and
//! strategy failure tests rely on exploration surfacing assertion failures,
//! UB, and ownership violations.
//!
//! The engine is a wave-synchronized BFS over a [`StateArena`]: states are
//! hash-consed to dense ids with cached 64-bit fingerprints, so seen-set
//! probes are integer bucket lookups and the frontier carries 4-byte ids,
//! not cloned state trees. Within a wave the engine runs a pinned-role
//! *stage pipeline* — ingress → explore → subsume → commit — over
//! lock-free SPSC rings ([`armada_runtime::ring`]): the coordinator
//! ingresses wave slot `s` to explore worker `s % jobs`, workers enumerate
//! successors and hand them back through their out-ring, and the
//! coordinator commits expansions serially *in wave-slot order* (arena
//! dedup — the subsume stage — then interning and `max_states`
//! accounting). Because each worker receives its slots in ascending order
//! and SPSC rings are FIFO, popping out-ring `s % jobs` for slot `s`
//! reconstructs the exact serial commit order with no reorder buffer, so
//! results — including truncation points — are byte-identical for any job
//! count. With `jobs = 1` the same stages run inline on one thread, no
//! rings involved.
//!
//! With [`Bounds::reduction`] on (the default), expansion fuses maximal
//! runs of thread-local steps into single macro-transitions (see
//! [`crate::reduce`]), shrinking the interleaving space while preserving
//! observable terminal classes: exited logs, assertion failures, UB, and
//! stuckness. With [`Bounds::symmetry`] on (also the default), every
//! generated state is replaced by its canonical representative (see
//! [`crate::canon`]) before fingerprinting, so states differing only by a
//! permutation of symmetric thread ids or heap allocation order intern as
//! one. The two reductions compose multiplicatively and both preserve the
//! same observables.

use crate::arena::{StateArena, StateId};
use crate::checkpoint::{ExploreCheckpoint, TerminalIds};
use crate::program::{Instr, Program};
use crate::reduce::Reducer;
use crate::state::{initial_state, ProgState, Termination};
use crate::step::{enabled_steps, try_step, Step, StepKind};
use crate::value::Value;
use armada_runtime::ring::{ring, Backoff};
use armada_runtime::telemetry::{Stage, StageTelemetry};
use std::sync::Arc;
use std::time::Instant;

fn collect_expr_literals(expr: &armada_lang::ast::Expr, out: &mut Vec<i128>) {
    use armada_lang::ast::ExprKind::*;
    match &expr.kind {
        IntLit(value) => out.push(*value),
        Unary(_, a)
        | AddrOf(a)
        | Deref(a)
        | Old(a)
        | Allocated(a)
        | AllocatedArray(a)
        | Field(a, _) => collect_expr_literals(a, out),
        Binary(_, a, b) | Index(a, b) => {
            collect_expr_literals(a, out);
            collect_expr_literals(b, out);
        }
        Call(_, args) | SeqLit(args) => {
            for a in args {
                collect_expr_literals(a, out);
            }
        }
        Forall { lo, hi, body, .. } | Exists { lo, hi, body, .. } => {
            collect_expr_literals(lo, out);
            collect_expr_literals(hi, out);
            collect_expr_literals(body, out);
        }
        _ => {}
    }
}

fn collect_instr_literals(instr: &Instr, out: &mut Vec<i128>) {
    match instr {
        Instr::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                collect_expr_literals(e, out);
            }
        }
        Instr::Guard { cond, .. } | Instr::Assert(cond) | Instr::Assume(cond) => {
            collect_expr_literals(cond, out)
        }
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => {
            for e in requires.iter().chain(modifies).chain(ensures) {
                collect_expr_literals(e, out);
            }
        }
        Instr::Call { args, .. } | Instr::Print(args) => {
            for e in args {
                collect_expr_literals(e, out);
            }
        }
        Instr::CreateThread { into, args, .. } => {
            for e in args {
                collect_expr_literals(e, out);
            }
            if let Some(e) = into {
                collect_expr_literals(e, out);
            }
        }
        Instr::Calloc { into, count, .. } => {
            collect_expr_literals(into, out);
            collect_expr_literals(count, out);
        }
        Instr::Malloc { into, .. } => collect_expr_literals(into, out),
        Instr::Dealloc(e) | Instr::Join(e) => collect_expr_literals(e, out),
        Instr::Ret { value: Some(e) } => collect_expr_literals(e, out),
        _ => {}
    }
}

/// Bounds for exhaustive exploration and scheduled runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Maximum scheduler steps for [`run_to_completion`].
    pub max_steps: usize,
    /// Maximum distinct states to visit before truncating.
    pub max_states: usize,
    /// Integer candidates for `*` sites and unsolved `somehow` havoc.
    pub nondet_ints: Vec<i128>,
    /// Store-buffer capacity per thread; writes stall when full, which both
    /// matches finite hardware buffers and bounds the state space.
    pub max_buffer: usize,
    /// Worker threads for exploration and refinement checking. `1` (the
    /// default) runs fully serial; results are identical for any value —
    /// parallelism only changes wall-clock time.
    pub jobs: usize,
    /// Wall-clock deadline for graceful degradation. `None` (the default)
    /// never expires. Checked *cooperatively* — at wave boundaries and,
    /// inside the commit stage, every [`DEADLINE_CHECK_EDGES`] processed
    /// edges — so an expired deadline yields a truncated-but-reported
    /// partial result with bounded overshoot even on a single wide wave,
    /// not a hang.
    pub deadline: Option<std::time::Instant>,
    /// Local-step reduction (see [`crate::reduce`]): fuse maximal runs of
    /// thread-local steps into macro-transitions. On by default; turn off
    /// (`--no-reduction` on the CLI) to enumerate every interleaving of
    /// invisible local steps too — required by strategies that inspect
    /// *all* reachable intermediate states rather than observables.
    pub reduction: bool,
    /// Symmetry reduction (see [`crate::canon`]): intern the canonical
    /// representative of each state, collapsing states that differ only by
    /// a permutation of symmetric thread ids or heap allocation order. On
    /// by default (`--no-symmetry` on the CLI turns it off); a no-op for
    /// programs that fail the invisibility gates.
    pub symmetry: bool,
    /// Disk spilling for the state arena (`--mem-cap` on the CLI): cold
    /// state pages evict to disk under the spec's byte budget and fault
    /// back on demand. `None` (the default) keeps everything resident.
    /// Results are byte-identical with and without spilling.
    pub spill: Option<crate::pager::SpillSpec>,
    /// Wave-boundary checkpointing (`--checkpoint`/`--resume` on the
    /// CLI): the frontier, seen set, and progress counters persist
    /// crash-safely at every wave boundary, and a fresh run with
    /// `resume` set continues from them instead of starting cold. A
    /// resumed run is byte-identical to an uninterrupted one.
    pub checkpoint: Option<crate::checkpoint::CheckpointSpec>,
    /// Waves narrower than this run inline on the coordinator even when
    /// `jobs > 1`: tiny frontiers lose more to ring handoff than they
    /// gain from parallelism, and the inline path is the reference
    /// semantics, so the fallback cannot change results.
    pub small_wave_serial: usize,
}

impl Bounds {
    /// Small bounds suitable for unit tests and case-study models.
    pub fn small() -> Bounds {
        Bounds {
            max_steps: 200_000,
            max_states: 250_000,
            nondet_ints: vec![0, 1, 2],
            max_buffer: 2,
            jobs: 1,
            deadline: None,
            reduction: true,
            symmetry: true,
            spill: None,
            checkpoint: None,
            small_wave_serial: SMALL_WAVE_SERIAL,
        }
    }

    /// The same bounds with `jobs` worker threads (0 is clamped to 1).
    pub fn with_jobs(mut self, jobs: usize) -> Bounds {
        self.jobs = jobs.max(1);
        self
    }

    /// The same bounds with a wall-clock deadline `budget` from now.
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Bounds {
        self.deadline = Some(std::time::Instant::now() + budget);
        self
    }

    /// The same bounds with local-step reduction on or off.
    pub fn with_reduction(mut self, reduction: bool) -> Bounds {
        self.reduction = reduction;
        self
    }

    /// The same bounds with symmetry reduction on or off.
    pub fn with_symmetry(mut self, symmetry: bool) -> Bounds {
        self.symmetry = symmetry;
        self
    }

    /// The same bounds with arena spilling under `spec`'s byte budget.
    pub fn with_spill(mut self, spec: crate::pager::SpillSpec) -> Bounds {
        self.spill = Some(spec);
        self
    }

    /// The same bounds with wave-boundary checkpointing under `spec`.
    pub fn with_checkpoint(mut self, spec: crate::checkpoint::CheckpointSpec) -> Bounds {
        self.checkpoint = Some(spec);
        self
    }

    /// A semantic guard over the fields that determine the explored
    /// graph for `program` — jobs, deadline, budgets, spill, and
    /// checkpoint knobs are all excluded, so a resumed run may raise its
    /// budget or change its worker count and still match.
    pub fn semantic_guard(&self, program: &Program) -> u64 {
        let key = format!(
            "{}|{:?}|{}|{}|{}",
            program.name, self.nondet_ints, self.max_buffer, self.reduction, self.symmetry
        );
        crate::codec::fnv1a_64(key.as_bytes())
    }

    /// True once the wall-clock deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| std::time::Instant::now() >= deadline)
    }

    /// The nondet candidate pool: booleans, the configured integers, and
    /// `null`.
    pub fn pool(&self) -> Vec<Value> {
        let mut pool = vec![Value::Bool(true), Value::Bool(false)];
        pool.extend(self.nondet_ints.iter().map(|&i| Value::MathInt(i)));
        pool.push(Value::Ptr(None));
        pool
    }

    /// The candidate pool for `program`: the base pool plus every integer
    /// literal the program mentions. Nondeterministic choices that must hit
    /// a program constant to enable a path (e.g. `x := *; assume x == 7;`)
    /// are unreachable otherwise.
    pub fn pool_for(&self, program: &Program) -> Vec<Value> {
        let mut pool = self.pool();
        let mut literals: Vec<i128> = Vec::new();
        for routine in &program.routines {
            for instr in &routine.instrs {
                collect_instr_literals(instr, &mut literals);
            }
        }
        literals.sort_unstable();
        literals.dedup();
        for literal in literals.into_iter().take(16) {
            let value = Value::MathInt(literal);
            if !pool.contains(&value) {
                pool.push(value);
            }
        }
        pool
    }
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds::small()
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every distinct state visited, interned in deterministic discovery
    /// (wave-commit) order. The arena *is* the seen-set: probe it with
    /// [`StateArena::lookup`], iterate it with [`StateArena::iter`].
    pub arena: StateArena,
    /// Distinct terminal states, by kind, sorted (shared handles into the
    /// arena — cheap to clone).
    pub exited: Vec<Arc<ProgState>>,
    /// States terminated by assertion failure.
    pub assert_failures: Vec<Arc<ProgState>>,
    /// States terminated by undefined behavior.
    pub ub_states: Vec<Arc<ProgState>>,
    /// States with no enabled steps that are not terminal (deadlocks under
    /// the bounds, e.g. a join that can never fire).
    pub stuck: Vec<Arc<ProgState>>,
    /// Whether the exploration hit `max_states` (or a deadline) and
    /// stopped early.
    pub truncated: bool,
    /// Total transition *edges* scanned (macro-transitions when reduction
    /// is on).
    pub transitions: usize,
    /// Total micro-steps those edges represent; equals `transitions` when
    /// reduction is off. `micro_steps / transitions` is the reduction
    /// ratio.
    pub micro_steps: usize,
}

impl Exploration {
    /// True if no assertion failure or UB state was reached and exploration
    /// completed without truncation.
    pub fn clean(&self) -> bool {
        self.assert_failures.is_empty() && self.ub_states.is_empty() && !self.truncated
    }

    /// Number of distinct states visited.
    pub fn visited_len(&self) -> usize {
        self.arena.len()
    }

    /// Micro-steps per explored edge: 1.0 with reduction off, higher when
    /// fusion is collapsing local runs.
    pub fn reduction_ratio(&self) -> f64 {
        if self.transitions == 0 {
            1.0
        } else {
            self.micro_steps as f64 / self.transitions as f64
        }
    }
}

/// Exhaustively explores the reachable states of `program` under `bounds`.
///
/// # Panics
///
/// Panics if the initial state cannot be built (bad global initializer);
/// lowered, type-checked programs never hit this.
pub fn explore(program: &Program, bounds: &Bounds) -> Exploration {
    let initial = initial_state(program).expect("initial state");
    explore_from(program, initial, bounds)
}

/// [`explore`], additionally returning the per-stage pipeline telemetry
/// (latency/occupancy histograms for ingress/explore/subsume/commit).
///
/// Telemetry values are wall-clock and therefore nondeterministic; the
/// [`Exploration`] itself is byte-identical with and without telemetry.
pub fn explore_with_telemetry(program: &Program, bounds: &Bounds) -> (Exploration, StageTelemetry) {
    let initial = initial_state(program).expect("initial state");
    let mut telemetry = StageTelemetry::new();
    let exploration = explore_from_impl(program, initial, bounds, true, &mut telemetry);
    (exploration, telemetry)
}

/// One state's expansion, computed (possibly in parallel) against a frozen
/// arena and committed serially in wave order.
enum Expansion {
    /// The state is terminal; classify it by its own termination.
    Terminal,
    /// The state is running but has no enabled steps.
    Stuck,
    /// Successor edges, in deterministic enumeration order.
    Edges(Vec<Edge>),
}

/// One successor edge out of an expanded state.
struct Edge {
    /// Precomputed fingerprint of `state` (hashing happens off the serial
    /// commit path).
    fp: u64,
    /// Micro-steps the edge represents (> 1 for fused macro-transitions).
    micro: usize,
    /// The successor state.
    state: ProgState,
}

/// Deadline re-check interval during the commit stage, in processed edges.
/// A wave wider than this no longer overshoots `--deadline` by its full
/// width: expiry is observed at the next multiple-of-K commit index, the
/// cut is taken there, and the rest of the wave is discarded uncommitted.
const DEADLINE_CHECK_EDGES: usize = 1024;

/// Capacity of each pipeline ring (jobs in, expansions out, per worker).
/// Bounds the number of in-flight expansions — and thus both memory and
/// deadline overshoot — while keeping workers fed across commit stalls.
const RING_CAPACITY: usize = 64;

/// Wave slots per ring handoff. One push/pop per slot made the handoff
/// cost visible on small subjects (`BENCH_pipeline.json` showed jobs>1
/// *slower* than serial at 0.73–0.80×); batching amortizes it 16-fold.
/// Batch `b` goes to worker `b % jobs` and SPSC rings are FIFO, so
/// committing batches in index order still reconstructs the exact serial
/// slot order.
const EXPAND_BATCH: usize = 16;

/// Default [`Bounds::small_wave_serial`]: waves narrower than this run
/// inline even when `jobs > 1` (three batches — below that, handoff
/// latency dominates any parallel win).
const SMALL_WAVE_SERIAL: usize = 3 * EXPAND_BATCH;

/// Telemetry samples one slot in this many (power of two; slot 0 is always
/// sampled, so even a tiny run records something). Slots here run in a few
/// microseconds, so timestamping each one costs several percent of the
/// whole exploration; 1-in-32 sampling keeps the histograms statistically
/// representative while holding `--telemetry` overhead under the noise
/// floor (`scripts/verify.sh --full` gates it at 2% of states/sec).
const TELEMETRY_SAMPLE: usize = 32;

/// Counter-based 1-in-[`TELEMETRY_SAMPLE`] sampler: returns a start
/// timestamp when this slot should be measured. Advances on every call,
/// so sampling depends only on slot position — never on the clock — and
/// cannot perturb the exploration result.
fn sample_slot(record: bool, counter: &mut usize) -> Option<Instant> {
    let sampled = record && (*counter & (TELEMETRY_SAMPLE - 1)) == 0;
    *counter = counter.wrapping_add(1);
    sampled.then(Instant::now)
}

/// A unit of work for an explore worker: a batch of consecutive wave
/// slots starting at the carried index.
enum Job {
    Expand(usize, Vec<Arc<ProgState>>),
    Shutdown,
}

/// Exhaustively explores from a given state, with [`Bounds::jobs`] worker
/// threads.
///
/// Serial and parallel runs return byte-identical results — including the
/// truncation point when `max_states` is hit: truncation is decided during
/// the serial wave-order commit, which is the same for any worker count.
pub fn explore_from(program: &Program, initial: ProgState, bounds: &Bounds) -> Exploration {
    let mut telemetry = StageTelemetry::new();
    explore_from_impl(program, initial, bounds, false, &mut telemetry)
}

/// [`explore_from`] with per-stage telemetry collection.
pub fn explore_from_with_telemetry(
    program: &Program,
    initial: ProgState,
    bounds: &Bounds,
) -> (Exploration, StageTelemetry) {
    let mut telemetry = StageTelemetry::new();
    let exploration = explore_from_impl(program, initial, bounds, true, &mut telemetry);
    (exploration, telemetry)
}

/// Mutable commit-stage bookkeeping threaded through [`commit_slot`].
#[derive(Default)]
struct CommitState {
    /// Edges processed since the last deadline re-check.
    edges_since_check: usize,
    /// Set when the deadline expired mid-wave: the engine stops expanding
    /// and committing further slots (unlike a `max_states` cut, which
    /// keeps counting the already-expanded wave).
    deadline_cut: bool,
    /// 1-in-[`TELEMETRY_SAMPLE`] slot sampler for commit-stage telemetry.
    tel_sampler: usize,
}

/// Commits one slot's expansion: classify terminals, dedup successor
/// edges against the arena (the subsume stage), intern fresh states, and
/// enforce `max_states` and the deadline. Strictly serial; called in
/// ascending wave-slot order regardless of the worker count, which is the
/// whole determinism argument.
#[allow(clippy::too_many_arguments)]
fn commit_slot(
    result: &mut Exploration,
    next_wave: &mut Vec<StateId>,
    bounds: &Bounds,
    id: StateId,
    expansion: Expansion,
    cs: &mut CommitState,
    record: bool,
    tel: &mut StageTelemetry,
    terminals: &mut TerminalIds,
) {
    match expansion {
        Expansion::Terminal => {
            let state = result.arena.get_arc_mut(id);
            match &state.termination {
                Termination::Exited => {
                    terminals.exited.push(id.0);
                    result.exited.push(state);
                }
                Termination::AssertFailed(_) => {
                    terminals.assert_failures.push(id.0);
                    result.assert_failures.push(state);
                }
                Termination::UndefinedBehavior(_) => {
                    terminals.ub_states.push(id.0);
                    result.ub_states.push(state);
                }
                Termination::Running => unreachable!("terminal expansion of running state"),
            }
        }
        Expansion::Stuck => {
            terminals.stuck.push(id.0);
            let state = result.arena.get_arc_mut(id);
            result.stuck.push(state);
        }
        Expansion::Edges(edges) => {
            let started = sample_slot(record, &mut cs.tel_sampler);
            let total = edges.len();
            let mut subsumed = 0usize;
            for edge in edges {
                result.transitions += 1;
                result.micro_steps += edge.micro;
                cs.edges_since_check += 1;
                if cs.edges_since_check >= DEADLINE_CHECK_EDGES {
                    cs.edges_since_check = 0;
                    if !result.truncated && bounds.deadline_expired() {
                        result.truncated = true;
                        cs.deadline_cut = true;
                    }
                }
                if result
                    .arena
                    .lookup_with_fp_mut(edge.fp, &edge.state)
                    .is_some()
                {
                    subsumed += 1;
                    continue;
                }
                if result.truncated {
                    // Past a budget cut: keep counting the wave's edges
                    // (they were already expanded) but admit no more
                    // states.
                    continue;
                }
                if result.arena.len() >= bounds.max_states {
                    result.truncated = true;
                    continue;
                }
                let (next_id, fresh) = result.arena.intern_with_fp(edge.fp, edge.state);
                debug_assert!(fresh, "lookup missed an interned state");
                next_wave.push(next_id);
            }
            if let Some(started) = started {
                tel.record_batch(Stage::Commit, started.elapsed(), total);
                tel.record_items(Stage::Subsume, subsumed);
            }
        }
    }
}

/// Runs one wave's slots inline on the coordinator: ingress → explore →
/// subsume → commit as phases of one loop iteration per slot, in slot
/// order — the reference semantics every parallel run must reproduce.
#[allow(clippy::too_many_arguments)]
fn run_wave_inline(
    result: &mut Exploration,
    wave: &[StateId],
    next_wave: &mut Vec<StateId>,
    bounds: &Bounds,
    cs: &mut CommitState,
    expand: &dyn Fn(&ProgState) -> Expansion,
    sampler: &mut usize,
    record: bool,
    tel: &mut StageTelemetry,
    terminals: &mut TerminalIds,
) {
    for &id in wave {
        if cs.deadline_cut {
            break;
        }
        let state = result.arena.get_arc_mut(id);
        let started = sample_slot(record, sampler);
        let expansion = expand(&state);
        if let Some(started) = started {
            let n = match &expansion {
                Expansion::Edges(edges) => edges.len(),
                _ => 0,
            };
            tel.record_batch(Stage::Explore, started.elapsed(), n);
        }
        commit_slot(
            result, next_wave, bounds, id, expansion, cs, record, tel, terminals,
        );
    }
}

/// The engine behind [`explore_from`]: a four-stage pipeline over SPSC
/// rings when `jobs > 1`, the same stages inline when `jobs == 1` (and
/// for waves below [`Bounds::small_wave_serial`], where handoff would
/// cost more than it buys).
fn explore_from_impl(
    program: &Program,
    initial: ProgState,
    bounds: &Bounds,
    record: bool,
    tel: &mut StageTelemetry,
) -> Exploration {
    let pool = bounds.pool_for(program);
    let reducer = Reducer::new(program);
    let canon = crate::canon::Canonicalizer::new(program);
    let canon = (bounds.symmetry && canon.enabled()).then_some(&canon);
    let mut result = Exploration {
        arena: StateArena::new(),
        exited: Vec::new(),
        assert_failures: Vec::new(),
        ub_states: Vec::new(),
        stuck: Vec::new(),
        truncated: false,
        transitions: 0,
        micro_steps: 0,
    };
    if let Some(spec) = &bounds.spill {
        result
            .arena
            .enable_spill(spec.clone())
            .unwrap_or_else(|err| panic!("spill: creating {}: {err}", spec.dir.display()));
    }
    let mut terminals = TerminalIds::default();
    let mut checkpoint = bounds.checkpoint.as_ref().map(|spec| {
        ExploreCheckpoint::new(spec.dir.clone(), bounds.semantic_guard(program))
            .unwrap_or_else(|err| panic!("checkpoint: creating {}: {err}", spec.dir.display()))
    });

    // Resume, if asked and a compatible checkpoint exists: rebuild the
    // arena by re-interning the saved prefix in order (ids are interning
    // order, so they land where they were), then continue the wave loop
    // from the saved frontier. Any defect in the checkpoint falls back to
    // a cold start.
    let mut wave: Vec<StateId> = Vec::new();
    let resume_ok = bounds.checkpoint.as_ref().is_some_and(|s| s.resume)
        && checkpoint
            .as_mut()
            .and_then(|ck| ck.try_resume())
            .map(|data| {
                for (i, (fp, state)) in data.states.into_iter().enumerate() {
                    let (id, fresh) = result.arena.intern_with_fp(fp, state);
                    assert!(
                        fresh && id.index() == i,
                        "checkpoint states must re-intern densely"
                    );
                }
                wave = data.wave.into_iter().map(StateId).collect();
                result.transitions = data.transitions as usize;
                result.micro_steps = data.micro_steps as usize;
                terminals = data.terminals;
                for (ids, list) in [
                    (&terminals.exited, &mut result.exited),
                    (&terminals.assert_failures, &mut result.assert_failures),
                    (&terminals.ub_states, &mut result.ub_states),
                    (&terminals.stuck, &mut result.stuck),
                ] {
                    for &id in ids {
                        list.push(result.arena.get_arc_mut(StateId(id)));
                    }
                }
            })
            .is_some();
    if !resume_ok {
        let initial = match canon {
            Some(canon) => canon.canonicalize(initial).0,
            None => initial,
        };
        let (root, _) = result.arena.intern(initial);
        wave = vec![root];
    }

    // The explore stage: successor enumeration for one state. The lean
    // enumeration — no per-edge `Step` vectors or intermediate state
    // clones — exploration only needs micro counts and endpoints. Reads
    // nothing but the state itself, so workers never touch the arena and
    // the commit stage can intern concurrently with expansion.
    let expand_state = |state: &ProgState| -> Expansion {
        if state.is_terminal() {
            return Expansion::Terminal;
        }
        let edges = reducer.successors(state, &pool, bounds.max_buffer, bounds.reduction);
        if edges.is_empty() {
            return Expansion::Stuck;
        }
        Expansion::Edges(
            edges
                .into_iter()
                .map(|(micro, next)| {
                    // Canonicalize before fingerprinting so the arena
                    // interns (and hashes) only canonical representatives.
                    let next = match canon {
                        Some(canon) => canon.canonicalize(next).0,
                        None => next,
                    };
                    Edge {
                        fp: StateArena::fingerprint(&next),
                        micro,
                        state: next,
                    }
                })
                .collect(),
        )
    };

    let workers = bounds.jobs.max(1);
    let mut explore_sampler = 0usize;
    if workers == 1 {
        // Inline pipeline: ingress/explore/subsume/commit run as phases of
        // one loop iteration per slot, in slot order — the reference
        // semantics every parallel run must reproduce.
        while !wave.is_empty() && !result.truncated {
            if let Some(ck) = checkpoint.as_mut() {
                ck.save(
                    &mut result.arena,
                    &wave,
                    result.transitions,
                    result.micro_steps,
                    &terminals,
                );
            }
            if bounds.deadline_expired() {
                result.truncated = true;
                break;
            }
            let mut next_wave: Vec<StateId> = Vec::new();
            let mut cs = CommitState::default();
            let wave_started = record.then(Instant::now);
            run_wave_inline(
                &mut result,
                &wave,
                &mut next_wave,
                bounds,
                &mut cs,
                &expand_state,
                &mut explore_sampler,
                record,
                tel,
                &mut terminals,
            );
            if let Some(started) = wave_started {
                // Ingress batches time a whole wave's coordination
                // (dispatch through final commit): the wave wall-time
                // curve against wave width.
                tel.record_batch(Stage::Ingress, started.elapsed(), wave.len());
            }
            wave = next_wave;
        }
    } else {
        // Pinned-role pipeline: this thread is ingress + subsume + commit;
        // `workers` explore threads each own one in-ring and one out-ring.
        // The wave is cut into [`EXPAND_BATCH`]-slot batches; batch `b`
        // always goes to worker `b % workers`, and each SPSC ring is FIFO,
        // so popping out-ring `b % workers` when committing batch `b`
        // yields exactly batch `b` — serial wave order, no reordering.
        std::thread::scope(|scope| {
            let expand = &expand_state;
            let mut in_txs = Vec::with_capacity(workers);
            let mut out_rxs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (in_tx, mut in_rx) = ring::<Job>(RING_CAPACITY);
                let (mut out_tx, out_rx) = ring::<(usize, Vec<Expansion>)>(RING_CAPACITY);
                in_txs.push(in_tx);
                out_rxs.push(out_rx);
                handles.push(scope.spawn(move || {
                    let mut worker_tel = StageTelemetry::new();
                    let mut sampler = 0usize;
                    loop {
                        match in_rx.pop() {
                            Job::Shutdown => break,
                            Job::Expand(batch_ix, states) => {
                                let mut expansions = Vec::with_capacity(states.len());
                                for state in &states {
                                    let started = sample_slot(record, &mut sampler);
                                    let expansion = expand(state);
                                    if let Some(started) = started {
                                        let n = match &expansion {
                                            Expansion::Edges(edges) => edges.len(),
                                            _ => 0,
                                        };
                                        worker_tel.record_batch(
                                            Stage::Explore,
                                            started.elapsed(),
                                            n,
                                        );
                                    }
                                    expansions.push(expansion);
                                }
                                out_tx.push((batch_ix, expansions));
                            }
                        }
                    }
                    worker_tel
                }));
            }

            while !wave.is_empty() && !result.truncated {
                if let Some(ck) = checkpoint.as_mut() {
                    ck.save(
                        &mut result.arena,
                        &wave,
                        result.transitions,
                        result.micro_steps,
                        &terminals,
                    );
                }
                if bounds.deadline_expired() {
                    result.truncated = true;
                    break;
                }
                let mut next_wave: Vec<StateId> = Vec::new();
                let mut cs = CommitState::default();
                let ingress_started = record.then(Instant::now);
                if wave.len() < bounds.small_wave_serial {
                    // Narrow frontier: ring handoff costs more than the
                    // parallelism buys. The inline path is the reference
                    // semantics, so falling back cannot change results.
                    run_wave_inline(
                        &mut result,
                        &wave,
                        &mut next_wave,
                        bounds,
                        &mut cs,
                        expand,
                        &mut explore_sampler,
                        record,
                        tel,
                        &mut terminals,
                    );
                } else {
                    let nbatches = wave.len().div_ceil(EXPAND_BATCH);
                    let mut next_ingress = 0usize;
                    let mut next_commit = 0usize;
                    // A built batch the target ring refused: faulting its
                    // states may have cost page reads, so keep it until
                    // the ring accepts rather than rebuilding.
                    let mut pending: Option<(usize, Vec<Arc<ProgState>>)> = None;
                    let mut backoff = Backoff::new();
                    while next_commit < nbatches {
                        if cs.deadline_cut {
                            // Drain in-flight batches uncommitted and
                            // uncounted: the run is over, only ring
                            // hygiene remains (workers must not block on
                            // full rings).
                            while next_commit < next_ingress {
                                if out_rxs[next_commit % workers].try_pop().is_some() {
                                    next_commit += 1;
                                } else {
                                    backoff.snooze();
                                }
                            }
                            break;
                        }
                        // Ingress: feed workers round-robin while rings
                        // accept, one batch of consecutive slots at a time.
                        loop {
                            let (batch_ix, states) = match pending.take() {
                                Some(batch) => batch,
                                None if next_ingress < nbatches => {
                                    let start = next_ingress * EXPAND_BATCH;
                                    let end = (start + EXPAND_BATCH).min(wave.len());
                                    let states = wave[start..end]
                                        .iter()
                                        .map(|&id| result.arena.get_arc_mut(id))
                                        .collect();
                                    (next_ingress, states)
                                }
                                None => break,
                            };
                            match in_txs[batch_ix % workers].try_push(Job::Expand(batch_ix, states))
                            {
                                Ok(()) => {
                                    next_ingress += 1;
                                    backoff.reset();
                                }
                                Err(Job::Expand(batch_ix, states)) => {
                                    pending = Some((batch_ix, states));
                                    break;
                                }
                                Err(Job::Shutdown) => unreachable!("only Expand is pushed here"),
                            }
                        }
                        // Commit: strictly the next batch in wave order,
                        // slot by slot.
                        if next_commit < next_ingress {
                            if let Some((batch_ix, expansions)) =
                                out_rxs[next_commit % workers].try_pop()
                            {
                                debug_assert_eq!(batch_ix, next_commit, "out-ring order broken");
                                let start = batch_ix * EXPAND_BATCH;
                                for (offset, expansion) in expansions.into_iter().enumerate() {
                                    if cs.deadline_cut {
                                        break;
                                    }
                                    commit_slot(
                                        &mut result,
                                        &mut next_wave,
                                        bounds,
                                        wave[start + offset],
                                        expansion,
                                        &mut cs,
                                        record,
                                        tel,
                                        &mut terminals,
                                    );
                                }
                                next_commit += 1;
                                backoff.reset();
                                continue;
                            }
                        }
                        backoff.snooze();
                    }
                }
                if let Some(started) = ingress_started {
                    tel.record_batch(Stage::Ingress, started.elapsed(), wave.len());
                }
                wave = next_wave;
            }

            for in_tx in &mut in_txs {
                in_tx.push(Job::Shutdown);
            }
            for handle in handles {
                let worker_tel = handle.join().expect("explore worker panicked");
                if record {
                    tel.merge(&worker_tel);
                }
            }
        });
    }

    // A clean, complete run needs no resume point; leaving one behind
    // would make a later `--resume` of the same directory skip work it
    // should redo under different budgets.
    if !result.truncated {
        if let Some(ck) = checkpoint.as_mut() {
            ck.clear();
        }
    }
    // Spill counters surface through telemetry only: they depend on fault
    // order (and thus the worker count), so they are diagnostics, never
    // part of the byte-identity surface.
    if let Some(counters) = result.arena.spill_counters() {
        for (name, value) in counters {
            tel.counters_mut().add(name, value);
        }
    }

    // Canonical order: terminal classes are sets, not traces. Sorting makes
    // the output independent of visit order and thus of the worker count.
    result.exited.sort_unstable();
    result.assert_failures.sort_unstable();
    result.ub_states.sort_unstable();
    result.stuck.sort_unstable();
    result
}

/// Runs `program` to completion under a deterministic scheduler: the
/// lowest-numbered thread with an enabled instruction step goes first
/// (taking the first enabled nondet candidate), drains happen only when no
/// instruction step is enabled.
///
/// # Errors
///
/// Returns a message if the program deadlocks or exceeds
/// [`Bounds::max_steps`].
pub fn run_to_completion(program: &Program, bounds: &Bounds) -> Result<ProgState, String> {
    let mut state = initial_state(program)?;
    let pool = bounds.pool_for(program);
    for _ in 0..bounds.max_steps {
        if state.is_terminal() {
            return Ok(state);
        }
        let successors = enabled_steps(program, &state, &pool, bounds.max_buffer);
        let chosen = successors
            .iter()
            .find(|(step, _)| matches!(step.kind, StepKind::Instr { .. }))
            .or_else(|| successors.first());
        match chosen {
            Some((_, next)) => state = next.clone(),
            None => return Err(format!("deadlock: no enabled steps\n{state}")),
        }
    }
    Err("run did not terminate within the step bound".to_string())
}

/// Replays an explicit step sequence from the initial state, returning every
/// intermediate state. Disabled steps are errors (unlike `next_state`, which
/// stutters), making this suitable for counterexample validation.
pub fn replay(
    program: &Program,
    steps: &[Step],
    max_buffer: usize,
) -> Result<Vec<ProgState>, String> {
    let mut states = vec![initial_state(program)?];
    for (index, step) in steps.iter().enumerate() {
        let current = states.last().expect("nonempty");
        match try_step(program, current, step, max_buffer) {
            Some(next) => states.push(next),
            None => return Err(format!("step {index} is not enabled")),
        }
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use armada_lang::{check_module, parse_module};
    use std::collections::BTreeSet;

    fn program(src: &str) -> Program {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, &module.levels[0].name.clone()).expect("lower")
    }

    #[test]
    fn runs_sequential_program() {
        let p = program(
            r#"level L {
                var x: uint32;
                void main() {
                    var i: uint32 := 0;
                    while (i < 5) { i := i + 1; }
                    x := i;
                    print(x);
                }
            }"#,
        );
        let final_state = run_to_completion(&p, &Bounds::small()).unwrap();
        assert_eq!(final_state.termination, Termination::Exited);
        assert_eq!(final_state.log, vec![crate::value::Value::MathInt(5)]);
    }

    #[test]
    fn runs_two_threads_with_join() {
        let p = program(
            r#"level L {
                var x: uint32;
                void worker(v: uint32) { x := v; fence; }
                void main() {
                    var t: uint64 := create_thread worker(7);
                    join t;
                    var got: uint32 := x;
                    print(got);
                }
            }"#,
        );
        let final_state = run_to_completion(&p, &Bounds::small()).unwrap();
        assert_eq!(final_state.termination, Termination::Exited);
        assert_eq!(final_state.log, vec![crate::value::Value::MathInt(7)]);
    }

    #[test]
    fn exploration_finds_assert_failure_in_one_interleaving() {
        // Without synchronization, the reader may observe either value;
        // asserting it sees 1 must fail in some interleaving.
        let p = program(
            r#"level L {
                var x: uint32;
                void writer() { x := 1; }
                void main() {
                    var t: uint64 := create_thread writer();
                    var got: uint32 := x;
                    assert got == 1;
                    join t;
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(
            !exploration.assert_failures.is_empty(),
            "racy assert must fail somewhere"
        );
        assert!(!exploration.exited.is_empty(), "and succeed somewhere else");
    }

    #[test]
    fn tso_store_buffering_is_observable() {
        // Writer buffers x := 1 without a fence; a reader thread may see 0
        // even after the writer's statement has executed. We detect this by
        // asserting the *writer-side* flag protocol fails without fences:
        // writer sets x then y; reader sees y==1 but x==0 — impossible under
        // SC with a same-thread order, possible under TSO? No: TSO preserves
        // FIFO order of one thread's writes. What TSO *does* allow is a
        // thread reading its own write early. We check exactly that:
        // main writes x:=1 (buffered), reads it back as 1 while the worker
        // still reads 0.
        let p = program(
            r#"level L {
                var x: uint32;
                var seen: uint32;
                void worker() { var v: uint32 := x; seen := v; fence; }
                void main() {
                    var t: uint64 := create_thread worker();
                    x := 1;
                    var mine: uint32 := x;
                    assert mine == 1;
                    join t;
                    var other: uint32 := seen;
                    print(other);
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(
            exploration.assert_failures.is_empty(),
            "own writes are always visible"
        );
        let logs: BTreeSet<_> = exploration
            .exited
            .iter()
            .map(|s| s.log.iter().map(|v| v.to_string()).collect::<Vec<_>>())
            .collect();
        // The worker may have read 0 (write still buffered) or 1 (drained).
        assert!(
            logs.contains(&vec!["0".to_string()]),
            "buffered write invisible: {logs:?}"
        );
        assert!(
            logs.contains(&vec!["1".to_string()]),
            "drained write visible: {logs:?}"
        );
    }

    #[test]
    fn ub_is_a_terminal_state() {
        let p = program(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    dealloc p;
                    *p := 1;
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(!exploration.ub_states.is_empty());
        assert!(exploration.exited.is_empty());
    }

    const RACY: &str = r#"level L {
        var x: uint32;
        void writer() { x := 1; }
        void main() {
            var t: uint64 := create_thread writer();
            var got: uint32 := x;
            assert got == 1;
            join t;
        }
    }"#;

    #[test]
    fn parallel_exploration_matches_serial() {
        // A racy program with several interleavings and terminal classes;
        // every field of the result must agree between jobs=1 and jobs=4.
        let p = program(RACY);
        for reduction in [true, false] {
            let bounds = Bounds::small().with_reduction(reduction);
            let serial = explore(&p, &bounds);
            // Threshold 0 forces the ring pipeline even on RACY's narrow
            // waves, which is the path under test.
            let mut par_bounds = bounds.clone().with_jobs(4);
            par_bounds.small_wave_serial = 0;
            let parallel = explore(&p, &par_bounds);
            assert_eq!(serial.arena, parallel.arena);
            assert_eq!(serial.exited, parallel.exited);
            assert_eq!(serial.assert_failures, parallel.assert_failures);
            assert_eq!(serial.ub_states, parallel.ub_states);
            assert_eq!(serial.stuck, parallel.stuck);
            assert_eq!(serial.transitions, parallel.transitions);
            assert_eq!(serial.micro_steps, parallel.micro_steps);
            assert_eq!(serial.truncated, parallel.truncated);
        }
    }

    #[test]
    fn truncation_is_identical_across_job_counts() {
        // Truncation used to diverge: serial returned mid-successor-loop
        // while parallel kept draining the frontier. The wave engine
        // commits in wave order for any worker count, so the cut — and
        // every count — is deterministic. Check several tiny budgets.
        let p = program(RACY);
        for max_states in [1, 2, 3, 5, 8, 13] {
            let mut bounds = Bounds::small();
            bounds.max_states = max_states;
            bounds.small_wave_serial = 0;
            let serial = explore(&p, &bounds);
            let parallel = explore(&p, &bounds.clone().with_jobs(4));
            assert!(serial.truncated, "max_states={max_states} must truncate");
            assert_eq!(serial.arena, parallel.arena, "max_states={max_states}");
            assert!(serial.arena.len() <= max_states);
            assert_eq!(
                serial.transitions, parallel.transitions,
                "max_states={max_states}"
            );
            assert_eq!(serial.exited, parallel.exited);
            assert_eq!(serial.assert_failures, parallel.assert_failures);
            assert_eq!(serial.stuck, parallel.stuck);
            assert_eq!(serial.truncated, parallel.truncated);
        }
    }

    #[test]
    fn pipeline_matches_serial_at_many_job_counts() {
        // The ring pipeline must reproduce the inline engine exactly at
        // any worker count, including counts above the wave width.
        let p = program(RACY);
        let serial = explore(&p, &Bounds::small());
        for jobs in [2, 3, 8] {
            let mut bounds = Bounds::small().with_jobs(jobs);
            bounds.small_wave_serial = 0;
            let parallel = explore(&p, &bounds);
            assert_eq!(serial.arena, parallel.arena, "jobs={jobs}");
            assert_eq!(serial.exited, parallel.exited, "jobs={jobs}");
            assert_eq!(serial.transitions, parallel.transitions, "jobs={jobs}");
            assert_eq!(serial.micro_steps, parallel.micro_steps, "jobs={jobs}");
        }
    }

    #[test]
    fn telemetry_does_not_change_the_exploration() {
        let p = program(RACY);
        for jobs in [1, 4] {
            let mut bounds = Bounds::small().with_jobs(jobs);
            bounds.small_wave_serial = 0;
            let plain = explore(&p, &bounds);
            let (instrumented, telemetry) = explore_with_telemetry(&p, &bounds);
            assert_eq!(plain.arena, instrumented.arena, "jobs={jobs}");
            assert_eq!(plain.exited, instrumented.exited, "jobs={jobs}");
            assert_eq!(plain.transitions, instrumented.transitions, "jobs={jobs}");
            assert_eq!(plain.truncated, instrumented.truncated, "jobs={jobs}");
            assert!(
                !telemetry.is_empty(),
                "jobs={jobs}: instrumented run must record batches"
            );
            assert!(
                telemetry
                    .latency(armada_runtime::telemetry::Stage::Explore)
                    .count()
                    > 0,
                "jobs={jobs}: explore stage must have latency samples"
            );
        }
    }

    #[test]
    fn expired_deadline_truncates_identically_across_job_counts() {
        // A zero deadline expires at the first wave boundary: every job
        // count reports just the interned root, truncated, zero edges.
        let p = program(RACY);
        for jobs in [1, 2, 8] {
            let bounds = Bounds::small()
                .with_jobs(jobs)
                .with_deadline(std::time::Duration::ZERO);
            let e = explore(&p, &bounds);
            assert!(e.truncated, "jobs={jobs}");
            assert_eq!(e.arena.len(), 1, "jobs={jobs}");
            assert_eq!(e.transitions, 0, "jobs={jobs}");
        }
    }

    #[test]
    fn small_wave_fallback_is_identical_to_the_ring_path() {
        // RACY's waves are all narrower than the default threshold, so a
        // jobs=4 run with defaults takes the inline fallback throughout;
        // with threshold 0 every wave takes the ring pipeline. Both must
        // match the serial reference exactly.
        let p = program(RACY);
        let serial = explore(&p, &Bounds::small());
        let fallback = explore(&p, &Bounds::small().with_jobs(4));
        let mut ring_bounds = Bounds::small().with_jobs(4);
        ring_bounds.small_wave_serial = 0;
        let ring = explore(&p, &ring_bounds);
        for (tag, e) in [("fallback", &fallback), ("ring", &ring)] {
            assert_eq!(serial.arena, e.arena, "{tag}");
            assert_eq!(serial.exited, e.exited, "{tag}");
            assert_eq!(serial.assert_failures, e.assert_failures, "{tag}");
            assert_eq!(serial.stuck, e.stuck, "{tag}");
            assert_eq!(serial.transitions, e.transitions, "{tag}");
            assert_eq!(serial.micro_steps, e.micro_steps, "{tag}");
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("armada-explore-{tag}-{}", std::process::id()))
    }

    #[test]
    fn spilled_exploration_is_identical_to_resident() {
        // A 1-byte cap forces every sealed page out; tiny pages force
        // sealing early. The explored space, counters, and terminal
        // classes must not change, and the spill counters must show the
        // pager actually worked.
        let p = program(RACY);
        let plain = explore(&p, &Bounds::small());
        let dir = tmp("spill");
        for jobs in [1, 4] {
            let mut spec = crate::pager::SpillSpec::new(1, dir.clone());
            spec.page_states = 4;
            let mut bounds = Bounds::small().with_jobs(jobs).with_spill(spec);
            bounds.small_wave_serial = 0;
            let (spilled, telemetry) = explore_with_telemetry(&p, &bounds);
            assert_eq!(plain.arena, spilled.arena, "jobs={jobs}");
            assert_eq!(plain.exited, spilled.exited, "jobs={jobs}");
            assert_eq!(
                plain.assert_failures, spilled.assert_failures,
                "jobs={jobs}"
            );
            assert_eq!(plain.ub_states, spilled.ub_states, "jobs={jobs}");
            assert_eq!(plain.stuck, spilled.stuck, "jobs={jobs}");
            assert_eq!(plain.transitions, spilled.transitions, "jobs={jobs}");
            assert_eq!(plain.micro_steps, spilled.micro_steps, "jobs={jobs}");
            assert_eq!(plain.truncated, spilled.truncated, "jobs={jobs}");
            assert!(
                telemetry.counters().get("spill.evictions") > 0,
                "jobs={jobs}: a 1-byte cap must evict"
            );
            assert!(
                telemetry.counters().get("spill.misses") > 0,
                "jobs={jobs}: evicted pages must fault back"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_exploration_is_identical_to_uninterrupted() {
        let p = program(RACY);
        let plain = explore(&p, &Bounds::small());
        for jobs in [1, 4] {
            let dir = tmp(&format!("resume-{jobs}"));
            let _ = std::fs::remove_dir_all(&dir);
            let spec = crate::checkpoint::CheckpointSpec::new(dir.clone());

            // Interrupted run: a zero deadline kills it at the first wave
            // boundary — after the boundary checkpoint was saved.
            let cut = explore(
                &p,
                &Bounds::small()
                    .with_jobs(jobs)
                    .with_checkpoint(spec.clone())
                    .with_deadline(std::time::Duration::ZERO),
            );
            assert!(cut.truncated, "jobs={jobs}");

            // Resume without the deadline: must finish and match the
            // uninterrupted run field for field.
            let resumed = explore(
                &p,
                &Bounds::small()
                    .with_jobs(jobs)
                    .with_checkpoint(spec.clone().with_resume(true)),
            );
            assert_eq!(plain.arena, resumed.arena, "jobs={jobs}");
            assert_eq!(plain.exited, resumed.exited, "jobs={jobs}");
            assert_eq!(
                plain.assert_failures, resumed.assert_failures,
                "jobs={jobs}"
            );
            assert_eq!(plain.ub_states, resumed.ub_states, "jobs={jobs}");
            assert_eq!(plain.stuck, resumed.stuck, "jobs={jobs}");
            assert_eq!(plain.transitions, resumed.transitions, "jobs={jobs}");
            assert_eq!(plain.micro_steps, resumed.micro_steps, "jobs={jobs}");
            assert!(!resumed.truncated, "jobs={jobs}");
            assert!(
                !dir.join("manifest.bin").exists(),
                "jobs={jobs}: clean completion clears the checkpoint"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_after_a_budget_cut_continues_under_a_raised_budget() {
        // A max_states cut mid-run leaves a checkpoint from the last wave
        // boundary; resuming with the full budget continues from there and
        // lands on the uninterrupted result.
        let p = program(RACY);
        let plain = explore(&p, &Bounds::small());
        let dir = tmp("resume-budget");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = crate::checkpoint::CheckpointSpec::new(dir.clone());
        let mut small_budget = Bounds::small().with_checkpoint(spec.clone());
        small_budget.max_states = 3;
        let cut = explore(&p, &small_budget);
        assert!(cut.truncated);
        let resumed = explore(&p, &Bounds::small().with_checkpoint(spec.with_resume(true)));
        assert_eq!(plain.arena, resumed.arena);
        assert_eq!(plain.exited, resumed.exited);
        assert_eq!(plain.transitions, resumed.transitions);
        assert_eq!(plain.micro_steps, resumed.micro_steps);
        assert!(!resumed.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_a_mismatched_guard_starts_cold_and_still_finishes() {
        // Changing a semantic knob (nondet pool) invalidates the guard:
        // resume refuses the stale checkpoint, clears it, and the run
        // completes cold with the new semantics.
        let p = program(RACY);
        let dir = tmp("resume-guard");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = crate::checkpoint::CheckpointSpec::new(dir.clone());
        let cut = explore(
            &p,
            &Bounds::small()
                .with_checkpoint(spec.clone())
                .with_deadline(std::time::Duration::ZERO),
        );
        assert!(cut.truncated);
        let mut changed = Bounds::small().with_checkpoint(spec.with_resume(true));
        changed.nondet_ints = vec![0, 1];
        let resumed = explore(&p, &changed);
        assert!(!resumed.truncated, "cold start must still finish");
        let reference = {
            let mut b = Bounds::small();
            b.nondet_ints = vec![0, 1];
            explore(&p, &b)
        };
        assert_eq!(reference.arena, resumed.arena);
        assert_eq!(reference.exited, resumed.exited);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reduction_preserves_terminal_classes() {
        let p = program(RACY);
        let with = explore(&p, &Bounds::small().with_reduction(true));
        let without = explore(&p, &Bounds::small().with_reduction(false));
        let logs = |e: &Exploration| -> BTreeSet<Vec<String>> {
            e.exited
                .iter()
                .map(|s| s.log.iter().map(|v| v.to_string()).collect())
                .collect()
        };
        let assert_pcs = |e: &Exploration| -> BTreeSet<String> {
            e.assert_failures
                .iter()
                .map(|s| format!("{:?}", s.termination))
                .collect()
        };
        assert_eq!(logs(&with), logs(&without));
        assert_eq!(assert_pcs(&with), assert_pcs(&without));
        assert_eq!(with.ub_states.is_empty(), without.ub_states.is_empty());
        assert_eq!(with.stuck.is_empty(), without.stuck.is_empty());
        // Reduction must actually shrink the explored graph here: the racy
        // program has local steps (thread-local reads of `got`).
        assert!(
            with.arena.len() <= without.arena.len(),
            "reduction should not grow the space"
        );
        assert_eq!(without.micro_steps, without.transitions);
        assert!(with.micro_steps >= with.transitions);
    }

    #[test]
    fn replay_validates_step_sequences() {
        let p = program("level L { var x: uint32; void main() { x := 1; } }");
        let steps = vec![Step::instr(crate::state::MAIN_TID)];
        let states = replay(&p, &steps, 8).unwrap();
        assert_eq!(states.len(), 2);
        // Replaying a disabled step errors.
        let bad = vec![Step::drain(crate::state::MAIN_TID)];
        assert!(replay(&p, &bad, 8).is_err());
    }
}

//! Bounded exhaustive exploration of a program's state space, and a
//! deterministic scheduler for single runs.
//!
//! Exploration enumerates *all* interleavings — instruction steps of every
//! thread plus store-buffer drain steps at every point — up to configurable
//! bounds, with nondeterministic values drawn from a finite candidate pool.
//! This is the executable substitute for the paper's Dafny/Z3 backend: the
//! refinement checker in `armada-verify` walks these state graphs, and
//! strategy failure tests rely on exploration surfacing assertion failures,
//! UB, and ownership violations.
//!
//! Exploration is parallel when [`Bounds::jobs`] > 1: a work-stealing
//! frontier (shared queue, idle workers sleep on a condvar) with a sharded
//! seen-set (`jobs * 4` mutex-protected hash sets keyed by state hash) so
//! membership checks on distinct states rarely contend. The reachable set is
//! a fixpoint, so any completion order yields the same result; terminal
//! states are sorted before returning, making serial and parallel runs
//! byte-identical whenever the exploration is not truncated.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::program::{Instr, Program};
use crate::state::{initial_state, ProgState, Termination};
use crate::step::{enabled_steps, try_step, Step, StepKind};
use crate::value::Value;

fn collect_expr_literals(expr: &armada_lang::ast::Expr, out: &mut Vec<i128>) {
    use armada_lang::ast::ExprKind::*;
    match &expr.kind {
        IntLit(value) => out.push(*value),
        Unary(_, a)
        | AddrOf(a)
        | Deref(a)
        | Old(a)
        | Allocated(a)
        | AllocatedArray(a)
        | Field(a, _) => collect_expr_literals(a, out),
        Binary(_, a, b) | Index(a, b) => {
            collect_expr_literals(a, out);
            collect_expr_literals(b, out);
        }
        Call(_, args) | SeqLit(args) => {
            for a in args {
                collect_expr_literals(a, out);
            }
        }
        Forall { lo, hi, body, .. } | Exists { lo, hi, body, .. } => {
            collect_expr_literals(lo, out);
            collect_expr_literals(hi, out);
            collect_expr_literals(body, out);
        }
        _ => {}
    }
}

fn collect_instr_literals(instr: &Instr, out: &mut Vec<i128>) {
    match instr {
        Instr::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                collect_expr_literals(e, out);
            }
        }
        Instr::Guard { cond, .. } | Instr::Assert(cond) | Instr::Assume(cond) => {
            collect_expr_literals(cond, out)
        }
        Instr::Somehow {
            requires,
            modifies,
            ensures,
        } => {
            for e in requires.iter().chain(modifies).chain(ensures) {
                collect_expr_literals(e, out);
            }
        }
        Instr::Call { args, .. } | Instr::Print(args) => {
            for e in args {
                collect_expr_literals(e, out);
            }
        }
        Instr::CreateThread { into, args, .. } => {
            for e in args {
                collect_expr_literals(e, out);
            }
            if let Some(e) = into {
                collect_expr_literals(e, out);
            }
        }
        Instr::Calloc { into, count, .. } => {
            collect_expr_literals(into, out);
            collect_expr_literals(count, out);
        }
        Instr::Malloc { into, .. } => collect_expr_literals(into, out),
        Instr::Dealloc(e) | Instr::Join(e) => collect_expr_literals(e, out),
        Instr::Ret { value: Some(e) } => collect_expr_literals(e, out),
        _ => {}
    }
}

/// Bounds for exhaustive exploration and scheduled runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Maximum scheduler steps for [`run_to_completion`].
    pub max_steps: usize,
    /// Maximum distinct states to visit before truncating.
    pub max_states: usize,
    /// Integer candidates for `*` sites and unsolved `somehow` havoc.
    pub nondet_ints: Vec<i128>,
    /// Store-buffer capacity per thread; writes stall when full, which both
    /// matches finite hardware buffers and bounds the state space.
    pub max_buffer: usize,
    /// Worker threads for exploration and refinement checking. `1` (the
    /// default) runs fully serial; results are identical for any value
    /// (absent truncation) — parallelism only changes wall-clock time.
    pub jobs: usize,
    /// Wall-clock deadline for graceful degradation. `None` (the default)
    /// never expires. Checked *cooperatively* — at wave boundaries in the
    /// refinement checker, between expansions in exploration — so an
    /// expired deadline yields a truncated-but-reported partial result, not
    /// a hang and not a mid-wave nondeterministic cut.
    pub deadline: Option<std::time::Instant>,
}

impl Bounds {
    /// Small bounds suitable for unit tests and case-study models.
    pub fn small() -> Bounds {
        Bounds {
            max_steps: 200_000,
            max_states: 250_000,
            nondet_ints: vec![0, 1, 2],
            max_buffer: 2,
            jobs: 1,
            deadline: None,
        }
    }

    /// The same bounds with `jobs` worker threads (0 is clamped to 1).
    pub fn with_jobs(mut self, jobs: usize) -> Bounds {
        self.jobs = jobs.max(1);
        self
    }

    /// The same bounds with a wall-clock deadline `budget` from now.
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Bounds {
        self.deadline = Some(std::time::Instant::now() + budget);
        self
    }

    /// True once the wall-clock deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| std::time::Instant::now() >= deadline)
    }

    /// The nondet candidate pool: booleans, the configured integers, and
    /// `null`.
    pub fn pool(&self) -> Vec<Value> {
        let mut pool = vec![Value::Bool(true), Value::Bool(false)];
        pool.extend(self.nondet_ints.iter().map(|&i| Value::MathInt(i)));
        pool.push(Value::Ptr(None));
        pool
    }

    /// The candidate pool for `program`: the base pool plus every integer
    /// literal the program mentions. Nondeterministic choices that must hit
    /// a program constant to enable a path (e.g. `x := *; assume x == 7;`)
    /// are unreachable otherwise.
    pub fn pool_for(&self, program: &Program) -> Vec<Value> {
        let mut pool = self.pool();
        let mut literals: Vec<i128> = Vec::new();
        for routine in &program.routines {
            for instr in &routine.instrs {
                collect_instr_literals(instr, &mut literals);
            }
        }
        literals.sort_unstable();
        literals.dedup();
        for literal in literals.into_iter().take(16) {
            let value = Value::MathInt(literal);
            if !pool.contains(&value) {
                pool.push(value);
            }
        }
        pool
    }
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds::small()
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every distinct state visited.
    pub visited: BTreeSet<ProgState>,
    /// Distinct terminal states, by kind.
    pub exited: Vec<ProgState>,
    /// States terminated by assertion failure.
    pub assert_failures: Vec<ProgState>,
    /// States terminated by undefined behavior.
    pub ub_states: Vec<ProgState>,
    /// States with no enabled steps that are not terminal (deadlocks under
    /// the bounds, e.g. a join that can never fire).
    pub stuck: Vec<ProgState>,
    /// Whether the exploration hit `max_states` and stopped early.
    pub truncated: bool,
    /// Total transitions taken.
    pub transitions: usize,
}

impl Exploration {
    /// True if no assertion failure or UB state was reached and exploration
    /// completed without truncation.
    pub fn clean(&self) -> bool {
        self.assert_failures.is_empty() && self.ub_states.is_empty() && !self.truncated
    }
}

/// Exhaustively explores the reachable states of `program` under `bounds`.
///
/// # Panics
///
/// Panics if the initial state cannot be built (bad global initializer);
/// lowered, type-checked programs never hit this.
pub fn explore(program: &Program, bounds: &Bounds) -> Exploration {
    let initial = initial_state(program).expect("initial state");
    explore_from(program, initial, bounds)
}

/// Exhaustively explores from a given state, with [`Bounds::jobs`] worker
/// threads.
///
/// Serial and parallel runs return identical (sorted) results whenever the
/// exploration completes without truncation; a truncated parallel run may
/// cut the state space at a different point than a serial one.
pub fn explore_from(program: &Program, initial: ProgState, bounds: &Bounds) -> Exploration {
    let mut result = if bounds.jobs > 1 {
        explore_parallel(program, initial, bounds)
    } else {
        explore_serial(program, initial, bounds)
    };
    // Canonical order: terminal classes are sets, not traces. Sorting makes
    // the output independent of visit order and thus of the worker count.
    result.exited.sort_unstable();
    result.assert_failures.sort_unstable();
    result.ub_states.sort_unstable();
    result.stuck.sort_unstable();
    result
}

fn explore_serial(program: &Program, initial: ProgState, bounds: &Bounds) -> Exploration {
    let pool = bounds.pool_for(program);
    let mut result = Exploration {
        visited: BTreeSet::new(),
        exited: Vec::new(),
        assert_failures: Vec::new(),
        ub_states: Vec::new(),
        stuck: Vec::new(),
        truncated: false,
        transitions: 0,
    };
    let mut frontier = VecDeque::new();
    result.visited.insert(initial.clone());
    frontier.push_back(initial);
    while let Some(state) = frontier.pop_front() {
        if bounds.deadline_expired() {
            result.truncated = true;
            return result;
        }
        match &state.termination {
            Termination::Exited => {
                result.exited.push(state);
                continue;
            }
            Termination::AssertFailed(_) => {
                result.assert_failures.push(state);
                continue;
            }
            Termination::UndefinedBehavior(_) => {
                result.ub_states.push(state);
                continue;
            }
            Termination::Running => {}
        }
        let successors = enabled_steps(program, &state, &pool, bounds.max_buffer);
        if successors.is_empty() {
            result.stuck.push(state);
            continue;
        }
        for (_, next) in successors {
            result.transitions += 1;
            if result.visited.contains(&next) {
                continue;
            }
            if result.visited.len() >= bounds.max_states {
                result.truncated = true;
                return result;
            }
            result.visited.insert(next.clone());
            frontier.push_back(next);
        }
    }
    result
}

/// The shared frontier of the parallel exploration: a work queue plus the
/// in-flight count, so workers can distinguish "momentarily empty" from
/// "globally done" (queue empty AND nobody is expanding).
struct Frontier {
    queue: Mutex<(VecDeque<ProgState>, usize)>,
    wake: Condvar,
}

impl Frontier {
    /// Pops work, blocking while the queue is empty but expansions are in
    /// flight. `None` means the exploration is complete.
    fn claim(&self) -> Option<ProgState> {
        let mut guard = self.queue.lock().expect("frontier poisoned");
        loop {
            if let Some(state) = guard.0.pop_front() {
                guard.1 += 1;
                return Some(state);
            }
            if guard.1 == 0 {
                // Termination: wake every sleeping worker so they see it.
                self.wake.notify_all();
                return None;
            }
            guard = self.wake.wait(guard).expect("frontier poisoned");
        }
    }

    fn publish(&self, state: ProgState) {
        let mut guard = self.queue.lock().expect("frontier poisoned");
        guard.0.push_back(state);
        self.wake.notify_one();
    }

    fn finish_expansion(&self) {
        let mut guard = self.queue.lock().expect("frontier poisoned");
        guard.1 -= 1;
        if guard.1 == 0 && guard.0.is_empty() {
            self.wake.notify_all();
        }
    }
}

/// The sharded seen-set: `shards.len()` hash sets, each behind its own
/// mutex, indexed by the state's hash. Inserts of distinct states land on
/// distinct shards with high probability, so workers rarely contend.
struct ShardedSeen {
    shards: Vec<Mutex<HashSet<ProgState>>>,
    population: AtomicUsize,
}

impl ShardedSeen {
    fn new(shard_count: usize) -> ShardedSeen {
        ShardedSeen {
            shards: (0..shard_count)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            population: AtomicUsize::new(0),
        }
    }

    /// Inserts `state`, returning true if it was new.
    fn insert(&self, state: &ProgState) -> bool {
        let mut hasher = DefaultHasher::new();
        state.hash(&mut hasher);
        let shard = (hasher.finish() as usize) % self.shards.len();
        let mut guard = self.shards[shard].lock().expect("seen shard poisoned");
        if guard.insert(state.clone()) {
            self.population.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

fn explore_parallel(program: &Program, initial: ProgState, bounds: &Bounds) -> Exploration {
    let pool = bounds.pool_for(program);
    let seen = ShardedSeen::new(bounds.jobs * 4);
    let frontier = Frontier {
        queue: Mutex::new((VecDeque::new(), 0)),
        wake: Condvar::new(),
    };
    let truncated = AtomicBool::new(false);
    seen.insert(&initial);
    frontier.publish(initial);

    // Each worker accumulates locally and the partial results are merged
    // after the scope joins — no contention on the result vectors.
    let partials: Vec<Mutex<Exploration>> = (0..bounds.jobs)
        .map(|_| {
            Mutex::new(Exploration {
                visited: BTreeSet::new(),
                exited: Vec::new(),
                assert_failures: Vec::new(),
                ub_states: Vec::new(),
                stuck: Vec::new(),
                truncated: false,
                transitions: 0,
            })
        })
        .collect();

    std::thread::scope(|scope| {
        for partial in &partials {
            scope.spawn(|| {
                let mut local = partial.lock().expect("partial poisoned");
                while let Some(state) = frontier.claim() {
                    if bounds.deadline_expired() {
                        truncated.store(true, Ordering::Relaxed);
                        frontier.finish_expansion();
                        continue;
                    }
                    match &state.termination {
                        Termination::Exited => {
                            local.exited.push(state);
                            frontier.finish_expansion();
                            continue;
                        }
                        Termination::AssertFailed(_) => {
                            local.assert_failures.push(state);
                            frontier.finish_expansion();
                            continue;
                        }
                        Termination::UndefinedBehavior(_) => {
                            local.ub_states.push(state);
                            frontier.finish_expansion();
                            continue;
                        }
                        Termination::Running => {}
                    }
                    let successors = enabled_steps(program, &state, &pool, bounds.max_buffer);
                    if successors.is_empty() {
                        local.stuck.push(state);
                        frontier.finish_expansion();
                        continue;
                    }
                    for (_, next) in successors {
                        local.transitions += 1;
                        if seen.population.load(Ordering::Relaxed) >= bounds.max_states {
                            truncated.store(true, Ordering::Relaxed);
                            continue;
                        }
                        if seen.insert(&next) {
                            frontier.publish(next);
                        }
                    }
                    frontier.finish_expansion();
                }
            });
        }
    });

    let mut result = Exploration {
        visited: BTreeSet::new(),
        exited: Vec::new(),
        assert_failures: Vec::new(),
        ub_states: Vec::new(),
        stuck: Vec::new(),
        truncated: truncated.load(Ordering::Relaxed),
        transitions: 0,
    };
    for partial in partials {
        let mut local = partial.into_inner().expect("partial poisoned");
        result.exited.append(&mut local.exited);
        result.assert_failures.append(&mut local.assert_failures);
        result.ub_states.append(&mut local.ub_states);
        result.stuck.append(&mut local.stuck);
        result.transitions += local.transitions;
    }
    // The sharded seen-set is exactly the serial `visited`: every state
    // ever discovered, terminal or not.
    for shard in seen.shards {
        result
            .visited
            .extend(shard.into_inner().expect("seen shard poisoned"));
    }
    result
}

/// Runs `program` to completion under a deterministic scheduler: the
/// lowest-numbered thread with an enabled instruction step goes first
/// (taking the first enabled nondet candidate), drains happen only when no
/// instruction step is enabled.
///
/// # Errors
///
/// Returns a message if the program deadlocks or exceeds
/// [`Bounds::max_steps`].
pub fn run_to_completion(program: &Program, bounds: &Bounds) -> Result<ProgState, String> {
    let mut state = initial_state(program)?;
    let pool = bounds.pool_for(program);
    for _ in 0..bounds.max_steps {
        if state.is_terminal() {
            return Ok(state);
        }
        let successors = enabled_steps(program, &state, &pool, bounds.max_buffer);
        let chosen = successors
            .iter()
            .find(|(step, _)| matches!(step.kind, StepKind::Instr { .. }))
            .or_else(|| successors.first());
        match chosen {
            Some((_, next)) => state = next.clone(),
            None => return Err(format!("deadlock: no enabled steps\n{state}")),
        }
    }
    Err("run did not terminate within the step bound".to_string())
}

/// Replays an explicit step sequence from the initial state, returning every
/// intermediate state. Disabled steps are errors (unlike `next_state`, which
/// stutters), making this suitable for counterexample validation.
pub fn replay(
    program: &Program,
    steps: &[Step],
    max_buffer: usize,
) -> Result<Vec<ProgState>, String> {
    let mut states = vec![initial_state(program)?];
    for (index, step) in steps.iter().enumerate() {
        let current = states.last().expect("nonempty");
        match try_step(program, current, step, max_buffer) {
            Some(next) => states.push(next),
            None => return Err(format!("step {index} is not enabled")),
        }
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use armada_lang::{check_module, parse_module};

    fn program(src: &str) -> Program {
        let module = parse_module(src).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        lower(&typed, &module.levels[0].name.clone()).expect("lower")
    }

    #[test]
    fn runs_sequential_program() {
        let p = program(
            r#"level L {
                var x: uint32;
                void main() {
                    var i: uint32 := 0;
                    while (i < 5) { i := i + 1; }
                    x := i;
                    print(x);
                }
            }"#,
        );
        let final_state = run_to_completion(&p, &Bounds::small()).unwrap();
        assert_eq!(final_state.termination, Termination::Exited);
        assert_eq!(final_state.log, vec![crate::value::Value::MathInt(5)]);
    }

    #[test]
    fn runs_two_threads_with_join() {
        let p = program(
            r#"level L {
                var x: uint32;
                void worker(v: uint32) { x := v; fence; }
                void main() {
                    var t: uint64 := create_thread worker(7);
                    join t;
                    var got: uint32 := x;
                    print(got);
                }
            }"#,
        );
        let final_state = run_to_completion(&p, &Bounds::small()).unwrap();
        assert_eq!(final_state.termination, Termination::Exited);
        assert_eq!(final_state.log, vec![crate::value::Value::MathInt(7)]);
    }

    #[test]
    fn exploration_finds_assert_failure_in_one_interleaving() {
        // Without synchronization, the reader may observe either value;
        // asserting it sees 1 must fail in some interleaving.
        let p = program(
            r#"level L {
                var x: uint32;
                void writer() { x := 1; }
                void main() {
                    var t: uint64 := create_thread writer();
                    var got: uint32 := x;
                    assert got == 1;
                    join t;
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(
            !exploration.assert_failures.is_empty(),
            "racy assert must fail somewhere"
        );
        assert!(!exploration.exited.is_empty(), "and succeed somewhere else");
    }

    #[test]
    fn tso_store_buffering_is_observable() {
        // Writer buffers x := 1 without a fence; a reader thread may see 0
        // even after the writer's statement has executed. We detect this by
        // asserting the *writer-side* flag protocol fails without fences:
        // writer sets x then y; reader sees y==1 but x==0 — impossible under
        // SC with a same-thread order, possible under TSO? No: TSO preserves
        // FIFO order of one thread's writes. What TSO *does* allow is a
        // thread reading its own write early. We check exactly that:
        // main writes x:=1 (buffered), reads it back as 1 while the worker
        // still reads 0.
        let p = program(
            r#"level L {
                var x: uint32;
                var seen: uint32;
                void worker() { var v: uint32 := x; seen := v; fence; }
                void main() {
                    var t: uint64 := create_thread worker();
                    x := 1;
                    var mine: uint32 := x;
                    assert mine == 1;
                    join t;
                    var other: uint32 := seen;
                    print(other);
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(
            exploration.assert_failures.is_empty(),
            "own writes are always visible"
        );
        let logs: BTreeSet<_> = exploration
            .exited
            .iter()
            .map(|s| s.log.iter().map(|v| v.to_string()).collect::<Vec<_>>())
            .collect();
        // The worker may have read 0 (write still buffered) or 1 (drained).
        assert!(
            logs.contains(&vec!["0".to_string()]),
            "buffered write invisible: {logs:?}"
        );
        assert!(
            logs.contains(&vec!["1".to_string()]),
            "drained write visible: {logs:?}"
        );
    }

    #[test]
    fn ub_is_a_terminal_state() {
        let p = program(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    dealloc p;
                    *p := 1;
                }
            }"#,
        );
        let exploration = explore(&p, &Bounds::small());
        assert!(!exploration.ub_states.is_empty());
        assert!(exploration.exited.is_empty());
    }

    #[test]
    fn parallel_exploration_matches_serial() {
        // A racy program with several interleavings and terminal classes;
        // every field of the result must agree between jobs=1 and jobs=4.
        let p = program(
            r#"level L {
                var x: uint32;
                void writer() { x := 1; }
                void main() {
                    var t: uint64 := create_thread writer();
                    var got: uint32 := x;
                    assert got == 1;
                    join t;
                }
            }"#,
        );
        let serial = explore(&p, &Bounds::small());
        let parallel = explore(&p, &Bounds::small().with_jobs(4));
        assert_eq!(serial.visited, parallel.visited);
        assert_eq!(serial.exited, parallel.exited);
        assert_eq!(serial.assert_failures, parallel.assert_failures);
        assert_eq!(serial.ub_states, parallel.ub_states);
        assert_eq!(serial.stuck, parallel.stuck);
        assert_eq!(serial.transitions, parallel.transitions);
        assert_eq!(serial.truncated, parallel.truncated);
    }

    #[test]
    fn replay_validates_step_sequences() {
        let p = program("level L { var x: uint32; void main() { x := 1; } }");
        let steps = vec![Step::instr(crate::state::MAIN_TID)];
        let states = replay(&p, &steps, 8).unwrap();
        assert_eq!(states.len(), 2);
        // Replaying a disabled step errors.
        let bad = vec![Step::drain(crate::state::MAIN_TID)];
        assert!(replay(&p, &bad, 8).is_err());
    }
}

//! # armada-sm
//!
//! Small-step state-machine semantics for Armada programs (§3.2 of the
//! paper), executable in Rust.
//!
//! An Armada [`armada_lang::ast::Level`] is *lowered* ([`lower()`]) into a
//! [`Program`]: a set of routines, each a flat list of micro-instructions
//! with structured control flow compiled to guarded branches. A program
//! state ([`ProgState`]) holds the set of threads (each with a program
//! counter, a stack of frames, and an x86-TSO store buffer), a forest-shaped
//! heap, ghost state, the observable event log, and the termination status —
//! undefined behavior is a *terminating state* (§3.2.3), not a stuck one.
//!
//! Every source of nondeterminism (the `*` expression, `somehow` havoc,
//! scheduling, store-buffer drains) is encapsulated in a [`Step`] object so
//! that [`next_state`] is a deterministic total function, mirroring §4.1's
//! annotated behaviors. [`enabled_steps`] enumerates the steps available in
//! a state under configurable [`Bounds`], and [`explore()`] exhaustively
//! enumerates the reachable state space.
//!
//! # Example
//!
//! ```
//! use armada_lang::{parse_module, check_module};
//! use armada_sm::{lower, run_to_completion, Bounds};
//!
//! let module = parse_module(
//!     "level L { var x: uint32; void main() { x := 41; x := 42; print(x); } }",
//! ).unwrap();
//! let typed = check_module(&module).unwrap();
//! let program = lower(&typed, "L").unwrap();
//! let final_state = run_to_completion(&program, &Bounds::small()).unwrap();
//! assert_eq!(final_state.log.len(), 1);
//! ```

pub mod arena;
pub mod canon;
pub mod checkpoint;
pub mod codec;
pub mod effects;
pub mod eval;
pub mod explore;
pub mod heap;
pub mod lower;
pub mod pager;
pub mod program;
pub mod reduce;
pub mod state;
pub mod step;
pub mod value;

pub use arena::{StateArena, StateId};
pub use canon::Canonicalizer;
pub use checkpoint::CheckpointSpec;
pub use explore::{explore, explore_with_telemetry, run_to_completion, Bounds, Exploration};
pub use heap::{Heap, Location, MemNode, ObjectId, PtrVal};
pub use lower::{lower, LowerError};
pub use pager::SpillSpec;
pub use program::{Instr, Pc, Program, Routine};
pub use reduce::{macro_steps, MacroStep, Reducer};
pub use state::{initial_state, ProgState, Termination, ThreadState, Tid};
pub use step::{enabled_steps, next_state, try_step, Step, StepKind};
pub use value::{UbReason, Value};

//! Wave-boundary checkpointing for the exploration engine.
//!
//! The engine commits in deterministic wave order, so a wave boundary is a
//! complete, replayable description of progress: the arena prefix (the
//! seen set, in interning order), the frontier of ids, the transition
//! counters, and the terminal-class id lists. A checkpoint is exactly
//! that, persisted **log-structured**:
//!
//! - `states.log` — append-only: one checksummed record per interned
//!   state, written incrementally (only states new since the last save).
//! - `manifest.bin` — small, rewritten atomically each save
//!   ([`crate::codec::write_atomic`]): a semantic guard, the count of
//!   valid states, the valid byte length of the log, the frontier, and
//!   the counters.
//!
//! The log is appended and synced *before* the manifest renames into
//! place, so a crash at any instant leaves either the old manifest (whose
//! prefix of the log is intact — the torn tail past its recorded length
//! is ignored and truncated away on resume) or the new one (whose longer
//! prefix was durable first). Resume loads exactly what a completed save
//! wrote, or nothing — in which case the engine starts cold, which is
//! always sound, just slower.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use crate::arena::{StateArena, StateId};
use crate::codec::{self, Dec, Enc};
use crate::state::ProgState;

/// Where (and whether) an engine run checkpoints and resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding `states.log` and `manifest.bin`.
    pub dir: PathBuf,
    /// Attempt to resume from an existing checkpoint in `dir` before
    /// starting cold.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec that checkpoints into `dir` without resuming.
    pub fn new(dir: PathBuf) -> CheckpointSpec {
        CheckpointSpec { dir, resume: false }
    }

    /// The same spec with resume on or off.
    pub fn with_resume(mut self, resume: bool) -> CheckpointSpec {
        self.resume = resume;
        self
    }
}

/// Shadow id lists for the terminal classes, maintained during commit so
/// a save never has to look states back up.
#[derive(Default)]
pub(crate) struct TerminalIds {
    pub exited: Vec<u32>,
    pub assert_failures: Vec<u32>,
    pub ub_states: Vec<u32>,
    pub stuck: Vec<u32>,
}

/// Everything a resumed run needs to continue at a wave boundary.
pub(crate) struct ResumeData {
    /// `(fingerprint, state)` in interning order.
    pub states: Vec<(u64, ProgState)>,
    pub wave: Vec<u32>,
    pub transitions: u64,
    pub micro_steps: u64,
    pub terminals: TerminalIds,
}

const MANIFEST: &str = "manifest.bin";
const STATES_LOG: &str = "states.log";

/// The exploration checkpoint writer/loader for one engine run.
pub(crate) struct ExploreCheckpoint {
    dir: PathBuf,
    guard: u64,
    /// States already appended to the log.
    saved_states: usize,
    /// Valid byte length of the log.
    log_bytes: u64,
}

impl ExploreCheckpoint {
    pub fn new(dir: PathBuf, guard: u64) -> std::io::Result<ExploreCheckpoint> {
        fs::create_dir_all(&dir)?;
        Ok(ExploreCheckpoint {
            dir,
            guard,
            saved_states: 0,
            log_bytes: 0,
        })
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(STATES_LOG)
    }

    /// Attempts to load a checkpoint left by a previous run. Any defect —
    /// missing files, torn manifest, guard mismatch, bad record checksum
    /// — yields `None` and clears the directory for a cold start.
    pub fn try_resume(&mut self) -> Option<ResumeData> {
        match self.load() {
            Some(data) => {
                // Drop any torn tail past the manifest's valid length so
                // future appends extend a clean prefix.
                if let Ok(file) = fs::OpenOptions::new().write(true).open(self.log_path()) {
                    let _ = file.set_len(self.log_bytes);
                }
                Some(data)
            }
            None => {
                self.clear();
                None
            }
        }
    }

    fn load(&mut self) -> Option<ResumeData> {
        let payload = codec::read_verified(&self.manifest_path()).ok()?;
        let mut d = Dec::new(&payload);
        let guard = d.u64().ok()?;
        if guard != self.guard {
            return None;
        }
        let count = d.len_of().ok()?;
        let log_bytes = d.u64().ok()?;
        let wave_len = d.len_of().ok()?;
        let mut wave = Vec::with_capacity(wave_len);
        for _ in 0..wave_len {
            wave.push(d.u32().ok()?);
        }
        let transitions = d.u64().ok()?;
        let micro_steps = d.u64().ok()?;
        let mut terminals = TerminalIds::default();
        for list in [
            &mut terminals.exited,
            &mut terminals.assert_failures,
            &mut terminals.ub_states,
            &mut terminals.stuck,
        ] {
            let n = d.len_of().ok()?;
            for _ in 0..n {
                list.push(d.u32().ok()?);
            }
        }
        if !d.at_end() {
            return None;
        }

        let raw = fs::read(self.log_path()).ok()?;
        if (raw.len() as u64) < log_bytes {
            return None;
        }
        let mut d = Dec::new(&raw[..log_bytes as usize]);
        let mut states = Vec::with_capacity(count);
        for _ in 0..count {
            let fp = d.u64().ok()?;
            let bytes = d.bytes().ok()?;
            let checksum = d.u64().ok()?;
            if codec::fnv1a_64(&bytes) != checksum {
                return None;
            }
            let state = codec::state_from_bytes(&bytes).ok()?;
            states.push((fp, state));
        }
        if !d.at_end() {
            return None;
        }
        // Frontier and terminal ids must point into the loaded prefix.
        let in_range = |id: &u32| (*id as usize) < count;
        if !wave.iter().all(in_range)
            || !terminals.exited.iter().all(in_range)
            || !terminals.assert_failures.iter().all(in_range)
            || !terminals.ub_states.iter().all(in_range)
            || !terminals.stuck.iter().all(in_range)
        {
            return None;
        }
        self.saved_states = count;
        self.log_bytes = log_bytes;
        Some(ResumeData {
            states,
            wave,
            transitions,
            micro_steps,
            terminals,
        })
    }

    /// Removes checkpoint files (cold start, or cleanup after a clean
    /// completion).
    pub fn clear(&mut self) {
        let _ = fs::remove_file(self.manifest_path());
        let _ = fs::remove_file(self.log_path());
        self.saved_states = 0;
        self.log_bytes = 0;
    }

    /// Persists the wave boundary: appends states `saved_states..` to the
    /// log, syncs it, then atomically rewrites the manifest.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure — a checkpoint directory that stops
    /// accepting writes is an operator problem; continuing silently would
    /// leave a stale checkpoint pretending to be current.
    pub fn save(
        &mut self,
        arena: &mut StateArena,
        wave: &[StateId],
        transitions: usize,
        micro_steps: usize,
        terminals: &TerminalIds,
    ) {
        if arena.len() > self.saved_states {
            let mut enc = Enc::new();
            for id in self.saved_states..arena.len() {
                let state = arena.get_arc_mut(StateId(id as u32));
                let bytes = codec::state_to_bytes(&state);
                enc.u64(arena.fp_of(StateId(id as u32)));
                enc.bytes(&bytes);
                enc.u64(codec::fnv1a_64(&bytes));
            }
            let chunk = enc.into_bytes();
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.log_path())
                .unwrap_or_else(|err| panic!("checkpoint: opening states.log: {err}"));
            file.write_all(&chunk)
                .and_then(|()| file.sync_all())
                .unwrap_or_else(|err| panic!("checkpoint: appending states.log: {err}"));
            self.saved_states = arena.len();
            self.log_bytes += chunk.len() as u64;
        }

        let mut enc = Enc::new();
        enc.u64(self.guard);
        enc.len_of(self.saved_states);
        enc.u64(self.log_bytes);
        enc.len_of(wave.len());
        for id in wave {
            enc.u32(id.0);
        }
        enc.u64(transitions as u64);
        enc.u64(micro_steps as u64);
        for list in [
            &terminals.exited,
            &terminals.assert_failures,
            &terminals.ub_states,
            &terminals.stuck,
        ] {
            enc.len_of(list.len());
            for id in list {
                enc.u32(*id);
            }
        }
        codec::write_atomic(&self.manifest_path(), &enc.into_bytes())
            .unwrap_or_else(|err| panic!("checkpoint: writing manifest: {err}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Bounds};
    use crate::lower::lower;

    fn program() -> crate::program::Program {
        let module = armada_lang::parse_module(
            "level L { var x: uint32; void main() { while (x < 30) { x := x + 1; } print(x); } }",
        )
        .unwrap();
        let typed = armada_lang::check_module(&module).unwrap();
        lower(&typed, "L").unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("armada-ck-{tag}-{}", std::process::id()))
    }

    #[test]
    fn save_load_round_trips_a_boundary() {
        let prog = program();
        let result = explore(&prog, &Bounds::small());
        let mut arena = result.arena;
        let dir = tmp("rt");
        let _ = fs::remove_dir_all(&dir);
        let mut ck = ExploreCheckpoint::new(dir.clone(), 7).unwrap();
        let wave: Vec<StateId> = vec![StateId(0), StateId(2)];
        let mut terminals = TerminalIds::default();
        terminals.exited.push(3);
        // Two incremental saves: the second appends nothing new but must
        // still refresh the manifest.
        ck.save(&mut arena, &wave, 10, 15, &terminals);
        ck.save(&mut arena, &wave, 11, 16, &terminals);

        let mut reader = ExploreCheckpoint::new(dir.clone(), 7).unwrap();
        let data = reader.try_resume().expect("resume");
        assert_eq!(data.states.len(), arena.len());
        for (i, (fp, state)) in data.states.iter().enumerate() {
            assert_eq!(*fp, arena.fp_of(StateId(i as u32)));
            assert_eq!(state, arena.get(StateId(i as u32)));
        }
        assert_eq!(data.wave, vec![0, 2]);
        assert_eq!(data.transitions, 11);
        assert_eq!(data.micro_steps, 16);
        assert_eq!(data.terminals.exited, vec![3]);

        // Wrong guard: refuse and clear.
        let mut wrong = ExploreCheckpoint::new(dir.clone(), 8).unwrap();
        assert!(wrong.try_resume().is_none());
        assert!(!dir.join(MANIFEST).exists(), "mismatch clears the files");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_and_torn_log_fall_back_to_cold_start() {
        let prog = program();
        let mut arena = explore(&prog, &Bounds::small()).arena;
        let dir = tmp("torn");
        let _ = fs::remove_dir_all(&dir);
        let mut ck = ExploreCheckpoint::new(dir.clone(), 1).unwrap();
        ck.save(&mut arena, &[StateId(0)], 1, 1, &TerminalIds::default());

        // A torn tail past the manifest's recorded length is ignored.
        {
            let mut file = fs::OpenOptions::new()
                .append(true)
                .open(dir.join(STATES_LOG))
                .unwrap();
            file.write_all(b"torn-partial-record").unwrap();
        }
        let mut reader = ExploreCheckpoint::new(dir.clone(), 1).unwrap();
        let data = reader.try_resume().expect("torn tail is harmless");
        assert_eq!(data.states.len(), arena.len());

        // A torn (truncated) manifest is rejected entirely.
        let manifest = dir.join(MANIFEST);
        let raw = fs::read(&manifest).unwrap();
        fs::write(&manifest, &raw[..raw.len() / 2]).unwrap();
        let mut reader = ExploreCheckpoint::new(dir.clone(), 1).unwrap();
        assert!(reader.try_resume().is_none());
        assert!(
            !dir.join(STATES_LOG).exists(),
            "failed resume clears the directory for a cold start"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Runtime values of the Armada state machine.

use armada_lang::ast::{IntType, Type};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::heap::PtrVal;

/// A first-class runtime value.
///
/// Machine values (`Int`, `Bool`, `Ptr`) are what compiled code manipulates;
/// the remaining variants are ghost values usable in specifications and
/// proof levels. All variants are totally ordered so values can be set/map
/// keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A fixed-width machine integer; the payload is kept in range by
    /// construction via [`IntType::wrap`].
    Int {
        /// The integer type, determining the wrap-around behavior.
        ty: IntType,
        /// The value, within `ty`'s range.
        val: i128,
    },
    /// A mathematical (ghost) integer. We bound it to `i128`; case studies
    /// and benchmarks stay far below this, and overflow panics rather than
    /// wraps, so the bound cannot silently change a proof outcome.
    MathInt(i128),
    /// A boolean.
    Bool(bool),
    /// A pointer, `None` for `null`.
    Ptr(Option<PtrVal>),
    /// A ghost sequence.
    Seq(Vec<Value>),
    /// A ghost finite set.
    Set(BTreeSet<Value>),
    /// A ghost finite map.
    Map(BTreeMap<Value, Value>),
    /// A ghost option.
    Opt(Option<Box<Value>>),
}

impl Value {
    /// Creates a fixed-width integer, wrapping into range.
    pub fn int(ty: IntType, val: i128) -> Value {
        Value::Int {
            ty,
            val: ty.wrap(val),
        }
    }

    /// Creates the unsigned 64-bit value used for thread ids.
    pub fn tid(val: u64) -> Value {
        Value::int(IntType::U64, val as i128)
    }

    /// The numeric payload of an integer value, if it is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int { val, .. } => Some(*val),
            Value::MathInt(val) => Some(*val),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The pointer payload, if this is a pointer.
    pub fn as_ptr(&self) -> Option<&Option<PtrVal>> {
        match self {
            Value::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// True if the value is numeric (fixed-width or mathematical).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int { .. } | Value::MathInt(_))
    }

    /// The default (zero) value of a type: 0, false, null, empty collections.
    /// Struct and array types are memory trees, not first-class values; the
    /// heap builds their zero layout separately.
    pub fn zero_of(ty: &Type) -> Option<Value> {
        Some(match ty {
            Type::Int(int_ty) => Value::int(*int_ty, 0),
            Type::MathInt => Value::MathInt(0),
            Type::Bool => Value::Bool(false),
            Type::Pointer(_) => Value::Ptr(None),
            Type::Seq(_) => Value::Seq(Vec::new()),
            Type::Set(_) => Value::Set(BTreeSet::new()),
            Type::Map(_, _) => Value::Map(BTreeMap::new()),
            Type::Option(_) => Value::Opt(None),
            Type::Array(_, _) | Type::Named(_) => return None,
        })
    }

    /// Coerces a numeric value to the given target type, wrapping fixed-width
    /// targets. Non-numeric values are returned unchanged.
    pub fn coerce_to(&self, ty: &Type) -> Value {
        match (self, ty) {
            (Value::Int { val, .. } | Value::MathInt(val), Type::Int(int_ty)) => {
                Value::int(*int_ty, *val)
            }
            (Value::Int { val, .. } | Value::MathInt(val), Type::MathInt) => Value::MathInt(*val),
            _ => self.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int { val, .. } => write!(f, "{val}"),
            Value::MathInt(val) => write!(f, "{val}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ptr(None) => write!(f, "null"),
            Value::Ptr(Some(p)) => write!(f, "{p}"),
            Value::Seq(elems) => {
                write!(f, "[")?;
                for (i, elem) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{elem}")?;
                }
                write!(f, "]")
            }
            Value::Set(elems) => {
                write!(f, "{{")?;
                for (i, elem) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{elem}")?;
                }
                write!(f, "}}")
            }
            Value::Map(entries) => {
                write!(f, "map[")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{key} := {value}")?;
                }
                write!(f, "]")
            }
            Value::Opt(None) => write!(f, "none"),
            Value::Opt(Some(inner)) => write!(f, "some({inner})"),
        }
    }
}

/// Why an execution step manifested undefined behavior (§3.2.3–3.2.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UbReason {
    /// Dereference of `null`.
    NullDereference,
    /// Access through a pointer into a freed object, or comparison with one.
    FreedAccess,
    /// Array index or pointer offset outside the object.
    OutOfBounds,
    /// Division or modulus by zero.
    DivisionByZero,
    /// Shift amount negative or at least the operand width.
    InvalidShift,
    /// Ordering comparison (or subtraction) of pointers into different
    /// arrays, which the heap model cannot define (§3.2.4).
    CrossArrayPointerOp,
    /// A `somehow` or external-method precondition was violated.
    RequiresViolated,
    /// `unwrap` of `none`, or `map_get` of an absent key.
    GhostPartialOperation,
    /// `join` of a value that is not a live or exited thread's id.
    InvalidJoin,
    /// `dealloc` of a pointer that is not the root of a live allocation.
    InvalidDealloc,
    /// A ghost-integer operation overflowed the `i128` carrier.
    MathOverflow,
}

impl fmt::Display for UbReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            UbReason::NullDereference => "null dereference",
            UbReason::FreedAccess => "access to freed memory",
            UbReason::OutOfBounds => "out-of-bounds access",
            UbReason::DivisionByZero => "division by zero",
            UbReason::InvalidShift => "invalid shift amount",
            UbReason::CrossArrayPointerOp => "pointer operation across distinct arrays",
            UbReason::RequiresViolated => "precondition violated",
            UbReason::GhostPartialOperation => "partial ghost operation misapplied",
            UbReason::InvalidJoin => "join of an invalid thread id",
            UbReason::InvalidDealloc => "dealloc of a non-allocation",
            UbReason::MathOverflow => "mathematical integer overflow",
        };
        f.write_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_constructor_wraps() {
        assert_eq!(
            Value::int(IntType::U8, 300),
            Value::Int {
                ty: IntType::U8,
                val: 44
            }
        );
        assert_eq!(
            Value::int(IntType::I8, 200),
            Value::Int {
                ty: IntType::I8,
                val: -56
            }
        );
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(&Type::Bool), Some(Value::Bool(false)));
        assert_eq!(
            Value::zero_of(&Type::ptr(Type::Bool)),
            Some(Value::Ptr(None))
        );
        assert_eq!(Value::zero_of(&Type::array(Type::Bool, 3)), None);
    }

    #[test]
    fn coercion_wraps_to_target() {
        let wide = Value::MathInt(257);
        assert_eq!(
            wide.coerce_to(&Type::Int(IntType::U8)),
            Value::int(IntType::U8, 1)
        );
        assert_eq!(wide.coerce_to(&Type::MathInt), Value::MathInt(257));
        // Non-numerics pass through unchanged.
        assert_eq!(
            Value::Bool(true).coerce_to(&Type::Int(IntType::U8)),
            Value::Bool(true)
        );
    }

    #[test]
    fn values_are_ordered_and_usable_as_keys() {
        let mut set = BTreeSet::new();
        set.insert(Value::MathInt(2));
        set.insert(Value::MathInt(1));
        set.insert(Value::Bool(true));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::int(IntType::U32, 7).to_string(), "7");
        assert_eq!(
            Value::Seq(vec![Value::MathInt(1), Value::MathInt(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Opt(None).to_string(), "none");
    }
}

//! Pipeline-level identity gates for the spill pager and wave-boundary
//! checkpoints: a memory-capped run and a killed-then-resumed run must
//! both render byte-identically to a plain uninterrupted run, at any job
//! count. These are the end-to-end versions of the engine-level gates in
//! `armada-sm` and `armada-verify` — they additionally cross the
//! per-recipe checkpoint-scoping and report-assembly layers.

use std::path::PathBuf;
use std::time::Duration;

use armada::sm::{CheckpointSpec, SpillSpec};
use armada::verify::SimConfig;
use armada::{Pipeline, RecipeStatus};

fn subject() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/counter.arm");
    std::fs::read_to_string(path).expect("read specs/counter.arm")
}

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("armada-spill-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(source: &str, sim: SimConfig) -> String {
    let pipeline = Pipeline::from_source(source)
        .expect("subject parses")
        .with_sim_config(sim);
    pipeline.run().expect("no infrastructure error").to_string()
}

#[test]
fn spilled_pipeline_render_matches_resident_at_many_job_counts() {
    let source = subject();
    let plain = run(&source, SimConfig::default());
    for jobs in [1usize, 4] {
        let dir = tmp(&format!("spill-{jobs}"));
        let mut sim = SimConfig::default().with_jobs(jobs);
        // A 1-byte cap forces every sealed page out: the whole search runs
        // through the pager's evict/fault path.
        sim.bounds = sim.bounds.with_spill(SpillSpec::new(1, dir.clone()));
        let spilled = run(&source, sim);
        assert_eq!(plain, spilled, "jobs={jobs}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn deadline_killed_pipeline_resumes_to_identical_report() {
    let source = subject();
    let plain = run(&source, SimConfig::default());
    for jobs in [1usize, 4] {
        let dir = tmp(&format!("ck-{jobs}"));

        // Kill: a zero deadline cuts the check at its first wave boundary,
        // leaving a checkpoint behind.
        let mut cut_sim = SimConfig::default().with_jobs(jobs);
        cut_sim.bounds = cut_sim
            .bounds
            .with_deadline(Duration::ZERO)
            .with_checkpoint(CheckpointSpec::new(dir.clone()));
        let pipeline = Pipeline::from_source(&source)
            .expect("subject parses")
            .with_sim_config(cut_sim);
        let cut = pipeline.run().expect("no infrastructure error");
        assert_eq!(
            cut.worst_status(),
            RecipeStatus::BudgetExhausted,
            "jobs={jobs}: the zero deadline must cut the check"
        );

        // Resume: same module and bounds, deadline lifted.
        let mut resume_sim = SimConfig::default().with_jobs(jobs);
        resume_sim.bounds = resume_sim
            .bounds
            .with_checkpoint(CheckpointSpec::new(dir.clone()).with_resume(true));
        let resumed = run(&source, resume_sim);
        assert_eq!(plain, resumed, "jobs={jobs}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn spill_checkpoint_and_resume_compose() {
    // Both knobs at once: cut a memory-capped run, resume it memory-capped.
    let source = subject();
    let plain = run(&source, SimConfig::default());
    let ck = tmp("both-ck");
    let spill = tmp("both-spill");

    let mut cut_sim = SimConfig::default();
    cut_sim.bounds = cut_sim
        .bounds
        .with_deadline(Duration::ZERO)
        .with_spill(SpillSpec::new(1, spill.clone()))
        .with_checkpoint(CheckpointSpec::new(ck.clone()));
    let pipeline = Pipeline::from_source(&source)
        .expect("subject parses")
        .with_sim_config(cut_sim);
    let cut = pipeline.run().expect("no infrastructure error");
    assert_eq!(cut.worst_status(), RecipeStatus::BudgetExhausted);

    let mut resume_sim = SimConfig::default();
    resume_sim.bounds = resume_sim
        .bounds
        .with_spill(SpillSpec::new(1, spill.clone()))
        .with_checkpoint(CheckpointSpec::new(ck.clone()).with_resume(true));
    let resumed = run(&source, resume_sim);
    assert_eq!(plain, resumed);
    let _ = std::fs::remove_dir_all(&ck);
    let _ = std::fs::remove_dir_all(&spill);
}

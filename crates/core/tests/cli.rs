//! Smoke tests for the `armada` CLI binary: argument parsing, exit codes,
//! and file IO of the tool driver.

use std::process::Command;

fn armada(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_armada"))
        .args(args)
        // Workspace root, so relative spec paths resolve.
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .expect("spawn the armada binary")
}

#[test]
fn verify_subcommand_verifies_the_shipped_spec() {
    let output = armada(&["verify", "specs/counter.arm"]);
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("VERIFIED: Implementation ⊑ SeqCount"));
    assert!(stdout.contains("tso_elim"));
}

#[test]
fn check_and_emit_subcommands_work() {
    let output = armada(&["check", "specs/counter.arm"]);
    assert!(output.status.success());

    let output = armada(&["emit-c", "specs/counter.arm"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("#include \"armada_runtime.h\""));
    assert!(stdout.contains("uint32_t count;"));
}

#[test]
fn bad_usage_and_missing_files_fail_cleanly() {
    let output = armada(&["frobnicate", "specs/counter.arm"]);
    assert!(!output.status.success());

    let output = armada(&["verify", "specs/does_not_exist.arm"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}

#[test]
fn broken_proof_exits_nonzero() {
    let dir = std::env::temp_dir().join("armada_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("broken.arm");
    std::fs::write(
        &path,
        r#"
        level A { void main() { print(1); } }
        level B { void main() { print(2); } }
        proof P { refinement A B weakening }
        "#,
    )
    .expect("write");
    let output = armada(&["verify", path.to_str().expect("utf8 path")]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("NOT VERIFIED"));
}

//! Smoke tests for the `armada` CLI binary: argument parsing, exit codes,
//! and file IO of the tool driver.

use std::process::Command;

fn armada(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_armada"))
        .args(args)
        // Workspace root, so relative spec paths resolve.
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .expect("spawn the armada binary")
}

#[test]
fn verify_subcommand_verifies_the_shipped_spec() {
    let output = armada(&["verify", "specs/counter.arm"]);
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("VERIFIED: Implementation ⊑ SeqCount"));
    assert!(stdout.contains("tso_elim"));
}

#[test]
fn check_and_emit_subcommands_work() {
    let output = armada(&["check", "specs/counter.arm"]);
    assert!(output.status.success());

    let output = armada(&["emit-c", "specs/counter.arm"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("#include \"armada_runtime.h\""));
    assert!(stdout.contains("uint32_t count;"));
}

/// Every shipped spec must verify: `specs/` is the CLI's public face, and
/// a spec that rots into NOT VERIFIED is a regression even if no unit test
/// mentions it.
#[test]
fn specs_smoke() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let mut checked = 0;
    for entry in std::fs::read_dir(specs_dir).expect("read specs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|ext| ext != "arm") {
            continue;
        }
        let rel = format!("specs/{}", path.file_name().unwrap().to_str().unwrap());
        let output = armada(&["verify", &rel, "--jobs", "2"]);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success() && stdout.contains("VERIFIED:"),
            "{rel} did not verify\nstdout: {stdout}\nstderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        checked += 1;
    }
    assert!(checked >= 4, "expected at least 4 specs, found {checked}");
}

/// `--fault-seed` exercises the outcome-class exit codes: an injected
/// worker panic exits 4, an injected budget exhaustion exits 3, and both
/// report the outcome without losing the run.
#[test]
fn fault_injection_exit_codes_classify_outcomes() {
    // Seeds chosen empirically for specs/counter.arm's recipe name; the
    // fate is a pure function of (seed, name) so this is stable.
    let output = armada(&["verify", "specs/counter.arm", "--fault-seed", "3"]);
    assert_eq!(output.status.code(), Some(4));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("crashed"), "stdout: {stdout}");
    assert!(stdout.contains("injected fault"), "stdout: {stdout}");

    let output = armada(&["verify", "specs/counter.arm", "--fault-seed", "7"]);
    assert_eq!(output.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("budget exhausted"), "stdout: {stdout}");
}

/// `--cert-cache`: the second run reuses the first run's certificate and
/// says so.
#[test]
fn cert_cache_flag_round_trips() {
    let dir = std::env::temp_dir().join("armada_cli_cert_cache_test");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = format!("--cert-cache={}", dir.display());

    let output = armada(&["verify", "specs/tracepoint.arm", &cache]);
    assert!(output.status.success());
    let first = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(first.contains("cert cache miss"), "stdout: {first}");

    let output = armada(&["verify", "specs/tracepoint.arm", &cache]);
    assert!(output.status.success());
    let second = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(second.contains("cert cache hit"), "stdout: {second}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_and_missing_files_fail_cleanly() {
    let output = armada(&["frobnicate", "specs/counter.arm"]);
    assert!(!output.status.success());

    let output = armada(&["verify", "specs/does_not_exist.arm"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}

#[test]
fn broken_proof_exits_nonzero() {
    let dir = std::env::temp_dir().join("armada_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("broken.arm");
    std::fs::write(
        &path,
        r#"
        level A { void main() { print(1); } }
        level B { void main() { print(2); } }
        proof P { refinement A B weakening }
        "#,
    )
    .expect("write");
    let output = armada(&["verify", path.to_str().expect("utf8 path")]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("NOT VERIFIED"));
}

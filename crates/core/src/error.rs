//! Structured pipeline errors.
//!
//! `Pipeline::from_source` and `Pipeline::run` used to fail with bare
//! `String`s, which threw away exactly the context a caller (or a service
//! wrapping many runs) needs to act: *which* recipe failed, and *where* in
//! the source. [`PipelineError`] keeps the front end's [`LangError`] intact
//! (span and stage included) and tags every per-recipe infrastructure
//! failure with the recipe's name and declaration span.
//!
//! These are *infrastructure* errors — the module could not be processed at
//! all. Proof failures, refuted refinements, exhausted budgets, and isolated
//! worker crashes are not errors: they are per-recipe outcomes inside the
//! [`crate::PipelineReport`].

use std::fmt;

use armada_lang::span::Span;
use armada_lang::LangError;

/// Why the pipeline could not process a module.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Lexing, parsing, resolution, or type checking failed. The inner
    /// error carries the stage and source span.
    FrontEnd(LangError),
    /// A recipe could not even be attempted: it references an unknown
    /// level, a level that fails to lower, or a strategy precondition the
    /// engine cannot set up.
    Recipe {
        /// The failing recipe's name.
        recipe: String,
        /// The recipe's declaration span in the module source.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// A fault-event specification (`armada fuzz --events`) is invalid: a
    /// token is malformed, names an unknown fate, or repeats an earlier
    /// token. Repeats are rejected rather than deduplicated because a
    /// [`crate::fault::FaultPlan`] stores an event *set* — silently
    /// dropping the repeat would misreport what a reproducer injects.
    Events {
        /// The offending `fate:recipe` token, verbatim.
        token: String,
        /// What is wrong with it.
        message: String,
    },
}

impl PipelineError {
    /// The source span most relevant to the failure.
    pub fn span(&self) -> Span {
        match self {
            PipelineError::FrontEnd(e) => e.span(),
            PipelineError::Recipe { span, .. } => *span,
            // Event specs come from the command line, not the module
            // source; there is no meaningful span.
            PipelineError::Events { .. } => Span::default(),
        }
    }

    /// The failing recipe's name, when the failure is recipe-scoped.
    pub fn recipe(&self) -> Option<&str> {
        match self {
            PipelineError::FrontEnd(_) => None,
            PipelineError::Recipe { recipe, .. } => Some(recipe),
            PipelineError::Events { .. } => None,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::FrontEnd(e) => write!(f, "{e}"),
            PipelineError::Recipe {
                recipe,
                span,
                message,
            } => {
                write!(f, "recipe `{recipe}` (at {span}): {message}")
            }
            PipelineError::Events { token, message } => {
                write!(f, "invalid fault event `{token}`: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<LangError> for PipelineError {
    fn from(e: LangError) -> Self {
        PipelineError::FrontEnd(e)
    }
}

/// Legacy bridge: lets `?` keep working in callers that still collect
/// errors as strings (the rendered message is unchanged from the stringly
/// era for front-end failures).
impl From<PipelineError> for String {
    fn from(e: PipelineError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_end_errors_keep_stage_and_span() {
        let lang = LangError::parse(Span::new(0, 1, 3, 9), "expected `;`");
        let err = PipelineError::from(lang.clone());
        assert_eq!(err.to_string(), lang.to_string());
        assert_eq!(err.span(), lang.span());
        assert_eq!(err.recipe(), None);
    }

    #[test]
    fn recipe_errors_name_the_recipe() {
        let err = PipelineError::Recipe {
            recipe: "P2".into(),
            span: Span::new(5, 9, 12, 1),
            message: "unknown level `Mid`".into(),
        };
        assert!(err.to_string().contains("P2"));
        assert!(err.to_string().contains("unknown level `Mid`"));
        assert_eq!(err.recipe(), Some("P2"));
        let as_string: String = err.into();
        assert!(as_string.contains("unknown level"));
    }
}

//! `armada serve`: a fault-tolerant verification daemon.
//!
//! The daemon accepts concurrent verify requests over the length-prefixed
//! JSON protocol ([`crate::proto`]) and runs each through the standard
//! [`Pipeline`](crate::Pipeline), in front of one *shared* certificate
//! hierarchy ([`TieredStore`]): an in-memory LRU tier backed by the
//! crash-safe disk store, so repeat requests are answered from memory,
//! restarts from disk, and cold requests by one bounded verification.
//!
//! Robustness machinery, in request order:
//!
//! * **Load shedding.** Admission is a bounded queue; when it is full the
//!   request is *rejected immediately* with a structured `overloaded`
//!   response carrying `retry_after_ms` — never queued into unbounded
//!   memory, never a dropped connection.
//! * **Herd coalescing.** Requests are keyed by the same content address
//!   the cert store uses ([`CertKey`] over source + bounds; `jobs` and
//!   deadlines are excluded because they never change results). N
//!   concurrent requests for one key cost one verification: the first
//!   becomes the *leader* and enqueues a job, the rest register as waiters
//!   and receive the leader's report — byte-identical, flagged
//!   `coalesced`.
//! * **Deadlines.** Every request gets a wall-clock deadline (its own or
//!   the daemon default) that is threaded into the pipeline's cooperative
//!   deadline ([`Bounds::deadline`]) *and* enforced waiter-side: a waiter
//!   that has not received a result by deadline + grace responds with a
//!   structured `deadline` response and disconnects, unconditionally — a
//!   wedged worker can never hang a client past the grace window. The
//!   verification itself may still finish in the background and populate
//!   the cache for the retry.
//! * **Retries.** A worker that panics outside the pipeline's own
//!   isolation (or is killed by an injected [`ServerFate::WorkerKill`])
//!   is retried with bounded exponential backoff
//!   ([`armada_runtime::ring::Backoff`]); verification is deterministic,
//!   so a retry can only reproduce the fault-free verdict.
//! * **Fault injection.** A [`ServerPlan`] pins [`ServerFate`]s to request
//!   admission ordinals, driving the daemon-level taxonomy (worker kills,
//!   tier-2 corruption under a live reader, accept-path deadline jitter,
//!   same-key storms) for `armada fuzz --serve`.
//!
//! The module is deliberately std-only: `TcpListener` + scoped worker
//! threads + `mpsc`, no async runtime, matching the repo's hermetic-build
//! policy.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use armada_runtime::ring::Backoff;
use armada_runtime::CounterSet;
use armada_verify::store::{CertKey, ReadFault};
use armada_verify::tier::TieredStore;
use armada_verify::SimConfig;

use crate::fault::{ServerFate, ServerPlan};
use crate::proto::{read_frame, write_frame, Request, Response, VerifyRequest};
use crate::Pipeline;

/// Configuration for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Verification worker threads.
    pub workers: usize,
    /// Admission queue depth; a full queue sheds with `overloaded`.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Grace window past the deadline before a waiter gives up with a
    /// structured `deadline` response.
    pub grace: Duration,
    /// Bounded retries for a killed worker (attempts = retries + 1).
    pub retries: usize,
    /// The `retry_after_ms` advice in `overloaded` responses.
    pub retry_after: Duration,
    /// The shared certificate hierarchy every request verifies against.
    pub store: TieredStore,
    /// Baseline bounds for every request (jobs/deadline overridden
    /// per-request).
    pub sim: SimConfig,
    /// Emit cache/serve counter warnings to stderr.
    pub telemetry: bool,
    /// Server-level fault injection (fuzzing only).
    pub plan: ServerPlan,
    /// Test hook: workers block on this gate before verifying, so tests
    /// can deterministically pile up waiters behind one in-flight run.
    pub gate: Option<Arc<Gate>>,
}

impl ServeConfig {
    /// Defaults on an ephemeral localhost port with the given store.
    pub fn new(store: TieredStore) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            default_deadline: Duration::from_secs(30),
            grace: Duration::from_secs(5),
            retries: 2,
            retry_after: Duration::from_millis(50),
            store,
            sim: SimConfig::default(),
            telemetry: false,
            plan: ServerPlan::new(),
            gate: None,
        }
    }
}

/// A held-until-released barrier (test hook; see [`ServeConfig::gate`]).
#[derive(Debug, Default)]
pub struct Gate {
    held: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    /// A gate workers will block on until [`Gate::release`].
    pub fn held() -> Arc<Gate> {
        Arc::new(Gate {
            held: Mutex::new(true),
            released: Condvar::new(),
        })
    }

    /// An open gate ([`Gate::wait`] returns immediately until
    /// [`Gate::hold`]).
    pub fn open() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Closes the gate again: workers dequeuing after this block until the
    /// next [`Gate::release`].
    pub fn hold(&self) {
        *self.held.lock().expect("gate lock") = true;
    }

    /// Opens the gate (idempotent); blocked workers proceed.
    pub fn release(&self) {
        let mut held = self.held.lock().expect("gate lock");
        *held = false;
        self.released.notify_all();
    }

    fn wait(&self) {
        let mut held = self.held.lock().expect("gate lock");
        while *held {
            held = self.released.wait(held).expect("gate lock");
        }
    }
}

/// Monotonic daemon counters, shared with in-process tests and rendered
/// through the telemetry layer for `stats` requests.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    verifications: AtomicU64,
    waiters: AtomicU64,
    coalesced: AtomicU64,
    sheds: AtomicU64,
    retries: AtomicU64,
    deadline_timeouts: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServeStats {
    /// Verify requests admitted (the admission-ordinal source).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Underlying pipeline runs actually started (coalescing and cache
    /// hits both keep this below `requests`; a cache hit still runs the
    /// pipeline, so only coalescing reduces it).
    pub fn verifications(&self) -> u64 {
        self.verifications.load(Ordering::SeqCst)
    }

    /// Waiters registered on in-flight runs, leaders included.
    pub fn waiters(&self) -> u64 {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Requests that rode another request's run (waiters minus leaders).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::SeqCst)
    }

    /// Requests shed with `overloaded`.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::SeqCst)
    }

    /// Worker attempts retried after a kill.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    /// Waiters that gave up with a structured `deadline` response.
    pub fn deadline_timeouts(&self) -> u64 {
        self.deadline_timeouts.load(Ordering::SeqCst)
    }

    /// Connections with unreadable or malformed requests.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::SeqCst)
    }

    /// The counters as a [`CounterSet`] (the `stats` response payload,
    /// merged with the store's cache counters by the daemon).
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.add("serve.requests", self.requests());
        set.add("serve.verifications", self.verifications());
        set.add("serve.waiters", self.waiters());
        set.add("serve.coalesced", self.coalesced());
        set.add("serve.sheds", self.sheds());
        set.add("serve.retries", self.retries());
        set.add("serve.deadline_timeouts", self.deadline_timeouts());
        set.add("serve.protocol_errors", self.protocol_errors());
        set
    }
}

/// What one verification produced, delivered to every waiter of its key.
#[derive(Debug)]
struct Outcome {
    exit_code: u8,
    verified: bool,
    render: String,
    /// Combined witness digest of the run's certificates (empty when the
    /// run produced none). Coalesced waiters share the leader's `Outcome`
    /// by `Arc`, so every frame of a storm carries the same digest by
    /// construction.
    witness: String,
}

/// One queued verification job (the leader's request).
struct Job {
    coalesce_key: String,
    source: String,
    sim: SimConfig,
    ordinal: usize,
}

struct InFlight {
    waiters: Vec<mpsc::Sender<Arc<Outcome>>>,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    stats: ServeStats,
    inflight: Mutex<HashMap<String, InFlight>>,
    stop: AtomicBool,
    config: ServeConfig,
}

/// A running daemon. Dropping the handle does *not* stop the daemon; use
/// [`ServerHandle::shutdown`] (or a `shutdown` request) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live daemon counters (in-process observers only; remote clients use
    /// a `stats` request).
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Serve + cache counters, merged.
    pub fn counters(&self) -> CounterSet {
        let mut set = self.shared.stats.counters();
        set.merge(&self.shared.config.store.counters());
        set
    }

    /// Requests shutdown over the wire and waits for the daemon to drain.
    ///
    /// # Errors
    ///
    /// Returns the client-side failure; the daemon may still be running.
    pub fn shutdown(mut self) -> Result<(), String> {
        client_request(
            &self.addr.to_string(),
            &Request::Shutdown,
            Duration::from_secs(10),
        )?;
        self.join_inner();
        Ok(())
    }

    /// Waits for the daemon to exit (something else must trigger
    /// shutdown).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// A running daemon's entry point.
pub struct Server;

impl Server {
    /// Binds and starts the daemon; returns once the listener is live.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            stats: ServeStats::default(),
            inflight: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            config,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut worker_handles = Vec::new();
                for _ in 0..workers {
                    let shared = Arc::clone(&shared);
                    let job_rx = Arc::clone(&job_rx);
                    worker_handles.push(std::thread::spawn(move || worker_loop(&shared, &job_rx)));
                }
                let mut handler_handles: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    handler_handles.retain(|h| !h.is_finished());
                    let shared = Arc::clone(&shared);
                    let job_tx = job_tx.clone();
                    handler_handles.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, &job_tx);
                    }));
                }
                drop(listener);
                for handler in handler_handles {
                    let _ = handler.join();
                }
                // Workers exit once every sender is gone and the queue has
                // drained — all handlers joined above, so this is the last.
                drop(job_tx);
                for worker in worker_handles {
                    let _ = worker.join();
                }
            })
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// What admission decided for one verify request.
enum Admission {
    /// Wait for the outcome (leader or coalesced waiter).
    Wait {
        rx: Receiver<Arc<Outcome>>,
        coalesced: bool,
    },
    /// The queue was full; shed.
    Shed,
    /// The daemon is draining; no new work.
    Down,
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, job_tx: &SyncSender<Job>) {
    // A silent or trickling client must not pin this handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let frame = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(_) => {
            // Includes the shutdown wake-up's empty connection.
            shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
            return;
        }
    };
    let request = match Request::decode(&frame) {
        Ok(request) => request,
        Err(message) => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
            respond(&mut stream, &Response::Error { message });
            return;
        }
    };
    match request {
        Request::Stats => {
            let mut set = shared.stats.counters();
            set.merge(&shared.config.store.counters());
            let counters = set
                .entries()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            respond(&mut stream, &Response::Stats { counters });
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            respond(&mut stream, &Response::Ok);
            // Wake the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(("127.0.0.1", local_port(stream))); // best-effort
        }
        Request::Verify(request) => handle_verify(stream, shared, job_tx, request),
    }
}

fn local_port(stream: TcpStream) -> u16 {
    stream.local_addr().map(|a| a.port()).unwrap_or(0)
}

fn handle_verify(
    mut stream: TcpStream,
    shared: &Shared,
    job_tx: &SyncSender<Job>,
    request: VerifyRequest,
) {
    let config = &shared.config;
    let source = match (&request.source, &request.path) {
        (Some(source), _) => source.clone(),
        (None, Some(path)) => match std::fs::read_to_string(PathBuf::from(path)) {
            Ok(source) => source,
            Err(e) => {
                respond(
                    &mut stream,
                    &Response::Error {
                        message: format!("cannot read `{path}`: {e}"),
                    },
                );
                return;
            }
        },
        (None, None) => unreachable!("decode enforces exactly one of source/path"),
    };

    let ordinal = shared.stats.requests.fetch_add(1, Ordering::SeqCst) as usize;
    let jittered = config.plan.has(ServerFate::AcceptJitter, ordinal);
    let deadline = if jittered {
        // Adverse jitter on the accept path: the request's deadline has
        // already passed by the time it is admitted.
        Duration::ZERO
    } else {
        request
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(config.default_deadline)
    };
    let deadline_ms = deadline.as_millis() as u64;
    let give_up_at = Instant::now() + deadline + config.grace;

    let mut sim = config.sim.clone();
    sim.bounds = sim
        .bounds
        .with_jobs(request.jobs.unwrap_or(1))
        .with_deadline(deadline);
    // The coalescing key is the cert store's content address over the whole
    // module (level pair left empty — the key must cover the run, not one
    // recipe). jobs and deadline are excluded by construction, so requests
    // differing only in those coalesce. A jittered request must NOT join
    // (or lead) a herd: its collapsed deadline would leak a degraded
    // verdict to clean waiters, so it runs under a private key.
    let coalesce_key = if jittered {
        format!(
            "jitter:{ordinal}:{}",
            CertKey::compute(&source, "", "", &sim).as_hex()
        )
    } else {
        CertKey::compute(&source, "", "", &sim).as_hex()
    };
    // Checkpoints are per-verification state: scope the configured base
    // dir by the coalescing key, so concurrent requests for different
    // modules never share (or tear) each other's manifests while a retry
    // of the same request resumes its own.
    if let Some(spec) = &mut sim.bounds.checkpoint {
        spec.dir = spec.dir.join(format!(
            "rq-{:016x}",
            armada_runtime::hash::fnv1a_64(coalesce_key.as_bytes())
        ));
    }

    let admission = {
        let (tx, rx) = mpsc::channel();
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        match inflight.get_mut(&coalesce_key) {
            Some(entry) => {
                entry.waiters.push(tx);
                shared.stats.waiters.fetch_add(1, Ordering::SeqCst);
                shared.stats.coalesced.fetch_add(1, Ordering::SeqCst);
                Admission::Wait {
                    rx,
                    coalesced: true,
                }
            }
            None => {
                let job = Job {
                    coalesce_key: coalesce_key.clone(),
                    source,
                    sim,
                    ordinal,
                };
                // try_send under the map lock: an entry must never be
                // visible for coalescing unless its job is actually queued.
                match job_tx.try_send(job) {
                    Ok(()) => {
                        inflight.insert(coalesce_key, InFlight { waiters: vec![tx] });
                        shared.stats.waiters.fetch_add(1, Ordering::SeqCst);
                        Admission::Wait {
                            rx,
                            coalesced: false,
                        }
                    }
                    Err(TrySendError::Full(_)) => Admission::Shed,
                    Err(TrySendError::Disconnected(_)) => Admission::Down,
                }
            }
        }
    };

    match admission {
        Admission::Shed => {
            shared.stats.sheds.fetch_add(1, Ordering::SeqCst);
            respond(
                &mut stream,
                &Response::Overloaded {
                    retry_after_ms: config.retry_after.as_millis() as u64,
                },
            );
        }
        Admission::Down => {
            respond(
                &mut stream,
                &Response::Error {
                    message: "daemon is shutting down".to_string(),
                },
            );
        }
        Admission::Wait { rx, coalesced } => {
            let timeout = give_up_at.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(outcome) => respond(
                    &mut stream,
                    &Response::Result {
                        exit_code: outcome.exit_code,
                        verified: outcome.verified,
                        render: outcome.render.clone(),
                        coalesced,
                        witness: outcome.witness.clone(),
                    },
                ),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    // The no-hang contract: a structured response within
                    // deadline + grace, whatever the worker is doing. The
                    // run may still finish and warm the cache.
                    shared
                        .stats
                        .deadline_timeouts
                        .fetch_add(1, Ordering::SeqCst);
                    respond(&mut stream, &Response::Deadline { deadline_ms });
                }
            }
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) {
    // The client may already be gone; a failed reply is not a daemon error.
    let _ = write_frame(stream, &response.encode());
}

fn worker_loop(shared: &Shared, job_rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the dequeue, so workers drain the
        // queue concurrently.
        let job = match job_rx.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // every sender gone: drained, shut down
        };
        if let Some(gate) = &shared.config.gate {
            gate.wait();
        }
        shared.stats.verifications.fetch_add(1, Ordering::SeqCst);
        let outcome = Arc::new(run_job(shared, &job));
        let waiters = shared
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.coalesce_key)
            .map(|entry| entry.waiters)
            .unwrap_or_default();
        for waiter in waiters {
            // A waiter that already gave up (deadline) has dropped its
            // receiver; that is its loss, not an error.
            let _ = waiter.send(Arc::clone(&outcome));
        }
    }
}

fn run_job(shared: &Shared, job: &Job) -> Outcome {
    let config = &shared.config;
    let kill = config.plan.has(ServerFate::WorkerKill, job.ordinal);
    // Per-request fault view: a corrupt tier-2 fate poisons only this
    // request's reads; the shared store underneath stays pristine.
    let store = if config.plan.has(ServerFate::Tier2Corrupt, job.ordinal) {
        let mut shim = config.store.shim();
        shim.read = Some(ReadFault::Corrupt);
        config.store.clone().with_faults(shim)
    } else {
        config.store.clone()
    };

    let mut backoff = Backoff::new();
    let mut last_panic = String::new();
    for attempt in 0..=config.retries {
        let run = catch_unwind(AssertUnwindSafe(|| {
            if kill && attempt == 0 {
                panic!("injected fault: server worker killed mid-request");
            }
            let pipeline = Pipeline::from_source(&job.source)?
                .with_sim_config(job.sim.clone())
                .with_tiered_store(store.clone());
            pipeline.run()
        }));
        match run {
            Ok(Ok(report)) => {
                if config.telemetry && report.corrupt_loads > 0 {
                    eprintln!(
                        "armada serve: warning: {} corrupt cert record(s) rejected and recomputed (request #{})",
                        report.corrupt_loads, job.ordinal
                    );
                }
                return Outcome {
                    exit_code: report.worst_status().exit_code(),
                    verified: report.verified(),
                    render: report.to_string(),
                    witness: report.witness_digest().unwrap_or_default(),
                };
            }
            Ok(Err(e)) => {
                // Front-end / infrastructure errors are deterministic;
                // retrying cannot help.
                return Outcome {
                    exit_code: 2,
                    verified: false,
                    render: format!("error: {e}\n"),
                    witness: String::new(),
                };
            }
            Err(payload) => {
                last_panic = crate::panic_text(&*payload);
                if attempt < config.retries {
                    shared.stats.retries.fetch_add(1, Ordering::SeqCst);
                    backoff.snooze();
                }
            }
        }
    }
    Outcome {
        exit_code: 4,
        verified: false,
        render: format!(
            "NOT VERIFIED\nserve: worker crashed on all {} attempt(s): {last_panic}\n",
            config.retries + 1
        ),
        witness: String::new(),
    }
}

/// One request/response exchange with a daemon at `addr`.
///
/// `timeout` bounds connect and read; for verify requests pass at least the
/// request's deadline plus the daemon's grace window (the daemon guarantees
/// a structured response within that).
///
/// # Errors
///
/// Returns a human-readable message for connect/IO/decode failures.
pub fn client_request(
    addr: &str,
    request: &Request,
    timeout: Duration,
) -> Result<Response, String> {
    let target: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&target, timeout)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("cannot set timeout: {e}"))?;
    write_frame(&mut stream, &request.encode()).map_err(|e| format!("send failed: {e}"))?;
    let frame = read_frame(&mut stream).map_err(|e| format!("receive failed: {e}"))?;
    Response::decode(&frame)
}

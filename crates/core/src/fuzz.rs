//! Deterministic fault-fuzzing campaigns over the verification pipeline.
//!
//! A campaign sweeps a corpus of subjects (Armada source files) over a
//! seed grid. Each `(subject, seed)` cell derives a [`FaultPlan`] from the
//! seed (see [`FaultPlan::seeded`]), runs the pipeline cold and warm
//! (against a fresh certificate store, then against the store the cold run
//! populated) at every configured job count, and checks the campaign
//! invariants:
//!
//! * **taxonomy** — every run lands inside the documented outcome space:
//!   no escaped panic, no infrastructure error on a well-formed subject,
//!   and a worst-status exit code in the 0–4 vocabulary;
//! * **no-hang** — every run finishes inside the hang budget (faults may
//!   slow a run down, never wedge it);
//! * **no-corrupt-cert-served** — whenever the store reports a cache hit,
//!   the served certificate is identical to the fault-free baseline's
//!   certificate for that level pair (a mangled record must be a miss,
//!   never a lie);
//! * **verdict-invariance** — when every injected fault is recoverable
//!   (see [`FaultFate::is_recoverable`]), the report is byte-identical to
//!   the fault-free baseline after erasing cache-disposition annotations;
//! * **determinism** — for one `(subject, seed)` cell, renders are
//!   byte-identical across job counts (cold vs cold, warm vs warm);
//! * **recheck** — every certificate an exit-0 run emits carries a witness
//!   that passes the independent `armada recheck` checker: structural
//!   validation plus semantic replay against the subject's own source.
//!
//! When an invariant trips, the campaign greedily shrinks the plan — retry
//! the cell with each event removed, keep removals that preserve the
//! violation, repeat to fixpoint — and records a minimal event list plus a
//! ready-to-run `armada fuzz … --events …` reproducer line.
//!
//! Everything is a pure function of `(subjects, config)`: the campaign
//! report (see [`CampaignReport::to_json`]) contains no timestamps, paths,
//! or durations, so reruns are byte-identical — the determinism gate
//! `scripts/verify.sh` relies on.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

use armada_runtime::hash::fnv1a_64;
use armada_runtime::SplitMix64;

use crate::fault::{
    FaultEvent, FaultFate, FaultPlan, ServerEvent, ServerFate, ServerPlan, ALL_FATES,
    ALL_SERVER_FATES,
};
use crate::proto::{Request, Response, VerifyRequest};
use crate::serve::{client_request, Gate, ServeConfig, Server};
use crate::verify::store::{CertStore, StoreShim};
use crate::verify::tier::{MemTier, TieredStore};
use crate::verify::SimConfig;
use crate::{CacheDisposition, Pipeline, PipelineError};

/// One fuzzing subject: a named Armada module source.
#[derive(Debug, Clone)]
pub struct FuzzSubject {
    /// Display name, used in reports and reproducer lines (conventionally
    /// the source path for file subjects).
    pub name: String,
    /// Full module source.
    pub source: String,
}

impl FuzzSubject {
    /// A subject from an in-memory source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> FuzzSubject {
        FuzzSubject {
            name: name.into(),
            source: source.into(),
        }
    }

    /// Reads a subject from an `.arm` file; the path becomes the name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unreadable path.
    pub fn from_path(path: &str) -> Result<FuzzSubject, String> {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Ok(FuzzSubject::new(path, source))
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// The seed grid; each seed derives one fault plan per subject.
    pub seeds: Vec<u64>,
    /// Job counts to run each cell at (deduplicated in order).
    pub jobs: Vec<usize>,
    /// Wall-clock ceiling per pipeline run; exceeding it is a `no-hang`
    /// violation.
    pub hang_budget: Duration,
    /// Root directory for per-run scratch cert stores (never reported).
    pub scratch_root: PathBuf,
    /// Test-only mutant: disable the store's checksum re-validation on
    /// load, to prove the `no-corrupt-cert-served` invariant has teeth.
    pub mutant_unchecked_loads: bool,
    /// When set, every cell uses exactly this plan instead of a seeded one
    /// (the reproducer path: `armada fuzz … --events …`).
    pub plan_override: Option<Vec<FaultEvent>>,
    /// Mutate the verification *bounds* per seed as well as the faults:
    /// each seed deterministically picks a nondeterminism grid, a
    /// store-buffer size, and a node cap (see [`mutated_sim`]). The
    /// baseline is recomputed per seed under the same bounds, so the
    /// invariants compare like with like; reports stay byte-identical
    /// across reruns because the mutation is a pure function of the seed.
    pub mutate_bounds: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seeds: (0..8).collect(),
            jobs: vec![1],
            hang_budget: Duration::from_secs(30),
            scratch_root: std::env::temp_dir().join(format!("armada-fuzz-{}", std::process::id())),
            mutant_unchecked_loads: false,
            plan_override: None,
            mutate_bounds: false,
        }
    }
}

/// The bounds a given seed mutates to (`--mutate-bounds`): a deterministic
/// pick of nondeterminism grid, store-buffer capacity, and product-node
/// cap. Seed 0's pick is the default configuration, so the mutated sweep
/// always includes the canonical bounds.
pub fn mutated_sim(seed: u64) -> SimConfig {
    const NONDET_GRIDS: [&[i128]; 3] = [&[0, 1, 2], &[0, 1], &[0, 1, 2, 5]];
    const BUFFERS: [usize; 2] = [2, 1];
    const NODE_CAPS: [usize; 3] = [200_000, 50_000, 5_000];
    let mut rng = SplitMix64::new(seed ^ fnv1a_64(b"bounds-mutation"));
    let mut sim = SimConfig::default();
    if seed == 0 {
        return sim;
    }
    sim.bounds.nondet_ints = NONDET_GRIDS[rng.below(NONDET_GRIDS.len() as u64) as usize].to_vec();
    sim.bounds.max_buffer = BUFFERS[rng.below(BUFFERS.len() as u64) as usize];
    sim.max_nodes = NODE_CAPS[rng.below(NODE_CAPS.len() as u64) as usize];
    sim
}

/// The campaign invariants (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Outcome stayed inside the documented taxonomy.
    Taxonomy,
    /// The run finished inside the hang budget.
    NoHang,
    /// A cache hit served a certificate differing from the baseline's.
    CorruptCertServed,
    /// Recoverable faults changed the final verdict.
    VerdictInvariance,
    /// Renders differed across job counts.
    Determinism,
    /// A serve request went unanswered past its deadline plus the daemon's
    /// grace window (`armada fuzz --serve` only).
    DeadlineOverrun,
    /// A coalesced waiter observed a response differing from the leader's
    /// — or the herd cost more than one underlying verification (`armada
    /// fuzz --serve` only).
    CoalesceDivergence,
    /// An exit-0 run emitted a certificate whose witness failed the
    /// independent `armada recheck` validation (structural + semantic
    /// replay against the subject's own source).
    RecheckFailed,
}

impl Invariant {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::Taxonomy => "taxonomy",
            Invariant::NoHang => "no_hang",
            Invariant::CorruptCertServed => "corrupt_cert_served",
            Invariant::VerdictInvariance => "verdict_invariance",
            Invariant::Determinism => "determinism",
            Invariant::DeadlineOverrun => "deadline_overrun",
            Invariant::CoalesceDivergence => "coalesce_divergence",
            Invariant::RecheckFailed => "recheck_failed",
        }
    }
}

/// One invariant violation, with its shrunk reproducer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant tripped.
    pub invariant: Invariant,
    /// Subject name.
    pub subject: String,
    /// The seed whose plan tripped it (0 under a plan override).
    pub seed: u64,
    /// Human-readable specifics.
    pub detail: String,
    /// The full plan that tripped the invariant.
    pub plan: Vec<FaultEvent>,
    /// The greedily shrunk minimal plan that still trips it.
    pub shrunk: Vec<FaultEvent>,
    /// Serve campaigns: the full server-level plan that tripped the
    /// invariant (empty for pipeline campaigns).
    pub server_plan: Vec<ServerEvent>,
    /// Serve campaigns: the shrunk minimal server-level plan.
    pub server_shrunk: Vec<ServerEvent>,
    /// A ready-to-run CLI reproducer line.
    pub replay: String,
}

/// The whole campaign's result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Subject names, in sweep order.
    pub subjects: Vec<String>,
    /// The seed grid.
    pub seeds: Vec<u64>,
    /// The job-count grid.
    pub jobs: Vec<usize>,
    /// Pipeline executions performed (baselines + cold + warm + shrinking;
    /// for serve campaigns, daemon requests sent).
    pub runs: usize,
    /// Invariant evaluations performed.
    pub checks: usize,
    /// Faults injected per fate label — [`ALL_FATES`] order for pipeline
    /// campaigns, [`ALL_SERVER_FATES`] order for serve campaigns.
    pub injected: Vec<(&'static str, usize)>,
    /// Violations found (empty on a healthy pipeline).
    pub violations: Vec<Violation>,
    /// `"pipeline"` for in-process campaigns, `"serve"` for daemon
    /// campaigns.
    pub mode: &'static str,
    /// Whether the campaign mutated bounds per seed.
    pub mutate_bounds: bool,
}

impl CampaignReport {
    /// True when no invariant tripped.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when every fate in the taxonomy was injected at least once.
    pub fn all_fates_injected(&self) -> bool {
        self.injected.iter().all(|&(_, count)| count > 0)
    }

    /// Total faults injected across all fates.
    pub fn total_injected(&self) -> usize {
        self.injected.iter().map(|&(_, count)| count).sum()
    }

    /// Deterministic machine-readable rendering: same `(subjects, config)`
    /// → byte-identical JSON (no timestamps, durations, or paths).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"subjects\": [{}],\n",
            self.subjects
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"seeds\": [{}],\n",
            self.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"jobs\": [{}],\n",
            self.jobs
                .iter()
                .map(|j| j.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"mutate_bounds\": {},\n", self.mutate_bounds));
        out.push_str(&format!("  \"runs\": {},\n", self.runs));
        out.push_str(&format!("  \"checks\": {},\n", self.checks));
        out.push_str("  \"injected\": {\n");
        for (i, (label, count)) in self.injected.iter().enumerate() {
            let comma = if i + 1 < self.injected.len() { "," } else { "" };
            out.push_str(&format!("    \"{label}\": {count}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"violations\": [");
        for (i, violation) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"invariant\": \"{}\",\n",
                violation.invariant.label()
            ));
            out.push_str(&format!(
                "      \"subject\": \"{}\",\n",
                json_escape(&violation.subject)
            ));
            out.push_str(&format!("      \"seed\": {},\n", violation.seed));
            out.push_str(&format!(
                "      \"detail\": \"{}\",\n",
                json_escape(&violation.detail)
            ));
            let (plan, shrunk) = if violation.server_plan.is_empty() {
                (
                    render_events_json(&violation.plan),
                    render_events_json(&violation.shrunk),
                )
            } else {
                (
                    render_server_events_json(&violation.server_plan),
                    render_server_events_json(&violation.server_shrunk),
                )
            };
            out.push_str(&format!("      \"plan\": [{plan}],\n"));
            out.push_str(&format!("      \"shrunk\": [{shrunk}],\n"));
            out.push_str(&format!(
                "      \"replay\": \"{}\"\n",
                json_escape(&violation.replay)
            ));
            out.push_str("    }");
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn render_events_json(events: &[FaultEvent]) -> String {
    events
        .iter()
        .map(|e| format!("\"{}\"", json_escape(&e.to_string())))
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_server_events_json(events: &[ServerEvent]) -> String {
    events
        .iter()
        .map(|e| format!("\"{}\"", json_escape(&e.to_string())))
        .collect::<Vec<_>>()
        .join(", ")
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a comma-separated `fate:recipe` event list (the `--events` CLI
/// argument and the reproducer vocabulary).
///
/// # Errors
///
/// Returns [`PipelineError::Events`] naming the offending token when an
/// entry is malformed, names an unknown fate, or repeats an earlier
/// token. Repeats are an error rather than a no-op because a
/// [`FaultPlan`] stores an event *set*: a silently deduplicated repeat
/// would make a reproducer line claim more injections than it performs.
pub fn parse_events(spec: &str) -> Result<Vec<FaultEvent>, PipelineError> {
    let bad = |token: &str, message: String| PipelineError::Events {
        token: token.to_string(),
        message,
    };
    let mut events: Vec<FaultEvent> = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (label, recipe) = entry
            .split_once(':')
            .ok_or_else(|| bad(entry, "want fate:recipe".to_string()))?;
        let fate = FaultFate::parse(label)
            .ok_or_else(|| bad(entry, format!("unknown fault fate `{label}`")))?;
        let event = FaultEvent {
            fate,
            recipe: recipe.to_string(),
        };
        if events.contains(&event) {
            return Err(bad(
                entry,
                "duplicate event (a fault plan is a set; the repeat would be dropped)".to_string(),
            ));
        }
        events.push(event);
    }
    Ok(events)
}

/// What one pipeline execution produced, as the invariant checks see it.
struct RunResult {
    /// The report's rendering (empty when the run errored).
    render: String,
    /// Infrastructure error or escaped-panic text, if any.
    error: Option<String>,
    /// Worst-status exit code (0–4), when a report was produced.
    exit_code: Option<u8>,
    /// `(low, high, product_nodes, low_transitions)` for every certificate
    /// the store served as a cache hit.
    served_hits: Vec<(String, String, usize, usize)>,
    /// Same, for every certificate in the report regardless of source.
    certs: Vec<(String, String, usize, usize)>,
    /// `armada recheck` rejections for an exit-0 run's certificates
    /// (serialized, then validated and replayed against the subject's own
    /// source). Always empty for nonzero exits.
    recheck_failures: Vec<String>,
    /// Wall-clock duration (checked against the hang budget; never
    /// reported).
    elapsed: Duration,
}

/// Runs the pipeline once for `subject` under `plan`, against a scratch
/// cert store rooted at `store_dir`.
fn run_once(
    subject: &FuzzSubject,
    plan: &FaultPlan,
    jobs: usize,
    store_dir: &Path,
    mutant_unchecked_loads: bool,
    sim: &SimConfig,
) -> RunResult {
    let start = Instant::now();
    let source = subject.source.clone();
    let plan = plan.clone();
    let sim = sim.clone().with_jobs(jobs);
    let store = CertStore::open(store_dir).with_faults(StoreShim {
        unchecked_loads: mutant_unchecked_loads,
        ..StoreShim::default()
    });
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let pipeline = Pipeline::from_source(&source)
            .map_err(|e| e.to_string())?
            .with_sim_config(sim)
            .with_cert_store(store)
            .with_fault_plan(plan);
        pipeline.run().map_err(|e| e.to_string())
    }));
    let elapsed = start.elapsed();
    match outcome {
        Err(payload) => {
            let text = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            RunResult {
                render: String::new(),
                error: Some(format!("panic escaped the pipeline: {text}")),
                exit_code: None,
                served_hits: Vec::new(),
                certs: Vec::new(),
                recheck_failures: Vec::new(),
                elapsed,
            }
        }
        Ok(Err(message)) => RunResult {
            render: String::new(),
            error: Some(message),
            exit_code: None,
            served_hits: Vec::new(),
            certs: Vec::new(),
            recheck_failures: Vec::new(),
            elapsed,
        },
        Ok(Ok(report)) => {
            let certs: Vec<(String, String, usize, usize)> = report
                .refinements
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .map(|c| {
                    (
                        c.low.clone(),
                        c.high.clone(),
                        c.product_nodes,
                        c.low_transitions,
                    )
                })
                .collect();
            let served_hits = report
                .outcomes
                .iter()
                .filter(|o| o.cache == CacheDisposition::Hit)
                .filter_map(|o| {
                    certs
                        .iter()
                        .find(|(low, high, _, _)| *low == o.low && *high == o.high)
                        .cloned()
                })
                .collect();
            let exit_code = if report.verified() {
                0
            } else {
                report.worst_status().exit_code()
            };
            // Invariant #6: every certificate of an exit-0 run must survive
            // the independent checker — serialize, then structurally
            // validate and semantically replay against the subject source.
            let mut recheck_failures = Vec::new();
            if exit_code == 0 {
                for cert in report.refinements.iter().filter_map(|r| r.as_ref().ok()) {
                    let record = crate::verify::store::serialize(cert);
                    if let Err(e) = crate::recheck::recheck_record(&record, Some(&subject.source)) {
                        recheck_failures.push(format!("{}⊑{}: {e}", cert.low, cert.high));
                    }
                }
            }
            RunResult {
                render: report.to_string(),
                error: None,
                exit_code: Some(exit_code),
                served_hits,
                certs,
                recheck_failures,
                elapsed,
            }
        }
    }
}

/// Erases cache-disposition annotations, so a cold (miss) and warm (hit)
/// run of the same verdict normalize identically — the equality
/// `verdict-invariance` asserts against the baseline.
fn normalize_render(render: &str) -> String {
    render
        .replace(" (cert cache hit)", "")
        .replace(" (cert cache miss)", "")
        .replace(" (from cert store)", "")
}

/// The fault-free reference for one subject.
struct Baseline {
    /// Normalized render of a clean jobs=1 run.
    render_norm: String,
    /// `(low, high)` → `(product_nodes, low_transitions)`.
    certs: BTreeMap<(String, String), (usize, usize)>,
    /// Baseline infrastructure failure, if any (the subject is unusable).
    error: Option<String>,
}

fn compute_baseline(subject: &FuzzSubject, scratch: &Path, sim: &SimConfig) -> (Baseline, usize) {
    let dir = scratch.join("baseline");
    let result = run_once(subject, &FaultPlan::new(), 1, &dir, false, sim);
    let _ = std::fs::remove_dir_all(&dir);
    let baseline = Baseline {
        render_norm: normalize_render(&result.render),
        certs: result
            .certs
            .iter()
            .map(|(low, high, nodes, transitions)| {
                ((low.clone(), high.clone()), (*nodes, *transitions))
            })
            .collect(),
        error: result.error,
    };
    (baseline, 1)
}

/// One `(subject, plan)` cell: cold + warm runs at every job count, then
/// the invariant checks. Returns `(violations, runs, checks)`.
fn run_cell(
    subject: &FuzzSubject,
    plan: &FaultPlan,
    config: &FuzzConfig,
    baseline: &Baseline,
    scratch: &Path,
    sim: &SimConfig,
) -> (Vec<(Invariant, String)>, usize, usize) {
    let mut violations: Vec<(Invariant, String)> = Vec::new();
    let mut runs = 0usize;
    let mut checks = 0usize;
    let mut colds: Vec<(usize, RunResult)> = Vec::new();
    let mut warms: Vec<(usize, RunResult)> = Vec::new();

    let mut jobs_grid: Vec<usize> = Vec::new();
    for &j in &config.jobs {
        let j = j.max(1);
        if !jobs_grid.contains(&j) {
            jobs_grid.push(j);
        }
    }

    for &jobs in &jobs_grid {
        // A fresh store per job count, so cold/warm pairs are comparable
        // across the grid.
        let dir = scratch.join(format!("j{jobs}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_once(
            subject,
            plan,
            jobs,
            &dir,
            config.mutant_unchecked_loads,
            sim,
        );
        let warm = run_once(
            subject,
            plan,
            jobs,
            &dir,
            config.mutant_unchecked_loads,
            sim,
        );
        let _ = std::fs::remove_dir_all(&dir);
        runs += 2;

        for (phase, result) in [("cold", &cold), ("warm", &warm)] {
            // Taxonomy: no escaped panic, no infra error, exit code 0–4.
            checks += 1;
            if let Some(error) = &result.error {
                violations.push((
                    Invariant::Taxonomy,
                    format!("{phase} jobs={jobs}: run left the outcome taxonomy: {error}"),
                ));
            } else if result.exit_code.is_none_or(|code| code > 4) {
                violations.push((
                    Invariant::Taxonomy,
                    format!(
                        "{phase} jobs={jobs}: exit code {:?} outside 0-4",
                        result.exit_code
                    ),
                ));
            }
            // No-hang: the run finished inside the budget.
            checks += 1;
            if result.elapsed > config.hang_budget {
                violations.push((
                    Invariant::NoHang,
                    format!(
                        "{phase} jobs={jobs}: run took {:?}, budget {:?}",
                        result.elapsed, config.hang_budget
                    ),
                ));
            }
            // No-corrupt-cert-served: every hit matches the baseline cert.
            checks += 1;
            for (low, high, nodes, transitions) in &result.served_hits {
                match baseline.certs.get(&(low.clone(), high.clone())) {
                    Some(&(base_nodes, base_transitions))
                        if base_nodes == *nodes && base_transitions == *transitions => {}
                    Some(&(base_nodes, base_transitions)) => violations.push((
                        Invariant::CorruptCertServed,
                        format!(
                            "{phase} jobs={jobs}: hit for {low}⊑{high} served \
                             ({nodes}, {transitions}), baseline ({base_nodes}, {base_transitions})"
                        ),
                    )),
                    None => violations.push((
                        Invariant::CorruptCertServed,
                        format!(
                            "{phase} jobs={jobs}: hit for {low}⊑{high} has no baseline certificate"
                        ),
                    )),
                }
            }
            // Recheck: an exit-0 run's certificates all pass the
            // independent checker (structural witness validation plus
            // semantic replay).
            checks += 1;
            for failure in &result.recheck_failures {
                violations.push((
                    Invariant::RecheckFailed,
                    format!("{phase} jobs={jobs}: certificate failed recheck: {failure}"),
                ));
            }
            // Verdict-invariance: recoverable faults leave the normalized
            // render byte-identical to the baseline.
            if plan.is_recoverable_only() && baseline.error.is_none() && result.error.is_none() {
                checks += 1;
                let norm = normalize_render(&result.render);
                if norm != baseline.render_norm {
                    violations.push((
                        Invariant::VerdictInvariance,
                        format!(
                            "{phase} jobs={jobs}: recoverable faults changed the verdict:\n\
                             --- baseline ---\n{}--- faulted ---\n{norm}",
                            baseline.render_norm
                        ),
                    ));
                }
            }
        }
        colds.push((jobs, cold));
        warms.push((jobs, warm));
    }

    // Determinism: renders byte-identical across job counts.
    for (phase, results) in [("cold", &colds), ("warm", &warms)] {
        checks += 1;
        if let Some((first_jobs, first)) = results.first() {
            for (jobs, result) in &results[1..] {
                if result.render != first.render || result.error != first.error {
                    violations.push((
                        Invariant::Determinism,
                        format!(
                            "{phase}: render differs between jobs={first_jobs} and jobs={jobs}"
                        ),
                    ));
                }
            }
        }
    }
    (violations, runs, checks)
}

/// Greedy delta-debugging: drop events one at a time, keeping removals
/// that preserve a violation of `invariant`, to fixpoint. Returns the
/// minimal plan and the number of pipeline runs spent shrinking.
fn shrink(
    subject: &FuzzSubject,
    events: &[FaultEvent],
    invariant: Invariant,
    config: &FuzzConfig,
    baseline: &Baseline,
    scratch: &Path,
    sim: &SimConfig,
) -> (Vec<FaultEvent>, usize, usize) {
    let mut current: Vec<FaultEvent> = events.to_vec();
    let mut runs = 0usize;
    let mut checks = 0usize;
    let still_violates = |trial: &[FaultEvent], runs: &mut usize, checks: &mut usize| -> bool {
        let plan = FaultPlan::from_events(trial.iter().cloned());
        let (violations, r, c) = run_cell(subject, &plan, config, baseline, scratch, sim);
        *runs += r;
        *checks += c;
        violations.iter().any(|(inv, _)| *inv == invariant)
    };
    let mut progress = true;
    while progress && !current.is_empty() {
        progress = false;
        for i in 0..current.len() {
            let mut trial = current.clone();
            trial.remove(i);
            if still_violates(&trial, &mut runs, &mut checks) {
                current = trial;
                progress = true;
                break;
            }
        }
    }
    (current, runs, checks)
}

/// Silences the default panic hook's report (message + backtrace) for
/// panics whose payload marks them as injected faults — a campaign
/// deliberately triggers hundreds of them, and each is caught and turned
/// into an outcome row. Genuine panics keep the full default report.
/// Installed once per process, never uninstalled (the filter is inert
/// outside campaigns).
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs the whole campaign (see the module docs).
pub fn run_campaign(subjects: &[FuzzSubject], config: &FuzzConfig) -> CampaignReport {
    quiet_injected_panics();
    let mut injected: Vec<(&'static str, usize)> =
        ALL_FATES.iter().map(|f| (f.label(), 0)).collect();
    let mut violations: Vec<Violation> = Vec::new();
    let mut runs = 0usize;
    let mut checks = 0usize;
    let max_jobs = config.jobs.iter().copied().max().unwrap_or(1);

    for (subject_index, subject) in subjects.iter().enumerate() {
        let scratch = config.scratch_root.join(format!("s{subject_index}"));
        let (baseline, baseline_runs) = compute_baseline(subject, &scratch, &SimConfig::default());
        runs += baseline_runs;
        if let Some(error) = &baseline.error {
            violations.push(Violation {
                invariant: Invariant::Taxonomy,
                subject: subject.name.clone(),
                seed: 0,
                detail: format!("fault-free baseline failed: {error}"),
                plan: Vec::new(),
                shrunk: Vec::new(),
                server_plan: Vec::new(),
                server_shrunk: Vec::new(),
                replay: format!("armada verify {}", subject.name),
            });
            continue;
        }
        let recipe_names: Vec<String> = {
            // The baseline succeeded, so the source parses.
            let pipeline = Pipeline::from_source(&subject.source).expect("baseline parsed");
            pipeline
                .typed()
                .module
                .recipes
                .iter()
                .map(|r| r.name.clone())
                .collect()
        };
        for &seed in &config.seeds {
            let plan = match &config.plan_override {
                Some(events) => FaultPlan::from_events(events.iter().cloned()),
                None => FaultPlan::seeded(seed, recipe_names.iter().map(|n| n.as_str())),
            };
            for entry in injected.iter_mut() {
                entry.1 += plan
                    .events()
                    .iter()
                    .filter(|e| e.fate.label() == entry.0)
                    .count();
            }
            let cell_scratch = scratch.join(format!("seed{seed}"));
            // Mutated bounds change verdicts legitimately (a tighter node
            // cap is a real budget-exhaustion), so each mutated seed gets
            // its own like-for-like baseline.
            let sim = if config.mutate_bounds {
                mutated_sim(seed)
            } else {
                SimConfig::default()
            };
            let cell_baseline;
            let baseline = if config.mutate_bounds && seed != 0 {
                let (b, baseline_runs) = compute_baseline(subject, &cell_scratch, &sim);
                runs += baseline_runs;
                cell_baseline = b;
                if let Some(error) = &cell_baseline.error {
                    violations.push(Violation {
                        invariant: Invariant::Taxonomy,
                        subject: subject.name.clone(),
                        seed,
                        detail: format!("mutated-bounds baseline failed: {error}"),
                        plan: Vec::new(),
                        shrunk: Vec::new(),
                        server_plan: Vec::new(),
                        server_shrunk: Vec::new(),
                        replay: format!("armada verify {}", subject.name),
                    });
                    continue;
                }
                &cell_baseline
            } else {
                &baseline
            };
            let (cell_violations, cell_runs, cell_checks) =
                run_cell(subject, &plan, config, baseline, &cell_scratch, &sim);
            runs += cell_runs;
            checks += cell_checks;
            for (invariant, detail) in cell_violations {
                let (shrunk, shrink_runs, shrink_checks) = shrink(
                    subject,
                    &plan.events(),
                    invariant,
                    config,
                    baseline,
                    &cell_scratch,
                    &sim,
                );
                runs += shrink_runs;
                checks += shrink_checks;
                let events_spec = shrunk
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                // An explicit event plan replays on any seed; mutated
                // bounds are a function of the seed, so the replay must
                // sweep up to the failing one to reproduce them.
                let replay = if config.mutate_bounds {
                    format!(
                        "armada fuzz {} --seeds {} --jobs {max_jobs} --mutate-bounds \
                         --events {events_spec}",
                        subject.name,
                        seed + 1
                    )
                } else {
                    format!(
                        "armada fuzz {} --seeds 1 --jobs {max_jobs} --events {events_spec}",
                        subject.name
                    )
                };
                violations.push(Violation {
                    invariant,
                    subject: subject.name.clone(),
                    seed,
                    detail,
                    plan: plan.events(),
                    shrunk,
                    server_plan: Vec::new(),
                    server_shrunk: Vec::new(),
                    replay,
                });
            }
            let _ = std::fs::remove_dir_all(&cell_scratch);
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&config.scratch_root);
    CampaignReport {
        subjects: subjects.iter().map(|s| s.name.clone()).collect(),
        seeds: config.seeds.clone(),
        jobs: config.jobs.clone(),
        runs,
        checks,
        injected,
        violations,
        mode: "pipeline",
        mutate_bounds: config.mutate_bounds,
    }
}

/// Parses a comma-separated `fate:ordinal` server-event list (the
/// `--server-events` CLI argument and the serve-campaign reproducer
/// vocabulary).
///
/// # Errors
///
/// Returns [`PipelineError::Events`] naming the offending token when an
/// entry is malformed, names an unknown server fate, has a non-numeric
/// ordinal, or repeats an earlier token (a [`ServerPlan`] is a set; see
/// [`parse_events`] for the rationale).
pub fn parse_server_events(spec: &str) -> Result<Vec<ServerEvent>, PipelineError> {
    let bad = |token: &str, message: String| PipelineError::Events {
        token: token.to_string(),
        message,
    };
    let mut events: Vec<ServerEvent> = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (label, ordinal) = entry
            .split_once(':')
            .ok_or_else(|| bad(entry, "want fate:ordinal".to_string()))?;
        let fate = ServerFate::parse(label)
            .ok_or_else(|| bad(entry, format!("unknown server fate `{label}`")))?;
        let ordinal: usize = ordinal
            .parse()
            .map_err(|_| bad(entry, format!("ordinal `{ordinal}` is not a number")))?;
        let event = ServerEvent { fate, ordinal };
        if events.contains(&event) {
            return Err(bad(
                entry,
                "duplicate event (a server plan is a set; the repeat would be dropped)".to_string(),
            ));
        }
        events.push(event);
    }
    Ok(events)
}

/// Parameters for a daemon-level campaign (`armada fuzz --serve`).
#[derive(Debug, Clone)]
pub struct ServeFuzzConfig {
    /// The seed grid; each seed derives one [`ServerPlan`] per subject.
    pub seeds: Vec<u64>,
    /// Job counts each request is sent at (deduplicated in order).
    pub jobs: Vec<usize>,
    /// Deadline attached to every fuzz request.
    pub request_deadline: Duration,
    /// Grace window the daemon is configured with.
    pub grace: Duration,
    /// Extra slack past `deadline + grace` before a slow answer counts as
    /// a `deadline_overrun` violation (absorbs scheduler noise; never
    /// reported).
    pub overrun_slack: Duration,
    /// Concurrent clients in a same-key storm.
    pub storm_width: usize,
    /// Root directory for per-cell scratch cert stores (never reported).
    pub scratch_root: PathBuf,
    /// When set, every cell uses exactly this plan instead of a seeded one
    /// (the reproducer path: `armada fuzz --serve … --server-events …`).
    pub plan_override: Option<Vec<ServerEvent>>,
}

impl Default for ServeFuzzConfig {
    fn default() -> ServeFuzzConfig {
        ServeFuzzConfig {
            seeds: (0..8).collect(),
            jobs: vec![1],
            request_deadline: Duration::from_secs(20),
            grace: Duration::from_secs(5),
            overrun_slack: Duration::from_secs(5),
            storm_width: 4,
            scratch_root: std::env::temp_dir()
                .join(format!("armada-serve-fuzz-{}", std::process::id())),
            plan_override: None,
        }
    }
}

/// Admission ordinals a seeded server plan can pin fates on. The
/// sequential phase sends exactly this many requests one at a time, so
/// admission order — and therefore which request each fate lands on — is
/// deterministic. Storm requests are admitted concurrently (racy
/// ordinals ≥ `SEQ_ORDINALS`) and deliberately carry no fates.
const SEQ_ORDINALS: usize = 3;

/// What one daemon cell produced.
struct ServeCell {
    violations: Vec<(Invariant, String)>,
    runs: usize,
    checks: usize,
    /// Renders from the sequential phase, `None` where the request was
    /// jittered or failed (used for the cross-jobs determinism check).
    seq_renders: Vec<Option<String>>,
}

/// One `(subject, plan, jobs)` daemon cell: boot a fresh daemon over a
/// fresh tiered store, drive the sequential phase (cold at ordinal 0,
/// warm after), then — when the plan calls for it — a same-key storm
/// behind the worker gate, then a clean shutdown.
fn run_serve_cell(
    subject: &FuzzSubject,
    plan: &ServerPlan,
    jobs: usize,
    config: &ServeFuzzConfig,
    baseline: &Baseline,
) -> ServeCell {
    static CELL_SEQ: AtomicUsize = AtomicUsize::new(0);
    let cell_id = CELL_SEQ.fetch_add(1, AtomicOrdering::SeqCst);
    let store_dir = config.scratch_root.join(format!("serve{cell_id}"));
    let mut cell = ServeCell {
        violations: Vec::new(),
        runs: 0,
        checks: 0,
        seq_renders: Vec::new(),
    };

    let store = TieredStore::disk(CertStore::open(&store_dir)).with_mem(MemTier::with_capacity(32));
    let gate = Gate::open();
    let mut serve_config = ServeConfig::new(store);
    serve_config.default_deadline = config.request_deadline;
    serve_config.grace = config.grace;
    serve_config.plan = plan.clone();
    serve_config.gate = Some(gate.clone());
    let handle = match Server::start(serve_config) {
        Ok(handle) => handle,
        Err(e) => {
            cell.violations
                .push((Invariant::Taxonomy, format!("daemon failed to start: {e}")));
            return cell;
        }
    };
    let addr = handle.addr().to_string();
    // The client-side timeout sits well past the daemon's no-hang
    // guarantee: hitting it means the guarantee broke, which the
    // deadline-overrun check below turns into a violation.
    let timeout = config.request_deadline + config.grace + Duration::from_secs(10);
    let ceiling = config.request_deadline + config.grace + config.overrun_slack;
    let verify_request = || {
        Request::Verify(VerifyRequest {
            source: Some(subject.source.clone()),
            path: None,
            name: Some(subject.name.clone()),
            deadline_ms: Some(config.request_deadline.as_millis() as u64),
            jobs: Some(jobs),
        })
    };

    for ordinal in 0..SEQ_ORDINALS {
        let start = Instant::now();
        let response = client_request(&addr, &verify_request(), timeout);
        let elapsed = start.elapsed();
        cell.runs += 1;
        let jittered = plan.has(ServerFate::AcceptJitter, ordinal);
        cell.checks += 1;
        if elapsed > ceiling {
            cell.violations.push((
                Invariant::DeadlineOverrun,
                format!(
                    "request {ordinal} answered after {}ms (ceiling {}ms)",
                    elapsed.as_millis(),
                    ceiling.as_millis()
                ),
            ));
        }
        cell.checks += 1;
        match response {
            Err(message) => {
                cell.violations.push((
                    Invariant::Taxonomy,
                    format!("request {ordinal} failed: {message}"),
                ));
                cell.seq_renders.push(None);
            }
            Ok(Response::Result {
                exit_code, render, ..
            }) => {
                if exit_code > 4 {
                    cell.violations.push((
                        Invariant::Taxonomy,
                        format!(
                            "request {ordinal} exit code {exit_code} is outside the 0-4 taxonomy"
                        ),
                    ));
                }
                if jittered {
                    // A collapsed deadline legitimately degrades the
                    // verdict; the render is excluded from invariance and
                    // determinism comparisons.
                    cell.seq_renders.push(None);
                } else {
                    cell.checks += 1;
                    if normalize_render(&render) != baseline.render_norm {
                        cell.violations.push((
                            Invariant::VerdictInvariance,
                            format!(
                                "request {ordinal} verdict diverged from the fault-free \
                                 baseline under recoverable faults"
                            ),
                        ));
                    }
                    cell.seq_renders.push(Some(render));
                }
            }
            Ok(Response::Deadline { .. }) => {
                if !jittered {
                    cell.violations.push((
                        Invariant::Taxonomy,
                        format!("request {ordinal} hit its deadline without injected jitter"),
                    ));
                }
                cell.seq_renders.push(None);
            }
            Ok(other) => {
                cell.violations.push((
                    Invariant::Taxonomy,
                    format!(
                        "request {ordinal} got an unexpected response kind (exit {})",
                        other.exit_code()
                    ),
                ));
                cell.seq_renders.push(None);
            }
        }
    }

    if plan.count_of(ServerFate::SameKeyStorm) > 0 {
        let width = config.storm_width;
        // Close the gate so the storm's leader blocks mid-verification and
        // the herd piles up behind its in-flight entry.
        gate.hold();
        let waiters_before = handle.stats().waiters();
        let verifications_before = handle.stats().verifications();
        let results: Vec<Result<Response, String>> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..width)
                .map(|_| {
                    let addr = addr.clone();
                    let request = verify_request();
                    scope.spawn(move || client_request(&addr, &request, timeout))
                })
                .collect();
            // Release only once every member is registered as a waiter, so
            // coalescing (not timing luck) is what the checks exercise. The
            // cap keeps a broken daemon from wedging the campaign.
            let pile_up_by = Instant::now() + Duration::from_secs(10);
            while handle.stats().waiters() < waiters_before + width as u64
                && Instant::now() < pile_up_by
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            gate.release();
            clients
                .into_iter()
                .map(|c| {
                    c.join()
                        .unwrap_or_else(|_| Err("storm client panicked".to_string()))
                })
                .collect()
        });
        cell.runs += width;
        cell.checks += 1;
        let mut rows: Vec<(u8, bool, String, bool)> = Vec::new();
        let mut broken = false;
        for (member, result) in results.into_iter().enumerate() {
            match result {
                Ok(Response::Result {
                    exit_code,
                    verified,
                    render,
                    coalesced,
                    ..
                }) => rows.push((exit_code, verified, render, coalesced)),
                Ok(other) => {
                    broken = true;
                    cell.violations.push((
                        Invariant::CoalesceDivergence,
                        format!(
                            "storm member {member} got a non-result response (exit {})",
                            other.exit_code()
                        ),
                    ));
                }
                Err(message) => {
                    broken = true;
                    cell.violations.push((
                        Invariant::CoalesceDivergence,
                        format!("storm member {member} failed: {message}"),
                    ));
                }
            }
        }
        if !broken {
            let delta = handle.stats().verifications() - verifications_before;
            if delta != 1 {
                cell.violations.push((
                    Invariant::CoalesceDivergence,
                    format!("same-key storm cost {delta} verifications (want exactly 1)"),
                ));
            }
            let leaders = rows.iter().filter(|r| !r.3).count();
            if leaders != 1 {
                cell.violations.push((
                    Invariant::CoalesceDivergence,
                    format!("storm produced {leaders} leaders (want exactly 1)"),
                ));
            }
            let first = &rows[0];
            if rows
                .iter()
                .any(|r| (r.0, r.1, &r.2) != (first.0, first.1, &first.2))
            {
                cell.violations.push((
                    Invariant::CoalesceDivergence,
                    "storm members observed differing responses".to_string(),
                ));
            }
            cell.checks += 1;
            if normalize_render(&first.2) != baseline.render_norm {
                cell.violations.push((
                    Invariant::CoalesceDivergence,
                    "coalesced verdict diverged from a cold run".to_string(),
                ));
            }
        }
    }

    cell.checks += 1;
    if let Err(message) = handle.shutdown() {
        cell.violations.push((
            Invariant::Taxonomy,
            format!("clean shutdown failed: {message}"),
        ));
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    cell
}

/// Greedy shrink over a server plan (the daemon analogue of [`shrink`]).
fn shrink_serve(
    subject: &FuzzSubject,
    events: &[ServerEvent],
    invariant: Invariant,
    jobs: usize,
    config: &ServeFuzzConfig,
    baseline: &Baseline,
) -> (Vec<ServerEvent>, usize, usize) {
    let mut current: Vec<ServerEvent> = events.to_vec();
    let mut runs = 0usize;
    let mut checks = 0usize;
    let still_violates = |trial: &[ServerEvent], runs: &mut usize, checks: &mut usize| -> bool {
        let plan = ServerPlan::from_events(trial.iter().copied());
        let cell = run_serve_cell(subject, &plan, jobs, config, baseline);
        *runs += cell.runs;
        *checks += cell.checks;
        cell.violations.iter().any(|(inv, _)| *inv == invariant)
    };
    let mut progress = true;
    while progress && !current.is_empty() {
        progress = false;
        for i in 0..current.len() {
            let mut trial = current.clone();
            trial.remove(i);
            if still_violates(&trial, &mut runs, &mut checks) {
                current = trial;
                progress = true;
                break;
            }
        }
    }
    (current, runs, checks)
}

/// Runs a daemon-level campaign: per `(subject, seed, jobs)` cell, boot a
/// fresh `armada serve` daemon, drive it through the seeded [`ServerPlan`]
/// (killed workers, corrupted tier-2 entries under live readers, accept
/// jitter, same-key storms), and check the pipeline invariants that
/// transfer plus the two daemon-specific ones: `deadline_overrun` (every
/// request is answered within deadline + grace) and `coalesce_divergence`
/// (a herd costs one verification and every member sees the leader's
/// bytes). Violations shrink and get `armada fuzz --serve …
/// --server-events …` reproducer lines. The report is as deterministic as
/// the pipeline campaign's: same `(subjects, config)` → byte-identical
/// JSON.
pub fn run_serve_campaign(subjects: &[FuzzSubject], config: &ServeFuzzConfig) -> CampaignReport {
    quiet_injected_panics();
    let mut injected: Vec<(&'static str, usize)> =
        ALL_SERVER_FATES.iter().map(|f| (f.label(), 0)).collect();
    let mut violations: Vec<Violation> = Vec::new();
    let mut runs = 0usize;
    let mut checks = 0usize;
    let mut jobs_grid: Vec<usize> = Vec::new();
    for &jobs in &config.jobs {
        if !jobs_grid.contains(&jobs) {
            jobs_grid.push(jobs);
        }
    }
    if jobs_grid.is_empty() {
        jobs_grid.push(1);
    }

    for (subject_index, subject) in subjects.iter().enumerate() {
        let scratch = config.scratch_root.join(format!("s{subject_index}"));
        let (baseline, baseline_runs) = compute_baseline(subject, &scratch, &SimConfig::default());
        runs += baseline_runs;
        if let Some(error) = &baseline.error {
            violations.push(Violation {
                invariant: Invariant::Taxonomy,
                subject: subject.name.clone(),
                seed: 0,
                detail: format!("fault-free baseline failed: {error}"),
                plan: Vec::new(),
                shrunk: Vec::new(),
                server_plan: Vec::new(),
                server_shrunk: Vec::new(),
                replay: format!("armada verify {}", subject.name),
            });
            continue;
        }
        for &seed in &config.seeds {
            let plan = match &config.plan_override {
                Some(events) => ServerPlan::from_events(events.iter().copied()),
                None => ServerPlan::seeded(seed, SEQ_ORDINALS),
            };
            for entry in injected.iter_mut() {
                entry.1 += plan
                    .events()
                    .iter()
                    .filter(|e| e.fate.label() == entry.0)
                    .count();
            }
            let mut renders_by_jobs: Vec<(usize, Vec<Option<String>>)> = Vec::new();
            for &jobs in &jobs_grid {
                let cell = run_serve_cell(subject, &plan, jobs, config, &baseline);
                runs += cell.runs;
                checks += cell.checks;
                for (invariant, detail) in cell.violations {
                    let (shrunk, shrink_runs, shrink_checks) =
                        shrink_serve(subject, &plan.events(), invariant, jobs, config, &baseline);
                    runs += shrink_runs;
                    checks += shrink_checks;
                    let events_spec = shrunk
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let replay = if events_spec.is_empty() {
                        format!(
                            "armada fuzz --serve {} --seeds 1 --jobs {jobs}",
                            subject.name
                        )
                    } else {
                        format!(
                            "armada fuzz --serve {} --seeds 1 --jobs {jobs} \
                             --server-events {events_spec}",
                            subject.name
                        )
                    };
                    violations.push(Violation {
                        invariant,
                        subject: subject.name.clone(),
                        seed,
                        detail,
                        plan: Vec::new(),
                        shrunk: Vec::new(),
                        server_plan: plan.events(),
                        server_shrunk: shrunk,
                        replay,
                    });
                }
                renders_by_jobs.push((jobs, cell.seq_renders));
            }
            // Cross-jobs determinism: sequential renders must agree
            // wherever both job counts produced one.
            if let Some((first_jobs, first_renders)) = renders_by_jobs.first() {
                for (other_jobs, other_renders) in renders_by_jobs.iter().skip(1) {
                    checks += 1;
                    let diverged = first_renders
                        .iter()
                        .zip(other_renders.iter())
                        .any(|(a, b)| matches!((a, b), (Some(a), Some(b)) if a != b));
                    if diverged {
                        violations.push(Violation {
                            invariant: Invariant::Determinism,
                            subject: subject.name.clone(),
                            seed,
                            detail: format!(
                                "daemon renders differ between jobs={first_jobs} and \
                                 jobs={other_jobs}"
                            ),
                            plan: Vec::new(),
                            shrunk: Vec::new(),
                            server_plan: plan.events(),
                            server_shrunk: plan.events(),
                            replay: format!(
                                "armada fuzz --serve {} --seeds {} --jobs {}",
                                subject.name,
                                seed + 1,
                                jobs_grid
                                    .iter()
                                    .map(|j| j.to_string())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            ),
                        });
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&config.scratch_root);
    CampaignReport {
        subjects: subjects.iter().map(|s| s.name.clone()).collect(),
        seeds: config.seeds.clone(),
        jobs: jobs_grid,
        runs,
        checks,
        injected,
        violations,
        mode: "serve",
        mutate_bounds: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
        level Impl {
            var x: uint32;
            void main() { x := 2; print(x); }
        }
        level Spec {
            var x: uint32;
            void main() { x := *; print(x); }
        }
        proof P { refinement Impl Spec nondet_weakening }
    "#;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("armada-fuzz-unit-{tag}-{}", std::process::id()))
    }

    #[test]
    fn event_specs_round_trip() {
        let events = parse_events("torn_cert_write:P1, worker_abort:P2").unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fate, FaultFate::TornCertWrite);
        assert_eq!(events[1].recipe, "P2");
        assert!(parse_events("no_separator").is_err());
        assert!(parse_events("").unwrap().is_empty());
    }

    #[test]
    fn event_specs_reject_unknown_fates_naming_the_token() {
        let err = parse_events("bogus:P").unwrap_err();
        match &err {
            PipelineError::Events { token, message } => {
                assert_eq!(token, "bogus:P");
                assert!(message.contains("unknown fault fate `bogus`"), "{message}");
            }
            other => panic!("expected Events error, got {other:?}"),
        }
        assert!(err.to_string().contains("bogus:P"));
    }

    #[test]
    fn event_specs_reject_duplicate_tokens() {
        // A FaultPlan stores a set: without rejection the second token
        // would silently vanish and the reproducer line would lie about
        // how many faults it injects.
        let err = parse_events("worker_abort:P1,torn_cert_write:P2,worker_abort:P1").unwrap_err();
        match &err {
            PipelineError::Events { token, .. } => assert_eq!(token, "worker_abort:P1"),
            other => panic!("expected Events error, got {other:?}"),
        }
        // Same fate on different recipes is not a duplicate.
        assert_eq!(
            parse_events("worker_abort:P1,worker_abort:P2")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn server_event_specs_round_trip_and_reject_bad_tokens() {
        let events = parse_server_events("worker_kill:0, same_key_storm:2").unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].fate, ServerFate::WorkerKill);
        assert_eq!(events[1].ordinal, 2);
        let spec = events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(parse_server_events(&spec).unwrap(), events);
        for bad in [
            "dance:0",
            "worker_kill",
            "worker_kill:zero",
            "worker_kill:0,worker_kill:0",
        ] {
            assert!(
                matches!(parse_server_events(bad), Err(PipelineError::Events { .. })),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn tiny_serve_campaign_covers_every_server_fate_and_stays_clean() {
        let subjects = [FuzzSubject::new("tiny", TINY)];
        let config = ServeFuzzConfig {
            seeds: vec![0],
            jobs: vec![1],
            storm_width: 3,
            scratch_root: scratch("serve-campaign"),
            plan_override: Some(
                parse_server_events(
                    "worker_kill:0,tier2_corrupt:1,accept_jitter:2,same_key_storm:0",
                )
                .unwrap(),
            ),
            ..ServeFuzzConfig::default()
        };
        let report = run_serve_campaign(&subjects, &config);
        assert_eq!(report.mode, "serve");
        assert!(
            report.ok(),
            "serve campaign tripped invariants: {}",
            report.to_json()
        );
        assert!(report.all_fates_injected(), "{:?}", report.injected);
        // Byte-identical rerun: the report is a pure function of
        // (subjects, config).
        let again = run_serve_campaign(&subjects, &config);
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn tiny_campaign_is_clean_and_deterministic() {
        let subjects = [FuzzSubject::new("tiny", TINY)];
        let config = FuzzConfig {
            seeds: (0..4).collect(),
            jobs: vec![1, 2],
            scratch_root: scratch("clean"),
            ..FuzzConfig::default()
        };
        let first = run_campaign(&subjects, &config);
        assert!(
            first.ok(),
            "violations: {:?}",
            first
                .violations
                .iter()
                .map(|v| &v.detail)
                .collect::<Vec<_>>()
        );
        assert!(first.runs > 0 && first.checks > 0);
        let second = run_campaign(&subjects, &config);
        assert_eq!(first.to_json(), second.to_json());
    }

    #[test]
    fn spill_and_checkpoint_fates_recover_byte_identically() {
        // The two storage fates are recoverable: a torn checkpoint manifest
        // must fall back to a cold start, and a corrupt spill-page read
        // must be checksum-rejected and re-read — never decoded into
        // states. Either failure would change the verdict (or panic), so a
        // clean campaign with verdict-invariance checked is the assertion
        // that a corrupt page is never served and a torn checkpoint never
        // resumed.
        let subjects = [FuzzSubject::new("tiny", TINY)];
        let config = FuzzConfig {
            seeds: vec![0],
            jobs: vec![1, 2],
            scratch_root: scratch("spill-ck"),
            plan_override: Some(
                parse_events("torn_checkpoint_write:P,corrupt_spill_read:P").unwrap(),
            ),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&subjects, &config);
        assert!(
            report.ok(),
            "violations: {:?}",
            report
                .violations
                .iter()
                .map(|v| (v.invariant, &v.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.total_injected(), 2);
        // Both fates must be recoverable, or the campaign above would have
        // skipped the verdict-invariance comparison entirely.
        assert!(FaultPlan::from_events(config.plan_override.unwrap()).is_recoverable_only());
    }

    #[test]
    fn mutant_store_trips_the_corrupt_cert_invariant() {
        let subjects = [FuzzSubject::new("tiny", TINY)];
        let config = FuzzConfig {
            seeds: vec![0],
            jobs: vec![1],
            scratch_root: scratch("mutant"),
            mutant_unchecked_loads: true,
            plan_override: Some(vec![FaultEvent {
                fate: FaultFate::BitFlipCertWrite,
                recipe: "P".to_string(),
            }]),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&subjects, &config);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == Invariant::CorruptCertServed),
            "mutant not caught: {:?}",
            report
                .violations
                .iter()
                .map(|v| (v.invariant, &v.detail))
                .collect::<Vec<_>>()
        );
        let caught = report
            .violations
            .iter()
            .find(|v| v.invariant == Invariant::CorruptCertServed)
            .unwrap();
        assert!(caught.shrunk.len() <= 3, "shrunk: {:?}", caught.shrunk);
        assert!(caught.replay.contains("--events"));
    }
}

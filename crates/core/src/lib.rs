//! # armada
//!
//! A from-scratch Rust reproduction of *“Armada: Low-Effort Verification of
//! High-Performance Concurrent Programs”* (Lorch et al., PLDI 2020).
//!
//! This crate is the tool facade (Figure 1 of the paper): given a source
//! file containing an implementation level, a series of intermediate
//! levels, a specification level, and `proof` recipes connecting adjacent
//! pairs, [`Pipeline::run`] —
//!
//! 1. parses and type-checks the module (`armada-lang`);
//! 2. checks the implementation level against the compilable *core* subset;
//! 3. runs each recipe's **strategy** (`armada-strategies`), generating and
//!    discharging the refinement proof obligations;
//! 4. independently re-validates each adjacent pair with the **bounded
//!    refinement model checker** (`armada-verify`), every interleaving and
//!    store-buffer schedule of the bounded instance;
//! 5. composes the per-pair certificates by transitivity into the
//!    end-to-end claim `Implementation ⊑ Specification`.
//!
//! Effort metrics mirroring the paper's evaluation (§6: program SLOC,
//! recipe SLOC, customization SLOC, generated proof SLOC) are available via
//! [`EffortReport`].
//!
//! # Example
//!
//! ```
//! use armada::Pipeline;
//!
//! let source = r#"
//!     level Impl {
//!         var x: uint32;
//!         void main() { x := 2; print(x); }
//!     }
//!     level Spec {
//!         var x: uint32;
//!         void main() { x := *; print(x); }
//!     }
//!     proof P { refinement Impl Spec nondet_weakening }
//! "#;
//! let pipeline = Pipeline::from_source(source).unwrap();
//! let report = pipeline.run().unwrap();
//! assert!(report.verified());
//! assert_eq!(report.chain_claim().unwrap(), "Impl ⊑ Spec");
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub use armada_backend as backend;
pub use armada_lang as lang;
pub use armada_proof as proof;
pub use armada_regions as regions;
pub use armada_sm as sm;
pub use armada_strategies as strategies;
pub use armada_verify as verify;

use armada_lang::typeck::TypedModule;
use armada_lang::{check_module, count_sloc, parse_module};
use armada_proof::relation::StandardRelation;
use armada_proof::StrategyReport;
use armada_sm::lower;
use armada_verify::{check_refinement, RefinementCert, RefinementChain, SimConfig};

/// A configured verification pipeline for one Armada module.
#[derive(Debug)]
pub struct Pipeline {
    source: String,
    typed: TypedModule,
    sim: SimConfig,
    /// Run the bounded refinement model checker in addition to the
    /// strategies (on by default; heavy case studies may disable it for the
    /// strategy-only effort accounting).
    pub semantic_check: bool,
}

/// Everything `Pipeline::run` produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-recipe strategy reports (obligations + verdicts + generated
    /// proof text).
    pub strategy_reports: Vec<StrategyReport>,
    /// Per-recipe bounded refinement results (empty when `semantic_check`
    /// is off).
    pub refinements: Vec<Result<RefinementCert, String>>,
    /// The transitively composed chain, when every pair verified.
    pub chain: Option<RefinementChain>,
}

impl PipelineReport {
    /// True when every obligation of every recipe was proved and (if run)
    /// every semantic check passed.
    pub fn verified(&self) -> bool {
        self.strategy_reports.iter().all(|r| r.success())
            && self.refinements.iter().all(|r| r.is_ok())
    }

    /// The end-to-end refinement claim, e.g. `Implementation ⊑ Spec`.
    pub fn chain_claim(&self) -> Option<String> {
        self.chain.as_ref().map(|c| c.claim())
    }

    /// Total generated proof SLOC across all recipes.
    pub fn generated_sloc(&self) -> usize {
        self.strategy_reports
            .iter()
            .map(|r| r.generated_sloc())
            .sum()
    }

    /// A human-readable failure summary (empty when verified).
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for report in &self.strategy_reports {
            if !report.success() {
                out.push_str(&format!(
                    "recipe {}:\n{}",
                    report.recipe,
                    report.failure_summary()
                ));
            }
        }
        for (index, refinement) in self.refinements.iter().enumerate() {
            if let Err(reason) = refinement {
                out.push_str(&format!("semantic check {index}: {reason}\n"));
            }
        }
        out
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in &self.strategy_reports {
            write!(f, "{report}")?;
        }
        match (&self.chain, self.verified()) {
            (Some(chain), true) => writeln!(f, "VERIFIED: {}", chain.claim()),
            _ => writeln!(f, "NOT VERIFIED\n{}", self.failure_summary()),
        }
    }
}

impl Pipeline {
    /// Parses and type-checks `source`.
    ///
    /// # Errors
    ///
    /// Returns the front end's first diagnostic.
    pub fn from_source(source: &str) -> Result<Pipeline, String> {
        let module = parse_module(source).map_err(|e| e.to_string())?;
        let typed = check_module(&module).map_err(|e| e.to_string())?;
        Ok(Pipeline {
            source: source.to_string(),
            typed,
            sim: SimConfig::default(),
            semantic_check: true,
        })
    }

    /// Overrides the bounds used by model-checked discharges and semantic
    /// checks.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Pipeline {
        self.sim = sim;
        self
    }

    /// The type-checked module.
    pub fn typed(&self) -> &TypedModule {
        &self.typed
    }

    /// The level chain implied by the recipes: implementation first.
    ///
    /// # Errors
    ///
    /// Returns a message if the recipes do not form a single chain.
    pub fn level_chain(&self) -> Result<Vec<String>, String> {
        let recipes = &self.typed.module.recipes;
        if recipes.is_empty() {
            return Err("module has no proof recipes".to_string());
        }
        // The implementation appears as a `low` but never as a `high`.
        let start = recipes
            .iter()
            .map(|r| r.low.clone())
            .find(|low| recipes.iter().all(|r| r.high != *low))
            .ok_or_else(|| "recipes form a cycle".to_string())?;
        let mut chain = vec![start];
        loop {
            let current = chain.last().expect("nonempty");
            match recipes.iter().find(|r| r.low == *current) {
                Some(recipe) => {
                    if chain.contains(&recipe.high) {
                        return Err("recipes form a cycle".to_string());
                    }
                    chain.push(recipe.high.clone());
                }
                None => break,
            }
        }
        Ok(chain)
    }

    /// Checks that the implementation level (the chain's first level) is in
    /// compilable core Armada.
    ///
    /// # Errors
    ///
    /// Returns the core checker's first diagnostic.
    pub fn check_core(&self) -> Result<(), String> {
        let chain = self.level_chain()?;
        let name = &chain[0];
        let level = self
            .typed
            .module
            .level(name)
            .ok_or_else(|| format!("unknown level `{name}`"))?;
        let info = self
            .typed
            .level_info(name)
            .ok_or_else(|| format!("level `{name}` not checked"))?;
        armada_lang::core_check::check_core(level, info).map_err(|e| e.to_string())
    }

    /// Runs the whole pipeline.
    ///
    /// With `jobs > 1` in the sim config's bounds, the per-recipe work —
    /// strategy obligations plus the bounded semantic check — runs
    /// concurrently across the chain's links (and each semantic check is
    /// itself multi-core). Reports keep recipe order and the first
    /// infrastructure error in recipe order wins, so the output is
    /// identical to a serial run.
    ///
    /// # Errors
    ///
    /// Returns a message for *infrastructure* failures (unknown levels,
    /// lowering errors); proof failures are reported inside the
    /// [`PipelineReport`].
    pub fn run(&self) -> Result<PipelineReport, String> {
        type RecipeOutcome =
            Result<(StrategyReport, Option<Result<RefinementCert, String>>), String>;
        let relation = StandardRelation::new(self.typed.module.relation());
        let recipes = &self.typed.module.recipes;
        let run_one = |recipe: &_| -> RecipeOutcome {
            let report = armada_strategies::run_recipe(&self.typed, recipe, self.sim.clone())?;
            if !self.semantic_check {
                return Ok((report, None));
            }
            let low = lower(&self.typed, &recipe.low).map_err(|e| e.to_string())?;
            let high = lower(&self.typed, &recipe.high).map_err(|e| e.to_string())?;
            let refinement = match check_refinement(&low, &high, &relation, &self.sim) {
                Ok(cert) => Ok(cert),
                Err(ce) => Err(ce.to_string()),
            };
            Ok((report, Some(refinement)))
        };

        let jobs = self.sim.bounds.jobs.max(1);
        let outcomes: Vec<RecipeOutcome> = if jobs > 1 && recipes.len() > 1 {
            let slots: Vec<OnceLock<RecipeOutcome>> =
                (0..recipes.len()).map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(recipes.len()) {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= recipes.len() {
                            break;
                        }
                        let outcome = run_one(&recipes[index]);
                        slots[index]
                            .set(outcome)
                            .ok()
                            .expect("each slot claimed once");
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("every slot filled"))
                .collect()
        } else {
            recipes.iter().map(run_one).collect()
        };

        let mut strategy_reports = Vec::new();
        let mut refinements = Vec::new();
        let mut certs = Vec::new();
        for (recipe, outcome) in recipes.iter().zip(outcomes) {
            let (report, refinement) = outcome?;
            let strategy_ok = report.success();
            strategy_reports.push(report);
            match refinement {
                Some(Ok(cert)) => {
                    certs.push(cert.clone());
                    refinements.push(Ok(cert));
                }
                Some(Err(reason)) => refinements.push(Err(reason)),
                None if strategy_ok => certs.push(RefinementCert {
                    low: recipe.low.clone(),
                    high: recipe.high.clone(),
                    product_nodes: 0,
                    low_transitions: 0,
                }),
                None => {}
            }
        }
        // Order certificates along the chain and compose.
        let chain = match self.level_chain() {
            Ok(levels) => {
                let mut ordered = Vec::new();
                for pair in levels.windows(2) {
                    if let Some(cert) = certs.iter().find(|c| c.low == pair[0] && c.high == pair[1])
                    {
                        ordered.push(cert.clone());
                    }
                }
                if ordered.len() + 1 == levels.len() {
                    RefinementChain::compose(ordered).ok()
                } else {
                    None
                }
            }
            Err(_) => None,
        };
        Ok(PipelineReport {
            strategy_reports,
            refinements,
            chain,
        })
    }

    /// Computes the paper-style effort metrics for this module.
    pub fn effort(&self, report: &PipelineReport) -> EffortReport {
        EffortReport::compute(&self.source, &self.typed, report)
    }
}

/// Effort metrics per level and per recipe, mirroring §6's numbers.
#[derive(Debug, Clone)]
pub struct EffortReport {
    /// `(level name, SLOC of the level's source)` in chain order when a
    /// chain exists, else declaration order.
    pub level_sloc: Vec<(String, usize)>,
    /// Per-recipe rows.
    pub recipes: Vec<RecipeEffort>,
}

/// Effort metrics for one recipe.
#[derive(Debug, Clone)]
pub struct RecipeEffort {
    /// Recipe name.
    pub name: String,
    /// Strategy keyword.
    pub strategy: String,
    /// SLOC of the recipe, excluding lemma customizations.
    pub recipe_sloc: usize,
    /// SLOC of lemma customizations (§4.1.2).
    pub customization_sloc: usize,
    /// SLOC of the generated proof artifact.
    pub generated_sloc: usize,
    /// Number of obligations generated.
    pub obligations: usize,
}

impl EffortReport {
    fn compute(source: &str, typed: &TypedModule, report: &PipelineReport) -> EffortReport {
        let level_sloc = typed
            .module
            .levels
            .iter()
            .map(|level| (level.name.clone(), count_sloc(level.span.text(source))))
            .collect();
        let recipes = typed
            .module
            .recipes
            .iter()
            .zip(&report.strategy_reports)
            .map(|(recipe, strategy_report)| {
                let total = count_sloc(recipe.span.text(source));
                let customization: usize = recipe
                    .lemmas
                    .iter()
                    .map(|lemma| count_sloc(lemma.span.text(source)))
                    .sum();
                RecipeEffort {
                    name: recipe.name.clone(),
                    strategy: recipe.strategy.keyword().to_string(),
                    recipe_sloc: total.saturating_sub(customization),
                    customization_sloc: customization,
                    generated_sloc: strategy_report.generated_sloc(),
                    obligations: strategy_report.obligations.len(),
                }
            })
            .collect();
        EffortReport {
            level_sloc,
            recipes,
        }
    }

    /// Total generated proof SLOC.
    pub fn total_generated(&self) -> usize {
        self.recipes.iter().map(|r| r.generated_sloc).sum()
    }
}

impl fmt::Display for EffortReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24} {:>8}", "level", "SLOC")?;
        for (name, sloc) in &self.level_sloc {
            writeln!(f, "{name:<24} {sloc:>8}")?;
        }
        writeln!(
            f,
            "{:<24} {:<18} {:>7} {:>7} {:>10} {:>6}",
            "recipe", "strategy", "recipe", "custom", "generated", "oblig"
        )?;
        for recipe in &self.recipes {
            writeln!(
                f,
                "{:<24} {:<18} {:>7} {:>7} {:>10} {:>6}",
                recipe.name,
                recipe.strategy,
                recipe.recipe_sloc,
                recipe.customization_sloc,
                recipe.generated_sloc,
                recipe.obligations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_STEP: &str = r#"
        level Impl {
            var x: uint32;
            void main() { x := 2; print(x); }
        }
        level Mid {
            var x: uint32;
            void main() { x := *; print(x); }
        }
        level Spec {
            var x: uint32;
            ghost var g: int;
            void main() { x := *; g := 1; print(x); }
        }
        proof P1 { refinement Impl Mid nondet_weakening }
        proof P2 { refinement Mid Spec var_intro }
    "#;

    #[test]
    fn pipeline_runs_and_composes_chain() {
        let pipeline = Pipeline::from_source(TWO_STEP).unwrap();
        assert_eq!(pipeline.level_chain().unwrap(), vec!["Impl", "Mid", "Spec"]);
        pipeline.check_core().unwrap();
        let report = pipeline.run().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Impl ⊑ Spec");
        assert_eq!(report.refinements.len(), 2);
    }

    #[test]
    fn effort_report_counts_sloc() {
        let pipeline = Pipeline::from_source(TWO_STEP).unwrap();
        let report = pipeline.run().unwrap();
        let effort = pipeline.effort(&report);
        assert_eq!(effort.level_sloc.len(), 3);
        assert!(effort.level_sloc.iter().all(|(_, sloc)| *sloc > 0));
        assert_eq!(effort.recipes.len(), 2);
        assert!(
            effort.total_generated() > 100,
            "generated proofs are substantial"
        );
        let text = effort.to_string();
        assert!(text.contains("nondet_weakening"));
    }

    #[test]
    fn broken_proof_is_reported_not_crashed() {
        let source = r#"
            level Impl { void main() { print(1); } }
            level Spec { void main() { print(2); } }
            proof P { refinement Impl Spec weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        let report = pipeline.run().unwrap();
        assert!(!report.verified());
        assert!(!report.failure_summary().is_empty());
        assert!(report.to_string().contains("NOT VERIFIED"));
    }

    #[test]
    fn non_core_implementation_is_rejected() {
        let source = r#"
            level Impl { var x: uint32; void main() { x ::= 1; } }
            level Spec { var x: uint32; void main() { x ::= 1; } }
            proof P { refinement Impl Spec weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        assert!(pipeline.check_core().is_err());
    }

    #[test]
    fn chain_detection_rejects_cycles() {
        let source = r#"
            level A { void main() { } }
            level B { void main() { } }
            proof P1 { refinement A B weakening }
            proof P2 { refinement B A weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        assert!(pipeline.level_chain().is_err());
    }
}

//! # armada
//!
//! A from-scratch Rust reproduction of *“Armada: Low-Effort Verification of
//! High-Performance Concurrent Programs”* (Lorch et al., PLDI 2020).
//!
//! This crate is the tool facade (Figure 1 of the paper): given a source
//! file containing an implementation level, a series of intermediate
//! levels, a specification level, and `proof` recipes connecting adjacent
//! pairs, [`Pipeline::run`] —
//!
//! 1. parses and type-checks the module (`armada-lang`);
//! 2. checks the implementation level against the compilable *core* subset;
//! 3. runs each recipe's **strategy** (`armada-strategies`), generating and
//!    discharging the refinement proof obligations;
//! 4. independently re-validates each adjacent pair with the **bounded
//!    refinement model checker** (`armada-verify`), every interleaving and
//!    store-buffer schedule of the bounded instance;
//! 5. composes the per-pair certificates by transitivity into the
//!    end-to-end claim `Implementation ⊑ Specification`.
//!
//! Effort metrics mirroring the paper's evaluation (§6: program SLOC,
//! recipe SLOC, customization SLOC, generated proof SLOC) are available via
//! [`EffortReport`].
//!
//! # Fault tolerance
//!
//! The tool's value is that it composes many per-level-pair proofs into one
//! refinement chain, so a single failing link must degrade into a precise
//! partial result, never a lost run:
//!
//! * **Panic isolation.** Each recipe's strategy and semantic check run
//!   under `catch_unwind`; a panicking worker marks *that recipe* crashed
//!   in the [`PipelineReport`]'s per-recipe [`RecipeReport`] outcomes while
//!   every other recipe completes, identically at any job count.
//! * **Budget degradation.** Node budgets ([`SimConfig::max_nodes`]) and
//!   wall-clock deadlines ([`sm::Bounds::deadline`]) are enforced
//!   cooperatively at wave boundaries; exhaustion yields a reported
//!   budget-exhausted outcome, not a hang, and the pipeline continues with
//!   the remaining recipes.
//! * **Crash-safe resumability.** With [`Pipeline::with_cert_store`] (or
//!   the `ARMADA_CERT_CACHE` environment variable when no store was
//!   configured programmatically), each verified pair's certificate is
//!   persisted content-addressed (atomic rename + checksum, see
//!   [`verify::store`]); an interrupted run's completed certs are reused on
//!   rerun, and a corrupted record silently falls back to recomputation.
//! * **Spill and resume.** Each semantic check can run its state arenas
//!   under a memory cap ([`sm::SpillSpec`]), paging cold shards to disk
//!   behind checksums, and can checkpoint its frontier at wave boundaries
//!   ([`sm::CheckpointSpec`]) so an interrupted check resumes instead of
//!   restarting; both knobs change how a check runs, never what it
//!   concludes.
//! * **Deterministic fault injection.** [`FaultPlan`] drives all of the
//!   above in tests: injected panics, forced budget exhaustion, simulated
//!   mid-run kills, torn/bit-flipped cert writes, corrupt cert reads,
//!   wave-boundary stalls, delayed cancels, worker-slot aborts, deadline
//!   jitter, torn checkpoint writes, and corrupt spill-page reads — all
//!   reproducible from a seed (see [`fault::FaultFate`]). The [`fuzz`]
//!   module sweeps seed grids over these faults and checks campaign-level
//!   invariants.
//!
//! # Example
//!
//! ```
//! use armada::Pipeline;
//!
//! let source = r#"
//!     level Impl {
//!         var x: uint32;
//!         void main() { x := 2; print(x); }
//!     }
//!     level Spec {
//!         var x: uint32;
//!         void main() { x := *; print(x); }
//!     }
//!     proof P { refinement Impl Spec nondet_weakening }
//! "#;
//! let pipeline = Pipeline::from_source(source).unwrap();
//! let report = pipeline.run().unwrap();
//! assert!(report.verified());
//! assert_eq!(report.chain_claim().unwrap(), "Impl ⊑ Spec");
//! ```

pub mod error;
pub mod fault;
pub mod fuzz;
pub mod proto;
pub mod serve;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub use armada_backend as backend;
pub use armada_lang as lang;
pub use armada_proof as proof;
pub use armada_recheck as recheck;
pub use armada_regions as regions;
pub use armada_sm as sm;
pub use armada_strategies as strategies;
pub use armada_verify as verify;

pub use error::PipelineError;
pub use fault::{FaultFate, FaultPlan};

use armada_lang::ast::Recipe;
use armada_lang::typeck::TypedModule;
use armada_lang::{check_module, count_sloc, parse_module};
use armada_proof::relation::StandardRelation;
use armada_proof::StrategyReport;
use armada_runtime::StageTelemetry;
use armada_sm::lower;
use armada_verify::store::{CertKey, CertStore, ReadFault, WriteFault};
use armada_verify::tier::TieredStore;
use armada_verify::{
    check_refinement, check_refinement_with_telemetry, RefinementCert, RefinementChain, SimConfig,
};

/// What one recipe contributed to the report: a crashed or skipped recipe
/// contributes only its outcome row.
struct RecipeRun {
    strategy_report: Option<StrategyReport>,
    refinement: Option<Result<RefinementCert, String>>,
    chain_cert: Option<RefinementCert>,
    outcome: RecipeReport,
}

/// Renders a caught panic payload for an outcome row.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A configured verification pipeline for one Armada module.
#[derive(Debug)]
pub struct Pipeline {
    source: String,
    typed: TypedModule,
    sim: SimConfig,
    /// Run the bounded refinement model checker in addition to the
    /// strategies (on by default; heavy case studies may disable it for the
    /// strategy-only effort accounting).
    pub semantic_check: bool,
    /// Persist/reuse refinement certificates, when configured. A plain
    /// disk store (`with_cert_store`) and a memory→disk hierarchy
    /// (`with_tiered_store`, the serve daemon's configuration) are the
    /// same thing here: a [`TieredStore`] with zero or one memory tiers.
    cert_store: Option<TieredStore>,
    /// Deterministic fault injection (empty by default; tests only).
    fault: FaultPlan,
    /// Collect per-stage pipeline histograms during semantic checks (off
    /// by default; diagnostics only — never changes results).
    telemetry: bool,
    /// Self-recheck warm cert-cache hits (`--recheck`): replay the cached
    /// witness against the spec semantics via `armada-recheck` before
    /// trusting it; a hit whose witness fails is demoted to a miss and
    /// recomputed. Off by default — the store already validates witnesses
    /// structurally on every load.
    recheck: bool,
}

/// Outcome class of one recipe in a [`PipelineReport`]. One run produces
/// one status per recipe; a failing recipe never poisons its siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecipeStatus {
    /// Strategy obligations proved and (if run) the semantic check produced
    /// a certificate.
    Verified,
    /// A proof obligation failed or the checker found a real
    /// counterexample: the refinement claim is refuted on this instance.
    Refuted,
    /// The semantic check ran out of node budget or wall-clock deadline:
    /// the claim is unknown, reported with the frontier where the search
    /// stopped.
    BudgetExhausted,
    /// A worker panicked inside this recipe's strategy or semantic check;
    /// the panic was isolated to this recipe.
    Crashed,
    /// Never ran: the pipeline aborted before reaching this recipe.
    Skipped,
}

impl RecipeStatus {
    /// Lower-case human label (also the CLI's vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            RecipeStatus::Verified => "verified",
            RecipeStatus::Refuted => "refuted",
            RecipeStatus::BudgetExhausted => "budget exhausted",
            RecipeStatus::Crashed => "crashed",
            RecipeStatus::Skipped => "skipped",
        }
    }

    /// The CLI exit code for a run whose worst outcome is this status:
    /// 0 verified, 1 refuted, 3 budget exhausted or skipped, 4 crashed
    /// (2 is reserved for usage/IO errors). The fuzzer's taxonomy
    /// invariant pins every run to this 0–4 vocabulary.
    pub fn exit_code(self) -> u8 {
        match self {
            RecipeStatus::Verified => 0,
            RecipeStatus::Refuted => 1,
            RecipeStatus::BudgetExhausted | RecipeStatus::Skipped => 3,
            RecipeStatus::Crashed => 4,
        }
    }
}

/// How a recipe's certificate was obtained, when a cert store is
/// configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// No cert store configured (or the semantic check did not run).
    Disabled,
    /// A checksum-valid stored certificate was reused; the check was
    /// skipped.
    Hit,
    /// No usable stored certificate; the check ran (and its result was
    /// persisted on success).
    Miss,
}

/// One recipe's outcome row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecipeReport {
    /// Recipe name.
    pub recipe: String,
    /// The lower (more concrete) level.
    pub low: String,
    /// The higher (more abstract) level.
    pub high: String,
    /// Outcome class.
    pub status: RecipeStatus,
    /// Human-readable detail: certificate statistics, the failure's first
    /// lines, or the isolated panic message.
    pub detail: String,
    /// Cert-store disposition for this recipe.
    pub cache: CacheDisposition,
    /// Per-stage pipeline histograms from this recipe's semantic check,
    /// when telemetry was requested and the check actually ran (a cache
    /// hit or a strategy-only run records nothing). The values are
    /// wall-clock and nondeterministic, so they are deliberately excluded
    /// from `Display` (the CLI renders them to stderr) and never hashed
    /// into a [`CertKey`].
    pub telemetry: Option<StageTelemetry>,
}

impl fmt::Display for RecipeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recipe {}: {}", self.recipe, self.status.label())?;
        match self.cache {
            CacheDisposition::Hit => write!(f, " (cert cache hit)")?,
            CacheDisposition::Miss => write!(f, " (cert cache miss)")?,
            CacheDisposition::Disabled => {}
        }
        let first_line = self.detail.lines().next().unwrap_or("");
        if !first_line.is_empty() {
            write!(f, " — {first_line}")?;
        }
        Ok(())
    }
}

/// Everything `Pipeline::run` produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-recipe strategy reports (obligations + verdicts + generated
    /// proof text), for every recipe whose strategy actually ran.
    pub strategy_reports: Vec<StrategyReport>,
    /// Per-recipe bounded refinement results (empty when `semantic_check`
    /// is off); a crashed or skipped recipe contributes no entry.
    pub refinements: Vec<Result<RefinementCert, String>>,
    /// One outcome row per recipe, in declaration order — present for
    /// every recipe, including crashed and skipped ones.
    pub outcomes: Vec<RecipeReport>,
    /// The transitively composed chain, when every pair verified.
    pub chain: Option<RefinementChain>,
    /// Cert-store records that were present but failed validation during
    /// this run (and were silently recomputed). Zero when no store was
    /// configured. Diagnostic only — excluded from `Display`, surfaced by
    /// the CLI as a one-line stderr warning under `--telemetry` so tier-2
    /// corruption is observable instead of invisible.
    pub corrupt_loads: u64,
}

impl PipelineReport {
    /// True when every obligation of every recipe was proved and (if run)
    /// every semantic check passed — i.e. every recipe's outcome is
    /// [`RecipeStatus::Verified`].
    pub fn verified(&self) -> bool {
        self.strategy_reports.iter().all(|r| r.success())
            && self.refinements.iter().all(|r| r.is_ok())
            && self
                .outcomes
                .iter()
                .all(|o| o.status == RecipeStatus::Verified)
    }

    /// The most severe outcome class across recipes (`Verified` when all
    /// verified). Severity: crashed > skipped > budget-exhausted > refuted.
    pub fn worst_status(&self) -> RecipeStatus {
        let severity = |status: RecipeStatus| match status {
            RecipeStatus::Crashed => 4,
            RecipeStatus::Skipped => 3,
            RecipeStatus::BudgetExhausted => 2,
            RecipeStatus::Refuted => 1,
            RecipeStatus::Verified => 0,
        };
        self.outcomes
            .iter()
            .map(|o| o.status)
            .max_by_key(|&s| severity(s))
            .unwrap_or(RecipeStatus::Verified)
    }

    /// Recipes whose certificate came from the cert store.
    pub fn cache_hits(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.cache == CacheDisposition::Hit)
            .count()
    }

    /// Recipes whose semantic check ran because no stored certificate was
    /// usable.
    pub fn cache_misses(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.cache == CacheDisposition::Miss)
            .count()
    }

    /// The end-to-end refinement claim, e.g. `Implementation ⊑ Spec`.
    pub fn chain_claim(&self) -> Option<String> {
        self.chain.as_ref().map(|c| c.claim())
    }

    /// A combined digest over every certificate witness this run produced
    /// or served, in recipe order — what `armada serve` attaches to
    /// `result` frames so a client can tie a verdict to the exact
    /// witnesses behind it (and audit them via `armada recheck`). `None`
    /// when the run yielded no certificates.
    pub fn witness_digest(&self) -> Option<String> {
        let mut h = armada_recheck::Fnv::new();
        let mut any = false;
        for cert in self.refinements.iter().filter_map(|r| r.as_ref().ok()) {
            h.u64(cert.witness.digest);
            any = true;
        }
        any.then(|| format!("{:016x}", h.finish()))
    }

    /// Total generated proof SLOC across all recipes.
    pub fn generated_sloc(&self) -> usize {
        self.strategy_reports
            .iter()
            .map(|r| r.generated_sloc())
            .sum()
    }

    /// A human-readable failure summary (empty when verified).
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for report in &self.strategy_reports {
            if !report.success() {
                out.push_str(&format!(
                    "recipe {}:\n{}",
                    report.recipe,
                    report.failure_summary()
                ));
            }
        }
        for (index, refinement) in self.refinements.iter().enumerate() {
            if let Err(reason) = refinement {
                out.push_str(&format!("semantic check {index}: {reason}\n"));
            }
        }
        // Crashed and skipped recipes have no strategy report or refinement
        // entry; their outcome row is the only record of what happened.
        for outcome in &self.outcomes {
            if matches!(
                outcome.status,
                RecipeStatus::Crashed | RecipeStatus::Skipped
            ) {
                out.push_str(&format!(
                    "recipe {}: {}: {}\n",
                    outcome.recipe,
                    outcome.status.label(),
                    outcome.detail
                ));
            }
        }
        out
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in &self.strategy_reports {
            write!(f, "{report}")?;
        }
        for outcome in &self.outcomes {
            writeln!(f, "{outcome}")?;
        }
        match (&self.chain, self.verified()) {
            (Some(chain), true) => writeln!(f, "VERIFIED: {}", chain.claim()),
            _ => writeln!(f, "NOT VERIFIED\n{}", self.failure_summary()),
        }
    }
}

impl Pipeline {
    /// Parses and type-checks `source`.
    ///
    /// # Errors
    ///
    /// Returns the front end's first diagnostic, span included.
    pub fn from_source(source: &str) -> Result<Pipeline, PipelineError> {
        let module = parse_module(source)?;
        let typed = check_module(&module)?;
        Ok(Pipeline {
            source: source.to_string(),
            typed,
            sim: SimConfig::default(),
            semantic_check: true,
            cert_store: None,
            fault: FaultPlan::default(),
            telemetry: false,
            recheck: false,
        })
    }

    /// Replays every warm cert-cache hit's witness against the spec
    /// semantics before serving it (the CLI's `--recheck`). A failing
    /// witness demotes the hit to a miss and the check reruns; verdicts
    /// are unchanged either way.
    pub fn with_recheck(mut self, recheck: bool) -> Pipeline {
        self.recheck = recheck;
        self
    }

    /// Collects per-stage latency/occupancy histograms during each
    /// recipe's semantic check (see [`RecipeReport::telemetry`]). Purely
    /// diagnostic: verdicts, certificates, and the report's rendering are
    /// byte-identical with telemetry on or off.
    pub fn with_telemetry(mut self, telemetry: bool) -> Pipeline {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the bounds used by model-checked discharges and semantic
    /// checks.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Pipeline {
        self.sim = sim;
        self
    }

    /// Persists refinement certificates to `store` and reuses
    /// checksum-valid entries on subsequent runs (see [`verify::store`]).
    pub fn with_cert_store(mut self, store: CertStore) -> Pipeline {
        self.cert_store = Some(TieredStore::disk(store));
        self
    }

    /// Uses a full cache hierarchy — typically a shared in-memory tier in
    /// front of a disk store (see [`verify::tier`]); the serve daemon
    /// passes one hierarchy to every request's pipeline.
    pub fn with_tiered_store(mut self, store: TieredStore) -> Pipeline {
        self.cert_store = Some(store);
        self
    }

    /// The cert store this run will use: the explicitly configured one, or
    /// — when none was configured — the `ARMADA_CERT_CACHE` environment
    /// variable (a directory path; an empty value selects the conventional
    /// `target/armada-certs/`). Returns `None` when caching is off.
    fn resolved_cert_store(&self) -> Option<TieredStore> {
        if let Some(store) = &self.cert_store {
            return Some(store.clone());
        }
        let dir = std::env::var_os("ARMADA_CERT_CACHE")?;
        if dir.is_empty() {
            Some(TieredStore::disk(
                CertStore::open(CertStore::default_root()),
            ))
        } else {
            Some(TieredStore::disk(CertStore::open(
                std::path::PathBuf::from(dir),
            )))
        }
    }

    /// Injects the given faults while running (robustness tests only).
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Pipeline {
        self.fault = fault;
        self
    }

    /// The type-checked module.
    pub fn typed(&self) -> &TypedModule {
        &self.typed
    }

    /// The level chain implied by the recipes: implementation first.
    ///
    /// # Errors
    ///
    /// Returns a message if the recipes do not form a single chain.
    pub fn level_chain(&self) -> Result<Vec<String>, String> {
        let recipes = &self.typed.module.recipes;
        if recipes.is_empty() {
            return Err("module has no proof recipes".to_string());
        }
        // The implementation appears as a `low` but never as a `high`.
        let start = recipes
            .iter()
            .map(|r| r.low.clone())
            .find(|low| recipes.iter().all(|r| r.high != *low))
            .ok_or_else(|| "recipes form a cycle".to_string())?;
        let mut chain = vec![start];
        loop {
            let current = chain.last().expect("nonempty");
            match recipes.iter().find(|r| r.low == *current) {
                Some(recipe) => {
                    if chain.contains(&recipe.high) {
                        return Err("recipes form a cycle".to_string());
                    }
                    chain.push(recipe.high.clone());
                }
                None => break,
            }
        }
        Ok(chain)
    }

    /// Checks that the implementation level (the chain's first level) is in
    /// compilable core Armada.
    ///
    /// # Errors
    ///
    /// Returns the core checker's first diagnostic.
    pub fn check_core(&self) -> Result<(), String> {
        let chain = self.level_chain()?;
        let name = &chain[0];
        let level = self
            .typed
            .module
            .level(name)
            .ok_or_else(|| format!("unknown level `{name}`"))?;
        let info = self
            .typed
            .level_info(name)
            .ok_or_else(|| format!("level `{name}` not checked"))?;
        armada_lang::core_check::check_core(level, info).map_err(|e| e.to_string())
    }

    /// Runs one recipe end to end: strategy stage, then (when enabled) the
    /// cert-store lookup and bounded semantic check. Both stages run under
    /// `catch_unwind`, so a panicking worker yields a `Crashed` outcome for
    /// this recipe instead of unwinding through the pool.
    fn run_recipe(
        &self,
        index: usize,
        recipe: &Recipe,
        relation: &StandardRelation,
        cert_store: Option<&TieredStore>,
    ) -> Result<RecipeRun, PipelineError> {
        let outcome =
            |status: RecipeStatus, detail: String, cache: CacheDisposition| RecipeReport {
                recipe: recipe.name.clone(),
                low: recipe.low.clone(),
                high: recipe.high.clone(),
                status,
                detail,
                cache,
                telemetry: None,
            };
        let recipe_err = |message: String| PipelineError::Recipe {
            recipe: recipe.name.clone(),
            span: recipe.span,
            message,
        };
        if self.fault.skips(index) {
            return Ok(RecipeRun {
                strategy_report: None,
                refinement: None,
                chain_cert: None,
                outcome: outcome(
                    RecipeStatus::Skipped,
                    "not run: pipeline aborted before this recipe (fault plan)".to_string(),
                    CacheDisposition::Disabled,
                ),
            });
        }

        // Stage 1: the strategy, panic-isolated.
        let strategy = catch_unwind(AssertUnwindSafe(|| {
            if self.fault.strategy_panics(&recipe.name) {
                panic!("injected fault: strategy panic in recipe `{}`", recipe.name);
            }
            armada_strategies::run_recipe(&self.typed, recipe, self.sim.clone())
        }));
        let report = match strategy {
            Err(payload) => {
                return Ok(RecipeRun {
                    strategy_report: None,
                    refinement: None,
                    chain_cert: None,
                    outcome: outcome(
                        RecipeStatus::Crashed,
                        format!("panic in strategy stage: {}", panic_text(&*payload)),
                        CacheDisposition::Disabled,
                    ),
                });
            }
            Ok(Err(message)) => return Err(recipe_err(message)),
            Ok(Ok(report)) => report,
        };
        let strategy_ok = report.success();

        if !self.semantic_check {
            let (status, detail, chain_cert) = if strategy_ok {
                (
                    RecipeStatus::Verified,
                    format!(
                        "{} obligations proved (semantic check off)",
                        report.obligations.len()
                    ),
                    // Placeholder cert so the chain still composes in
                    // strategy-only mode. Its witness is the sealed empty
                    // one (attests nothing; consistent with zero product
                    // nodes), bound to this subject like any real cert.
                    Some(RefinementCert {
                        low: recipe.low.clone(),
                        high: recipe.high.clone(),
                        product_nodes: 0,
                        low_transitions: 0,
                        witness: {
                            let mut w = armada_recheck::Witness::empty();
                            w.bind_subject(armada_recheck::subject_digest(
                                &self.source,
                                &recipe.low,
                                &recipe.high,
                            ));
                            w
                        },
                    }),
                )
            } else {
                (RecipeStatus::Refuted, report.failure_summary(), None)
            };
            return Ok(RecipeRun {
                strategy_report: Some(report),
                refinement: None,
                chain_cert,
                outcome: outcome(status, detail, CacheDisposition::Disabled),
            });
        }

        // Stage 2: the bounded semantic check, behind the cert store.
        let low = lower(&self.typed, &recipe.low).map_err(|e| recipe_err(e.to_string()))?;
        let high = lower(&self.typed, &recipe.high).map_err(|e| recipe_err(e.to_string()))?;
        let mut sim = self.sim.clone();
        // A configured checkpoint dir is a *base*: recipes run concurrently,
        // so each one checkpoints into its own content-named subdirectory
        // (stable across runs, which is what makes `--resume` find it).
        if let Some(spec) = &mut sim.bounds.checkpoint {
            spec.dir = spec.dir.join(format!(
                "ck-{:016x}",
                armada_runtime::hash::fnv1a_64(recipe.name.as_bytes())
            ));
        }
        if self.fault.exhausts_budget(&recipe.name) {
            // Clamp the budget so exhaustion is certain on any nontrivial
            // product (one node is never enough to finish a check).
            sim.max_nodes = 1;
        }
        // Recoverable check faults: `CheckFaults` is not part of the cert
        // key (stalls and cancel delays never change the verdict), so a
        // stalled run and a clean run share certificates.
        if self.fault.has(FaultFate::WaveStall, &recipe.name) {
            sim.faults.wave_stall_micros = 200;
        }
        if self.fault.has(FaultFate::CancelDelay, &recipe.name) {
            sim.faults.cancel_delay_waves = 3;
        }
        if self.fault.has(FaultFate::WorkerAbort, &recipe.name) {
            sim.faults.abort_slot = Some((0, 0));
        }
        if self.fault.has(FaultFate::DeadlineJitter, &recipe.name) {
            // Adverse jitter: the deadline collapses to zero, so the check
            // must degrade into a budget outcome at the first wave
            // boundary instead of hanging.
            sim.bounds = sim.bounds.with_deadline(std::time::Duration::ZERO);
        }
        if self.fault.has(FaultFate::TornCheckpointWrite, &recipe.name) {
            // A kill mid-save: the checkpoint manifest on disk is a torn
            // fragment. Resume must reject it and fall back to a cold
            // start — verdict byte-identical to a run that never
            // checkpointed. The torn bytes are rewritten every run, so the
            // fate is deterministic even across reruns of the same seed.
            let dir = std::env::temp_dir().join(format!(
                "armada-fault-ck-{}-{:016x}",
                std::process::id(),
                armada_runtime::hash::fnv1a_64(recipe.name.as_bytes())
            ));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(dir.join("manifest.bin"), [0x17, 0x2a, 0x03]);
            sim.bounds = sim
                .bounds
                .with_checkpoint(sm::CheckpointSpec::new(dir).with_resume(true));
        }
        if self.fault.has(FaultFate::CorruptSpillRead, &recipe.name) {
            // A bad sector under the spill dir: the first cold-page fault
            // reads flipped bytes. The page checksum must reject them and
            // the re-read serve the true bytes — a corrupt page is never
            // decoded into states, so the verdict cannot change.
            let dir = std::env::temp_dir().join(format!(
                "armada-fault-spill-{}-{:016x}",
                std::process::id(),
                armada_runtime::hash::fnv1a_64(recipe.name.as_bytes())
            ));
            let mut spec = sm::SpillSpec::new(1, dir);
            spec.page_states = 2;
            spec.corrupt_first_read = true;
            sim.bounds = sim.bounds.with_spill(spec);
        }
        // Cert-store corruption faults are scoped to this recipe through a
        // shimmed clone of the store; sibling recipes keep clean IO.
        let store_view = cert_store.map(|store| {
            let mut shim = store.shim();
            if self.fault.has(FaultFate::TornCertWrite, &recipe.name) {
                shim.write = Some(WriteFault::Torn);
            }
            if self.fault.has(FaultFate::BitFlipCertWrite, &recipe.name) {
                shim.write = Some(WriteFault::BitFlip);
            }
            if self.fault.has(FaultFate::CorruptCertRead, &recipe.name) {
                shim.read = Some(ReadFault::Corrupt);
            }
            store.clone().with_faults(shim)
        });
        let cert_store = store_view.as_ref();
        let key = CertKey::compute(&self.source, &recipe.low, &recipe.high, &sim);
        let subject = armada_recheck::subject_digest(&self.source, &recipe.low, &recipe.high);
        if let Some(store) = cert_store {
            if let Some(cert) = store.load(&key, &recipe.low, &recipe.high) {
                // Under `--recheck`, a warm hit must survive the full
                // independent check — subject binding, structural
                // validation, and semantic replay of the witnessed low
                // tree — before it is served. A failing witness is not an
                // error: the hit demotes to a miss and the check reruns
                // below, exactly as if the record had failed its checksum.
                let recheck_failed = self.recheck
                    && cert
                        .witness
                        .validate(cert.product_nodes, cert.low_transitions, Some(subject))
                        .and_then(|()| armada_recheck::replay(&cert.witness, &low))
                        .is_err();
                if !recheck_failed {
                    let detail = format!(
                        "{} product nodes, {} low transitions (from cert store{})",
                        cert.product_nodes,
                        cert.low_transitions,
                        if self.recheck {
                            ", witness rechecked"
                        } else {
                            ""
                        }
                    );
                    let status = if strategy_ok {
                        RecipeStatus::Verified
                    } else {
                        RecipeStatus::Refuted
                    };
                    return Ok(RecipeRun {
                        strategy_report: Some(report),
                        refinement: Some(Ok(cert.clone())),
                        chain_cert: Some(cert),
                        outcome: outcome(status, detail, CacheDisposition::Hit),
                    });
                }
            }
        }
        let checked = catch_unwind(AssertUnwindSafe(|| {
            if self.fault.check_panics(&recipe.name) {
                panic!(
                    "injected fault: semantic-check panic in recipe `{}`",
                    recipe.name
                );
            }
            if self.telemetry {
                let (result, tel) = check_refinement_with_telemetry(&low, &high, relation, &sim);
                (result, Some(tel))
            } else {
                (check_refinement(&low, &high, relation, &sim), None)
            }
        }));
        let cache = if cert_store.is_some() {
            CacheDisposition::Miss
        } else {
            CacheDisposition::Disabled
        };
        let (checked, telemetry) = match checked {
            Ok((result, tel)) => (Ok(result), tel),
            Err(payload) => (Err(payload), None),
        };
        let (status, detail, refinement, chain_cert) = match checked {
            Err(payload) => {
                return Ok(RecipeRun {
                    strategy_report: Some(report),
                    refinement: None,
                    chain_cert: None,
                    outcome: outcome(
                        RecipeStatus::Crashed,
                        format!("panic in semantic check: {}", panic_text(&*payload)),
                        cache,
                    ),
                });
            }
            Ok(Ok(mut cert)) => {
                // The checker emits the witness unbound (it never sees the
                // module source); bind it here so persisted and served
                // certs are pinned to this exact subject.
                cert.witness.bind_subject(subject);
                if let Some(store) = cert_store {
                    // Best-effort persistence: a full disk or unwritable
                    // store must not fail the verification itself.
                    let _ = store.save(&key, &cert);
                }
                let detail = format!(
                    "{} product nodes, {} low transitions",
                    cert.product_nodes, cert.low_transitions
                );
                let status = if strategy_ok {
                    RecipeStatus::Verified
                } else {
                    RecipeStatus::Refuted
                };
                (status, detail, Some(Ok(cert.clone())), Some(cert))
            }
            Ok(Err(ce)) => {
                let status = if ce.kind.is_budget() {
                    RecipeStatus::BudgetExhausted
                } else {
                    RecipeStatus::Refuted
                };
                (
                    status,
                    ce.description.clone(),
                    Some(Err(ce.to_string())),
                    None,
                )
            }
        };
        let mut outcome = outcome(status, detail, cache);
        outcome.telemetry = telemetry;
        Ok(RecipeRun {
            strategy_report: Some(report),
            refinement,
            chain_cert,
            outcome,
        })
    }

    /// Runs the whole pipeline.
    ///
    /// With `jobs > 1` in the sim config's bounds, the per-recipe work —
    /// strategy obligations plus the bounded semantic check — runs
    /// concurrently across the chain's links (and each semantic check is
    /// itself multi-core). Reports keep recipe order and the first
    /// infrastructure error in recipe order wins, so the output is
    /// identical to a serial run.
    ///
    /// Proof failures, refuted refinements, exhausted budgets, and panics
    /// isolated to one recipe are *not* errors: they are per-recipe
    /// outcomes inside the [`PipelineReport`].
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for *infrastructure* failures (unknown
    /// levels, lowering errors), naming the failing recipe and its span.
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        let relation = StandardRelation::new(self.typed.module.relation());
        let recipes = &self.typed.module.recipes;
        // Resolved once per run: either the configured store or the
        // `ARMADA_CERT_CACHE` environment fallback.
        let cert_store = self.resolved_cert_store();
        // Audit baseline: the store handle may be shared across runs (the
        // serve daemon reuses one hierarchy), so report the delta.
        let corrupt_before = cert_store.as_ref().map_or(0, |s| s.corrupt_loads());
        // A panic that escapes `run_recipe` (i.e. outside the two
        // per-stage `catch_unwind`s — pool bookkeeping, lowering, the cert
        // store) is still confined to its recipe here, so one bad worker
        // can never poison the whole run.
        let run_one = |index: usize, recipe: &Recipe| -> Result<RecipeRun, PipelineError> {
            catch_unwind(AssertUnwindSafe(|| {
                self.run_recipe(index, recipe, &relation, cert_store.as_ref())
            }))
            .unwrap_or_else(|payload| {
                Ok(RecipeRun {
                    strategy_report: None,
                    refinement: None,
                    chain_cert: None,
                    outcome: RecipeReport {
                        recipe: recipe.name.clone(),
                        low: recipe.low.clone(),
                        high: recipe.high.clone(),
                        status: RecipeStatus::Crashed,
                        detail: format!("panic outside isolated stages: {}", panic_text(&*payload)),
                        cache: CacheDisposition::Disabled,
                        telemetry: None,
                    },
                })
            })
        };

        let jobs = self.sim.bounds.jobs.max(1);
        let runs: Vec<Result<RecipeRun, PipelineError>> = if jobs > 1 && recipes.len() > 1 {
            let slots: Vec<OnceLock<Result<RecipeRun, PipelineError>>> =
                (0..recipes.len()).map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(recipes.len()) {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= recipes.len() {
                            break;
                        }
                        let run = run_one(index, &recipes[index]);
                        slots[index].set(run).ok().expect("each slot claimed once");
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("every slot filled"))
                .collect()
        } else {
            recipes
                .iter()
                .enumerate()
                .map(|(index, recipe)| run_one(index, recipe))
                .collect()
        };

        let mut strategy_reports = Vec::new();
        let mut refinements = Vec::new();
        let mut outcomes = Vec::new();
        let mut certs = Vec::new();
        for run in runs {
            // First infrastructure error in recipe order wins — identical
            // to a serial run regardless of which worker hit it first.
            let run = run?;
            if let Some(report) = run.strategy_report {
                strategy_reports.push(report);
            }
            if let Some(refinement) = run.refinement {
                refinements.push(refinement);
            }
            if let Some(cert) = run.chain_cert {
                certs.push(cert);
            }
            outcomes.push(run.outcome);
        }
        // Order certificates along the chain and compose.
        let chain = match self.level_chain() {
            Ok(levels) => {
                let mut ordered = Vec::new();
                for pair in levels.windows(2) {
                    if let Some(cert) = certs.iter().find(|c| c.low == pair[0] && c.high == pair[1])
                    {
                        ordered.push(cert.clone());
                    }
                }
                if ordered.len() + 1 == levels.len() {
                    RefinementChain::compose(ordered).ok()
                } else {
                    None
                }
            }
            Err(_) => None,
        };
        let corrupt_loads = cert_store
            .as_ref()
            .map_or(0, |s| s.corrupt_loads().saturating_sub(corrupt_before));
        Ok(PipelineReport {
            strategy_reports,
            refinements,
            outcomes,
            chain,
            corrupt_loads,
        })
    }

    /// Computes the paper-style effort metrics for this module.
    pub fn effort(&self, report: &PipelineReport) -> EffortReport {
        EffortReport::compute(&self.source, &self.typed, report)
    }
}

/// Effort metrics per level and per recipe, mirroring §6's numbers.
#[derive(Debug, Clone)]
pub struct EffortReport {
    /// `(level name, SLOC of the level's source)` in chain order when a
    /// chain exists, else declaration order.
    pub level_sloc: Vec<(String, usize)>,
    /// Per-recipe rows.
    pub recipes: Vec<RecipeEffort>,
}

/// Effort metrics for one recipe.
#[derive(Debug, Clone)]
pub struct RecipeEffort {
    /// Recipe name.
    pub name: String,
    /// Strategy keyword.
    pub strategy: String,
    /// SLOC of the recipe, excluding lemma customizations.
    pub recipe_sloc: usize,
    /// SLOC of lemma customizations (§4.1.2).
    pub customization_sloc: usize,
    /// SLOC of the generated proof artifact.
    pub generated_sloc: usize,
    /// Number of obligations generated.
    pub obligations: usize,
}

impl EffortReport {
    fn compute(source: &str, typed: &TypedModule, report: &PipelineReport) -> EffortReport {
        let level_sloc = typed
            .module
            .levels
            .iter()
            .map(|level| (level.name.clone(), count_sloc(level.span.text(source))))
            .collect();
        let recipes = typed
            .module
            .recipes
            .iter()
            .map(|recipe| {
                let total = count_sloc(recipe.span.text(source));
                let customization: usize = recipe
                    .lemmas
                    .iter()
                    .map(|lemma| count_sloc(lemma.span.text(source)))
                    .sum();
                // Match by name: a crashed or skipped recipe has no
                // strategy report, so positional zipping would misattribute.
                let strategy_report = report
                    .strategy_reports
                    .iter()
                    .find(|r| r.recipe == recipe.name);
                RecipeEffort {
                    name: recipe.name.clone(),
                    strategy: recipe.strategy.keyword().to_string(),
                    recipe_sloc: total.saturating_sub(customization),
                    customization_sloc: customization,
                    generated_sloc: strategy_report.map_or(0, |r| r.generated_sloc()),
                    obligations: strategy_report.map_or(0, |r| r.obligations.len()),
                }
            })
            .collect();
        EffortReport {
            level_sloc,
            recipes,
        }
    }

    /// Total generated proof SLOC.
    pub fn total_generated(&self) -> usize {
        self.recipes.iter().map(|r| r.generated_sloc).sum()
    }
}

impl fmt::Display for EffortReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24} {:>8}", "level", "SLOC")?;
        for (name, sloc) in &self.level_sloc {
            writeln!(f, "{name:<24} {sloc:>8}")?;
        }
        writeln!(
            f,
            "{:<24} {:<18} {:>7} {:>7} {:>10} {:>6}",
            "recipe", "strategy", "recipe", "custom", "generated", "oblig"
        )?;
        for recipe in &self.recipes {
            writeln!(
                f,
                "{:<24} {:<18} {:>7} {:>7} {:>10} {:>6}",
                recipe.name,
                recipe.strategy,
                recipe.recipe_sloc,
                recipe.customization_sloc,
                recipe.generated_sloc,
                recipe.obligations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_STEP: &str = r#"
        level Impl {
            var x: uint32;
            void main() { x := 2; print(x); }
        }
        level Mid {
            var x: uint32;
            void main() { x := *; print(x); }
        }
        level Spec {
            var x: uint32;
            ghost var g: int;
            void main() { x := *; g := 1; print(x); }
        }
        proof P1 { refinement Impl Mid nondet_weakening }
        proof P2 { refinement Mid Spec var_intro }
    "#;

    #[test]
    fn pipeline_runs_and_composes_chain() {
        let pipeline = Pipeline::from_source(TWO_STEP).unwrap();
        assert_eq!(pipeline.level_chain().unwrap(), vec!["Impl", "Mid", "Spec"]);
        pipeline.check_core().unwrap();
        let report = pipeline.run().unwrap();
        assert!(report.verified(), "{}", report.failure_summary());
        assert_eq!(report.chain_claim().unwrap(), "Impl ⊑ Spec");
        assert_eq!(report.refinements.len(), 2);
    }

    #[test]
    fn effort_report_counts_sloc() {
        let pipeline = Pipeline::from_source(TWO_STEP).unwrap();
        let report = pipeline.run().unwrap();
        let effort = pipeline.effort(&report);
        assert_eq!(effort.level_sloc.len(), 3);
        assert!(effort.level_sloc.iter().all(|(_, sloc)| *sloc > 0));
        assert_eq!(effort.recipes.len(), 2);
        assert!(
            effort.total_generated() > 100,
            "generated proofs are substantial"
        );
        let text = effort.to_string();
        assert!(text.contains("nondet_weakening"));
    }

    #[test]
    fn broken_proof_is_reported_not_crashed() {
        let source = r#"
            level Impl { void main() { print(1); } }
            level Spec { void main() { print(2); } }
            proof P { refinement Impl Spec weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        let report = pipeline.run().unwrap();
        assert!(!report.verified());
        assert!(!report.failure_summary().is_empty());
        assert!(report.to_string().contains("NOT VERIFIED"));
    }

    #[test]
    fn non_core_implementation_is_rejected() {
        let source = r#"
            level Impl { var x: uint32; void main() { x ::= 1; } }
            level Spec { var x: uint32; void main() { x ::= 1; } }
            proof P { refinement Impl Spec weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        assert!(pipeline.check_core().is_err());
    }

    #[test]
    fn chain_detection_rejects_cycles() {
        let source = r#"
            level A { void main() { } }
            level B { void main() { } }
            proof P1 { refinement A B weakening }
            proof P2 { refinement B A weakening }
        "#;
        let pipeline = Pipeline::from_source(source).unwrap();
        assert!(pipeline.level_chain().is_err());
    }
}

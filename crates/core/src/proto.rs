//! The `armada serve` wire protocol: length-prefixed JSON frames.
//!
//! A connection carries exactly one request and one response. Each frame is
//! a 4-byte big-endian length followed by that many bytes of UTF-8 JSON.
//! The JSON dialect is deliberately tiny — objects, arrays, strings,
//! integers, booleans, null — parsed and emitted by the in-repo code below
//! (the hermetic-build policy rules out serde; see DESIGN.md,
//! "Dependencies").
//!
//! Requests:
//!
//! ```json
//! {"cmd": "verify", "source": "level Impl { ... }", "name": "counter.arm",
//!  "deadline_ms": 2000, "jobs": 4}
//! {"cmd": "verify", "path": "specs/counter.arm"}
//! {"cmd": "stats"}
//! {"cmd": "shutdown"}
//! ```
//!
//! Responses (`kind` discriminates):
//!
//! * `result` — the verification ran (or was served coalesced/cached):
//!   `exit_code` (the CLI's 0–4 taxonomy), `verified`, the report `render`,
//!   and `coalesced` (true when this response rode another request's run);
//! * `deadline` — the request's deadline plus grace elapsed before a
//!   result was available; the verification may still complete in the
//!   background and populate the cache. Maps to exit code 3;
//! * `overloaded` — the admission queue was full; the request was *shed*,
//!   not queued, and `retry_after_ms` advises when to retry. Maps to exit
//!   code 3. The daemon always answers overload with this structured
//!   response — never a dropped connection;
//! * `error` — the request could not be processed (malformed frame,
//!   unreadable path, front-end failure); `message` says why;
//! * `ok` — acknowledgment (shutdown);
//! * `stats` — counter name/value pairs from the daemon's telemetry.

use std::io::{Read, Write};

/// Frames larger than this are rejected before allocation (a corrupt or
/// hostile length prefix must not look like an allocation request).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A JSON value in the protocol's dialect. Object keys keep insertion
/// order, so encoding is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (None for other shapes).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes (compact, no extra whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", byte as char, self.at))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        // Integers only: the protocol never carries floats.
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad integer `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.at += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying IO error; oversized payloads are an
/// `InvalidInput` error before any byte is written.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    stream.write_all(&(bytes.len() as u32).to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying IO error; a length over [`MAX_FRAME`] or a
/// non-UTF-8 payload is `InvalidData`.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<String> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Verify a module: the full pipeline against the daemon's shared
    /// cache hierarchy.
    Verify(VerifyRequest),
    /// Snapshot the daemon's counters.
    Stats,
    /// Drain and stop the daemon.
    Shutdown,
}

/// The payload of a `verify` request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyRequest {
    /// Module source text (inline). Exactly one of `source`/`path` must be
    /// set.
    pub source: Option<String>,
    /// Server-side path to read the module from.
    pub path: Option<String>,
    /// Display name (defaults to the path, or `<inline>`).
    pub name: Option<String>,
    /// Per-request wall-clock deadline in milliseconds; the daemon's
    /// default applies when absent.
    pub deadline_ms: Option<u64>,
    /// Engine worker threads for this request (clamped by the daemon).
    pub jobs: Option<usize>,
}

impl Request {
    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` response.
    pub fn decode(text: &str) -> Result<Request, String> {
        let json = Json::parse(text).map_err(|e| format!("malformed request JSON: {e}"))?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request missing `cmd`")?;
        match cmd {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "verify" => {
                let field = |k: &str| json.get(k).and_then(Json::as_str).map(str::to_string);
                let req = VerifyRequest {
                    source: field("source"),
                    path: field("path"),
                    name: field("name"),
                    deadline_ms: json
                        .get("deadline_ms")
                        .and_then(Json::as_int)
                        .map(|n| n.max(0) as u64),
                    jobs: json
                        .get("jobs")
                        .and_then(Json::as_int)
                        .map(|n| n.max(1) as usize),
                };
                if req.source.is_none() == req.path.is_none() {
                    return Err("verify wants exactly one of `source` or `path`".to_string());
                }
                Ok(Request::Verify(req))
            }
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Serializes for the wire.
    pub fn encode(&self) -> String {
        match self {
            Request::Stats => Json::Obj(vec![("cmd".into(), Json::Str("stats".into()))]).encode(),
            Request::Shutdown => {
                Json::Obj(vec![("cmd".into(), Json::Str("shutdown".into()))]).encode()
            }
            Request::Verify(req) => {
                let mut fields = vec![("cmd".to_string(), Json::Str("verify".into()))];
                if let Some(source) = &req.source {
                    fields.push(("source".into(), Json::Str(source.clone())));
                }
                if let Some(path) = &req.path {
                    fields.push(("path".into(), Json::Str(path.clone())));
                }
                if let Some(name) = &req.name {
                    fields.push(("name".into(), Json::Str(name.clone())));
                }
                if let Some(ms) = req.deadline_ms {
                    fields.push(("deadline_ms".into(), Json::Int(ms as i64)));
                }
                if let Some(jobs) = req.jobs {
                    fields.push(("jobs".into(), Json::Int(jobs as i64)));
                }
                Json::Obj(fields).encode()
            }
        }
    }
}

/// A server response (see the module docs for the contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Result {
        /// Worst-outcome exit code in the CLI's 0–4 vocabulary.
        exit_code: u8,
        /// True when every recipe verified.
        verified: bool,
        /// The pipeline report's rendering (byte-identical for coalesced
        /// waiters of the same run).
        render: String,
        /// True when this response rode another in-flight request's run.
        coalesced: bool,
        /// Combined witness digest of the run's certificates (16 hex
        /// digits), or empty when the run produced none. Coalesced
        /// waiters of one run all see the same digest.
        witness: String,
    },
    Deadline {
        /// The deadline that elapsed, in milliseconds.
        deadline_ms: u64,
    },
    Overloaded {
        /// Advised retry delay.
        retry_after_ms: u64,
    },
    Error {
        message: String,
    },
    Ok,
    Stats {
        counters: Vec<(String, u64)>,
    },
}

impl Response {
    /// The CLI exit code this response maps to: results carry their own
    /// taxonomy code; deadline and overload are inconclusive (3); errors
    /// are usage/IO (2); acknowledgments are success.
    pub fn exit_code(&self) -> u8 {
        match self {
            Response::Result { exit_code, .. } => *exit_code,
            Response::Deadline { .. } | Response::Overloaded { .. } => 3,
            Response::Error { .. } => 2,
            Response::Ok | Response::Stats { .. } => 0,
        }
    }

    /// Serializes for the wire.
    pub fn encode(&self) -> String {
        let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
        match self {
            Response::Result {
                exit_code,
                verified,
                render,
                coalesced,
                witness,
            } => Json::Obj(vec![
                kind("result"),
                ("exit_code".into(), Json::Int(*exit_code as i64)),
                ("verified".into(), Json::Bool(*verified)),
                ("render".into(), Json::Str(render.clone())),
                ("coalesced".into(), Json::Bool(*coalesced)),
                ("witness".into(), Json::Str(witness.clone())),
            ])
            .encode(),
            Response::Deadline { deadline_ms } => Json::Obj(vec![
                kind("deadline"),
                ("deadline_ms".into(), Json::Int(*deadline_ms as i64)),
            ])
            .encode(),
            Response::Overloaded { retry_after_ms } => Json::Obj(vec![
                kind("overloaded"),
                ("retry_after_ms".into(), Json::Int(*retry_after_ms as i64)),
            ])
            .encode(),
            Response::Error { message } => Json::Obj(vec![
                kind("error"),
                ("message".into(), Json::Str(message.clone())),
            ])
            .encode(),
            Response::Ok => Json::Obj(vec![kind("ok")]).encode(),
            Response::Stats { counters } => Json::Obj(vec![
                kind("stats"),
                (
                    "counters".into(),
                    Json::Obj(
                        counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                            .collect(),
                    ),
                ),
            ])
            .encode(),
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformation.
    pub fn decode(text: &str) -> Result<Response, String> {
        let json = Json::parse(text).map_err(|e| format!("malformed response JSON: {e}"))?;
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response missing `kind`")?;
        let int = |k: &str| {
            json.get(k)
                .and_then(Json::as_int)
                .ok_or_else(|| format!("response missing `{k}`"))
        };
        match kind {
            "result" => Ok(Response::Result {
                exit_code: int("exit_code")?.clamp(0, 255) as u8,
                verified: json
                    .get("verified")
                    .and_then(Json::as_bool)
                    .ok_or("response missing `verified`")?,
                render: json
                    .get("render")
                    .and_then(Json::as_str)
                    .ok_or("response missing `render`")?
                    .to_string(),
                coalesced: json
                    .get("coalesced")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                witness: json
                    .get("witness")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "deadline" => Ok(Response::Deadline {
                deadline_ms: int("deadline_ms")?.max(0) as u64,
            }),
            "overloaded" => Ok(Response::Overloaded {
                retry_after_ms: int("retry_after_ms")?.max(0) as u64,
            }),
            "error" => Ok(Response::Error {
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "ok" => Ok(Response::Ok),
            "stats" => {
                let counters = match json.get("counters") {
                    Some(Json::Obj(fields)) => fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.as_int().unwrap_or(0).max(0) as u64))
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(Response::Stats { counters })
            }
            other => Err(format!("unknown response kind `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_nested_values() {
        let value = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\\".into())),
            ("n".into(), Json::Int(-42)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::Int(1), Json::Str("x".into()), Json::Arr(vec![])]),
            ),
            ("o".into(), Json::Obj(vec![("k".into(), Json::Int(7))])),
        ]);
        let text = value.encode();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // Whitespace tolerance and unicode escapes.
        let spaced = Json::parse(" { \"k\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            spaced.get("k").unwrap(),
            &Json::Arr(vec![Json::Int(1), Json::Str("A".into())])
        );
        // Trailing garbage and floats are rejected.
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("1e5").is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello ⊑ world").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), "hello ⊑ world");
        // A hostile length prefix is rejected without allocation.
        let mut bad = std::io::Cursor::new(vec![0xff, 0xff, 0xff, 0xff]);
        assert!(read_frame(&mut bad).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Stats,
            Request::Shutdown,
            Request::Verify(VerifyRequest {
                source: Some("level A {}".into()),
                name: Some("a.arm".into()),
                deadline_ms: Some(1500),
                jobs: Some(4),
                ..VerifyRequest::default()
            }),
            Request::Verify(VerifyRequest {
                path: Some("specs/counter.arm".into()),
                ..VerifyRequest::default()
            }),
        ];
        for request in cases {
            assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        }
        // Exactly one of source/path.
        assert!(Request::decode(r#"{"cmd":"verify"}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"verify","source":"x","path":"y"}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"nonsense"}"#).is_err());
        assert!(Request::decode("not json").is_err());
    }

    #[test]
    fn responses_round_trip_and_map_exit_codes() {
        let cases = [
            (
                Response::Result {
                    exit_code: 0,
                    verified: true,
                    render: "recipe P: verified\nVERIFIED: A ⊑ B\n".into(),
                    coalesced: true,
                    witness: "00ff00ff00ff00ff".into(),
                },
                0,
            ),
            (Response::Deadline { deadline_ms: 250 }, 3),
            (Response::Overloaded { retry_after_ms: 50 }, 3),
            (
                Response::Error {
                    message: "boom".into(),
                },
                2,
            ),
            (Response::Ok, 0),
            (
                Response::Stats {
                    counters: vec![("cache.mem_hits".into(), 3)],
                },
                0,
            ),
        ];
        for (response, code) in cases {
            assert_eq!(response.exit_code(), code);
            assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        }
    }
}

//! The `armada` command-line tool: verify an Armada source file, inspect its
//! effort metrics, or emit backend code — the CLI face of the pipeline, like
//! the paper's tool driver (§5).
//!
//! ```text
//! armada verify <file.arm> [--jobs N]
//!                               run the full pipeline (strategies + bounded
//!                               refinement model checking, on N threads)
//! armada check <file.arm>       front end + core-subset check only
//! armada effort <file.arm>      strategy-only run with effort accounting
//! armada emit-c <file.arm>      emit ClightTSO-flavored C for the
//!                               implementation level
//! armada emit-rust <file.arm> [--conservative]
//!                               emit Rust for the implementation level
//! ```
//!
//! `--jobs N` (default 1) parallelizes the refinement search and the
//! per-recipe pipeline work; results are byte-identical for any N.

use armada::verify::SimConfig;
use armada::Pipeline;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: armada <verify|check|effort|emit-c|emit-rust> <file.arm> [--jobs N] [--conservative]"
    );
    ExitCode::from(2)
}

/// Extracts `--jobs N` (or `--jobs=N`) from the argument list.
fn jobs_flag(args: &[String]) -> Result<usize, String> {
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            return value
                .parse()
                .map_err(|_| format!("invalid --jobs value `{value}`"));
        }
        if arg == "--jobs" {
            let value = args.get(i + 1).ok_or("--jobs requires a value")?;
            return value
                .parse()
                .map_err(|_| format!("invalid --jobs value `{value}`"));
        }
    }
    Ok(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match (args.first(), args.get(1)) {
        (Some(command), Some(path)) => (command.as_str(), path.as_str()),
        _ => return usage(),
    };
    let jobs = match jobs_flag(&args) {
        Ok(jobs) => jobs,
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(err) => {
            eprintln!("armada: cannot read `{path}`: {err}");
            return ExitCode::from(2);
        }
    };
    let pipeline = match Pipeline::from_source(&source) {
        Ok(pipeline) => pipeline.with_sim_config(SimConfig::default().with_jobs(jobs)),
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::FAILURE;
        }
    };

    match command {
        "check" => {
            if let Err(err) = core_check_all(&pipeline) {
                eprintln!("armada: {err}");
                return ExitCode::FAILURE;
            }
            println!("ok: front end and core-subset checks passed");
            ExitCode::SUCCESS
        }
        "verify" | "effort" => {
            let mut pipeline = pipeline;
            if command == "effort" {
                pipeline.semantic_check = false;
            }
            if pipeline.typed().module.recipes.is_empty() {
                eprintln!("armada: `{path}` declares no proof recipes");
                return ExitCode::FAILURE;
            }
            if let Err(err) = pipeline.check_core() {
                eprintln!("armada: implementation level is not core Armada: {err}");
                return ExitCode::FAILURE;
            }
            let report = match pipeline.run() {
                Ok(report) => report,
                Err(err) => {
                    eprintln!("armada: {err}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{report}");
            println!("{}", pipeline.effort(&report));
            if report.verified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "emit-c" | "emit-rust" => {
            let level_name = implementation_level(&pipeline);
            let Some(level) = pipeline.typed().module.level(&level_name) else {
                eprintln!("armada: no level `{level_name}`");
                return ExitCode::FAILURE;
            };
            if command == "emit-c" {
                match armada::backend::emit_c(level) {
                    Ok(code) => {
                        print!("{code}");
                        ExitCode::SUCCESS
                    }
                    Err(err) => {
                        eprintln!("armada: {err}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let mode = if args.iter().any(|a| a == "--conservative") {
                    armada::backend::RustMode::Conservative
                } else {
                    armada::backend::RustMode::HwTso
                };
                let info = pipeline
                    .typed()
                    .level_info(&level_name)
                    .expect("checked module has level info");
                match armada::backend::emit_rust(level, info, mode) {
                    Ok(code) => {
                        print!("{code}");
                        ExitCode::SUCCESS
                    }
                    Err(err) => {
                        eprintln!("armada: {err}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => usage(),
    }
}

/// The implementation level: first in the recipe chain, or the first level
/// for library-style files.
fn implementation_level(pipeline: &Pipeline) -> String {
    pipeline
        .level_chain()
        .ok()
        .and_then(|chain| chain.first().cloned())
        .or_else(|| {
            pipeline
                .typed()
                .module
                .levels
                .first()
                .map(|l| l.name.clone())
        })
        .unwrap_or_default()
}

fn core_check_all(pipeline: &Pipeline) -> Result<(), String> {
    if pipeline.typed().module.recipes.is_empty() {
        for level in &pipeline.typed().module.levels {
            let info = pipeline
                .typed()
                .level_info(&level.name)
                .ok_or_else(|| format!("level `{}` not checked", level.name))?;
            armada::lang::core_check::check_core(level, info).map_err(|e| e.to_string())?;
        }
        Ok(())
    } else {
        pipeline.check_core()
    }
}

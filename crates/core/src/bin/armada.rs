//! The `armada` command-line tool: verify an Armada source file, inspect its
//! effort metrics, or emit backend code — the CLI face of the pipeline, like
//! the paper's tool driver (§5).
//!
//! ```text
//! armada verify <file.arm> [--jobs N] [--deadline SECS] [--cert-cache[=DIR]]
//!                          [--no-reduction] [--no-symmetry] [--telemetry]
//!                          [--mem-cap SIZE] [--spill-dir DIR]
//!                          [--checkpoint[=DIR]] [--resume] [--recheck]
//!                               run the full pipeline (strategies + bounded
//!                               refinement model checking, on N threads)
//! armada recheck <cert|dir>... [--source FILE]
//!                               independently validate stored refinement
//!                               certificates (structural witness check;
//!                               with --source, full semantic replay)
//! armada check <file.arm>       front end + core-subset check only
//! armada effort <file.arm>      strategy-only run with effort accounting
//! armada emit-c <file.arm>      emit ClightTSO-flavored C for the
//!                               implementation level
//! armada emit-rust <file.arm> [--conservative]
//!                               emit Rust for the implementation level
//! armada fuzz <file.arm>... [--seeds N] [--jobs M] [--events LIST]
//!                           [--out FILE] [--mutate-bounds]
//!                               deterministic fault-fuzzing campaign over
//!                               the given subjects (see `armada::fuzz`)
//! armada fuzz --serve <file.arm>... [--seeds N] [--jobs M]
//!                           [--server-events LIST] [--out FILE]
//!                               daemon-level campaign: each cell boots an
//!                               `armada serve` instance and drives it
//!                               through killed workers, corrupted tier-2
//!                               entries, accept jitter, and same-key storms
//! armada serve [--addr HOST:PORT] [--addr-file FILE] [--workers N]
//!              [--queue-depth N] [--mem-cap N] [--cert-cache[=DIR]]
//!              [--deadline SECS] [--telemetry] [--spill-mem-cap SIZE]
//!              [--spill-dir DIR] [--checkpoint[=DIR]]
//!                               run the verification daemon until a client
//!                               sends `--shutdown`
//! armada client <addr> [<file.arm>] [--deadline SECS] [--jobs N]
//!               [--stats] [--shutdown]
//!                               send one request to a running daemon
//! ```
//!
//! `--jobs N` (default 1) parallelizes the refinement search and the
//! per-recipe pipeline work; results are byte-identical for any N.
//! `--deadline SECS` bounds wall-clock time per semantic check (graceful
//! budget-exhausted outcomes, not hangs). `--cert-cache` persists and
//! reuses refinement certificates (default root `target/armada-certs/`;
//! the `ARMADA_CERT_CACHE` environment variable enables the same cache
//! without a flag). `--no-reduction` disables local-step fusion in the
//! state-space engine and `--no-symmetry` disables canonical state
//! interning under thread/heap symmetry — verdicts and counterexamples
//! are identical either way; the flags exist for timing comparisons and
//! debugging. `--telemetry` prints per-stage pipeline histograms (ingress /
//! explore / subsume / commit latency and occupancy) to **stderr** after
//! the run; stdout — the byte-identity surface — is unchanged.
//! `--fault-seed N` injects deterministic faults for robustness testing.
//!
//! `--mem-cap SIZE` (K/M/G suffixes) bounds each semantic check's state
//! arenas: past the cap, cold pages spill to `--spill-dir` (default
//! `target/armada-spill`) behind checksums and fault back on demand —
//! verdicts are byte-identical to an all-resident run, and `--telemetry`
//! reports the hit/miss/evict counters. `--checkpoint[=DIR]` (default
//! `target/armada-checkpoints`) persists each check's frontier crash-safely
//! at every wave boundary; `--resume` continues an interrupted run from its
//! last completed wave (a missing, torn, or mismatched checkpoint falls
//! back to a cold start). A resumed run may raise `--deadline` or budget
//! caps; anything that changes what a check *means* (the module, bounds,
//! reduction/symmetry) starts cold.
//!
//! `verify`/`effort` exit codes classify the worst per-recipe outcome:
//! 0 verified, 1 refuted, 2 usage/IO error, 3 budget exhausted or skipped,
//! 4 crashed (isolated worker panic).
//!
//! `fuzz` sweeps each subject over seeds 0..N (default 8), derives a
//! deterministic fault plan per `(seed, recipe)`, runs cold and warm
//! against a scratch cert store at jobs ∈ {1, M}, and checks the campaign
//! invariants (taxonomy, no-hang, no-corrupt-cert-served,
//! verdict-invariance, determinism). `--events fate:recipe,...` replays an
//! explicit plan — the reproducer format emitted for shrunk violations.
//! Exit 0 when no invariant tripped, 1 otherwise. The campaign report JSON
//! goes to `--out FILE` when given, else stdout; it is byte-identical
//! across reruns of the same command line. `--mutate-bounds` additionally
//! mutates the verification bounds (nondeterminism grid, store-buffer
//! size, node cap) per seed, recomputing the baseline like-for-like.
//!
//! `serve` binds a TCP daemon speaking a length-prefixed JSON protocol
//! (see `armada::proto`): concurrent verify requests share an in-memory
//! certificate tier (`--mem-cap` entries, LRU) in front of the crash-safe
//! disk store, identical in-flight requests coalesce onto one underlying
//! verification, every request carries a cooperative deadline, and a full
//! admission queue sheds with a structured `overloaded` response rather
//! than queueing unboundedly. `client` exit codes extend the verify
//! taxonomy: a result carries its own 0–4 code, `deadline`/`overloaded`
//! are inconclusive (3), protocol errors are usage errors (2).

use armada::fuzz;
use armada::proto::{Request, Response, VerifyRequest};
use armada::serve::{client_request, ServeConfig, Server};
use armada::verify::store::CertStore;
use armada::verify::tier::{MemTier, TieredStore};
use armada::verify::SimConfig;
use armada::{FaultPlan, Pipeline};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: armada <verify|check|effort|emit-c|emit-rust> <file.arm> \
         [--jobs N] [--deadline SECS] [--cert-cache[=DIR]] [--no-reduction] \
         [--no-symmetry] [--telemetry] [--fault-seed N] [--conservative] \
         [--mem-cap SIZE] [--spill-dir DIR] [--checkpoint[=DIR]] [--resume] \
         [--recheck]\n       \
         armada recheck <cert|dir>... [--source FILE]\n       \
         armada fuzz [--serve] <file.arm>... [--seeds N] [--jobs M] \
         [--events LIST] [--server-events LIST] [--mutate-bounds] [--out FILE]\n       \
         armada serve [--addr HOST:PORT] [--addr-file FILE] [--workers N] \
         [--queue-depth N] [--mem-cap N] [--cert-cache[=DIR]] [--deadline SECS] \
         [--telemetry] [--spill-mem-cap SIZE] [--spill-dir DIR] \
         [--checkpoint[=DIR]]\n       \
         armada client <addr> [<file.arm>] [--deadline SECS] [--jobs N] \
         [--stats] [--shutdown]"
    );
    ExitCode::from(2)
}

/// Extracts `--flag VALUE` (or `--flag=VALUE`) from the argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let prefix = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Ok(Some(value));
        }
        if arg == flag {
            let value = args.get(i + 1).ok_or(format!("{flag} requires a value"))?;
            return Ok(Some(value));
        }
    }
    Ok(None)
}

/// Extracts `--jobs N` (or `--jobs=N`) from the argument list.
fn jobs_flag(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--jobs")? {
        Some(value) => value
            .parse()
            .map_err(|_| format!("invalid --jobs value `{value}`")),
        None => Ok(1),
    }
}

/// Extracts `--deadline SECS` (fractional seconds allowed).
fn deadline_flag(args: &[String]) -> Result<Option<Duration>, String> {
    match flag_value(args, "--deadline")? {
        Some(value) => match value.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Ok(Some(Duration::from_secs_f64(secs))),
            _ => Err(format!("invalid --deadline value `{value}`")),
        },
        None => Ok(None),
    }
}

/// Extracts `--cert-cache` (default root) or `--cert-cache=DIR`.
fn cert_cache_flag(args: &[String]) -> Option<CertStore> {
    for arg in args {
        if let Some(dir) = arg.strip_prefix("--cert-cache=") {
            return Some(CertStore::open(dir));
        }
        if arg == "--cert-cache" {
            return Some(CertStore::open(CertStore::default_root()));
        }
    }
    None
}

/// Parses a byte size with an optional K/M/G suffix (binary units).
fn parse_mem_size(value: &str) -> Result<u64, String> {
    let bad = || format!("invalid size `{value}` (want BYTES with an optional K/M/G suffix)");
    let v = value.trim();
    let (digits, shift) = match v.chars().next_back() {
        Some('K') | Some('k') => (&v[..v.len() - 1], 10),
        Some('M') | Some('m') => (&v[..v.len() - 1], 20),
        Some('G') | Some('g') => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    if n == 0 {
        return Err(bad());
    }
    n.checked_mul(1u64 << shift).ok_or_else(bad)
}

/// Extracts `--mem-cap SIZE` + `--spill-dir DIR` into a spill spec.
fn spill_flag(args: &[String]) -> Result<Option<armada::sm::SpillSpec>, String> {
    let cap = match flag_value(args, "--mem-cap")? {
        Some(value) => parse_mem_size(value)?,
        None => {
            if flag_value(args, "--spill-dir")?.is_some() {
                return Err("--spill-dir requires --mem-cap".to_string());
            }
            return Ok(None);
        }
    };
    let dir = flag_value(args, "--spill-dir")?
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/armada-spill"));
    Ok(Some(armada::sm::SpillSpec::new(cap, dir)))
}

/// Extracts `--checkpoint` (default root) or `--checkpoint=DIR`, plus
/// `--resume`.
fn checkpoint_flag(args: &[String]) -> Result<Option<armada::sm::CheckpointSpec>, String> {
    let mut dir = None;
    for arg in args {
        if let Some(value) = arg.strip_prefix("--checkpoint=") {
            dir = Some(std::path::PathBuf::from(value));
        } else if arg == "--checkpoint" {
            dir = Some(std::path::PathBuf::from("target/armada-checkpoints"));
        }
    }
    let resume = args.iter().any(|a| a == "--resume");
    match dir {
        Some(dir) => Ok(Some(
            armada::sm::CheckpointSpec::new(dir).with_resume(resume),
        )),
        None if resume => Err("--resume requires --checkpoint".to_string()),
        None => Ok(None),
    }
}

/// Extracts `--fault-seed N` (robustness testing only).
fn fault_seed_flag(args: &[String]) -> Result<Option<u64>, String> {
    match flag_value(args, "--fault-seed")? {
        Some(value) => value
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid --fault-seed value `{value}`")),
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("serve") => return serve_command(&args[1..]),
        Some("client") => return client_command(&args[1..]),
        // Same checker as the standalone `armada-recheck` binary; bundled
        // here so one installed tool covers the whole workflow.
        Some("recheck") => return ExitCode::from(armada::recheck::run_cli(&args[1..])),
        _ => {}
    }
    let (command, path) = match (args.first(), args.get(1)) {
        (Some(command), Some(path)) => (command.as_str(), path.as_str()),
        _ => return usage(),
    };
    if command == "fuzz" {
        return fuzz_command(&args[1..]);
    }
    let jobs = match jobs_flag(&args) {
        Ok(jobs) => jobs,
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    };
    let deadline = match deadline_flag(&args) {
        Ok(deadline) => deadline,
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    };
    let fault_seed = match fault_seed_flag(&args) {
        Ok(seed) => seed,
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(err) => {
            eprintln!("armada: cannot read `{path}`: {err}");
            return ExitCode::from(2);
        }
    };
    let mut sim = SimConfig::default().with_jobs(jobs);
    if let Some(budget) = deadline {
        sim.bounds = sim.bounds.with_deadline(budget);
    }
    if args.iter().any(|a| a == "--no-reduction") {
        sim.bounds.reduction = false;
    }
    if args.iter().any(|a| a == "--no-symmetry") {
        sim.bounds.symmetry = false;
    }
    match spill_flag(&args) {
        Ok(Some(spec)) => sim.bounds = sim.bounds.with_spill(spec),
        Ok(None) => {}
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    }
    match checkpoint_flag(&args) {
        Ok(Some(spec)) => sim.bounds = sim.bounds.with_checkpoint(spec),
        Ok(None) => {}
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::from(2);
        }
    }
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let pipeline = match Pipeline::from_source(&source) {
        Ok(pipeline) => pipeline.with_sim_config(sim).with_telemetry(telemetry),
        Err(err) => {
            eprintln!("armada: {err}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline = match cert_cache_flag(&args) {
        Some(store) => pipeline.with_cert_store(store),
        None => pipeline,
    };
    let pipeline = pipeline.with_recheck(args.iter().any(|a| a == "--recheck"));
    let pipeline = match fault_seed {
        Some(seed) => {
            let plan = FaultPlan::seeded(
                seed,
                pipeline
                    .typed()
                    .module
                    .recipes
                    .iter()
                    .map(|r| r.name.as_str())
                    .collect::<Vec<_>>(),
            );
            if !plan.is_empty() {
                eprint!("armada: fault plan (seed {seed}):\n{}", plan.describe());
            }
            pipeline.with_fault_plan(plan)
        }
        None => pipeline,
    };

    match command {
        "check" => {
            if let Err(err) = core_check_all(&pipeline) {
                eprintln!("armada: {err}");
                return ExitCode::FAILURE;
            }
            println!("ok: front end and core-subset checks passed");
            ExitCode::SUCCESS
        }
        "verify" | "effort" => {
            let mut pipeline = pipeline;
            if command == "effort" {
                pipeline.semantic_check = false;
            }
            if pipeline.typed().module.recipes.is_empty() {
                eprintln!("armada: `{path}` declares no proof recipes");
                return ExitCode::FAILURE;
            }
            if let Err(err) = pipeline.check_core() {
                eprintln!("armada: implementation level is not core Armada: {err}");
                return ExitCode::FAILURE;
            }
            let report = match pipeline.run() {
                Ok(report) => report,
                Err(err) => {
                    eprintln!("armada: {err}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{report}");
            println!("{}", pipeline.effort(&report));
            if telemetry {
                // Telemetry values are wall-clock: stderr only, so stdout
                // stays byte-identical with or without the flag.
                let mut merged = armada_runtime::StageTelemetry::new();
                for outcome in &report.outcomes {
                    if let Some(tel) = &outcome.telemetry {
                        merged.merge(tel);
                    }
                }
                if merged.is_empty() {
                    eprintln!(
                        "armada: telemetry: no semantic check ran (cache hits or strategy-only)"
                    );
                } else {
                    eprint!("armada: pipeline telemetry\n{}", merged.render());
                }
                if report.corrupt_loads > 0 {
                    eprintln!(
                        "armada: warning: cert cache rejected {} corrupt record(s); \
                         verdicts were recomputed from scratch",
                        report.corrupt_loads
                    );
                }
            }
            if report.verified() {
                ExitCode::SUCCESS
            } else {
                // Classify the worst outcome so scripts can distinguish a
                // real refutation (1) from an inconclusive run (3) or an
                // isolated crash (4).
                ExitCode::from(report.worst_status().exit_code())
            }
        }
        "emit-c" | "emit-rust" => {
            let level_name = implementation_level(&pipeline);
            let Some(level) = pipeline.typed().module.level(&level_name) else {
                eprintln!("armada: no level `{level_name}`");
                return ExitCode::FAILURE;
            };
            if command == "emit-c" {
                match armada::backend::emit_c(level) {
                    Ok(code) => {
                        print!("{code}");
                        ExitCode::SUCCESS
                    }
                    Err(err) => {
                        eprintln!("armada: {err}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let mode = if args.iter().any(|a| a == "--conservative") {
                    armada::backend::RustMode::Conservative
                } else {
                    armada::backend::RustMode::HwTso
                };
                let info = pipeline
                    .typed()
                    .level_info(&level_name)
                    .expect("checked module has level info");
                match armada::backend::emit_rust(level, info, mode) {
                    Ok(code) => {
                        print!("{code}");
                        ExitCode::SUCCESS
                    }
                    Err(err) => {
                        eprintln!("armada: {err}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => usage(),
    }
}

/// The `armada fuzz` subcommand: a deterministic fault-fuzzing campaign
/// over one or more subject files (see [`armada::fuzz`] for the
/// invariants). Exit 0 when clean, 1 on any invariant violation, 2 on
/// usage errors.
fn fuzz_command(args: &[String]) -> ExitCode {
    let fail = |err: String| {
        eprintln!("armada: {err}");
        ExitCode::from(2)
    };
    let seeds: Vec<u64> = match flag_value(args, "--seeds") {
        Ok(Some(value)) => match value.parse::<u64>() {
            Ok(n) if n > 0 => (0..n).collect(),
            _ => return fail(format!("invalid --seeds value `{value}`")),
        },
        Ok(None) => (0..8).collect(),
        Err(err) => return fail(err),
    };
    let jobs = match jobs_flag(args) {
        // The grid always includes jobs=1, so the determinism invariant
        // compares every higher job count against the serial render.
        Ok(max) if max > 1 => vec![1, max],
        Ok(_) => vec![1],
        Err(err) => return fail(err),
    };
    let serve = args.iter().any(|a| a == "--serve");
    let mutate_bounds = args.iter().any(|a| a == "--mutate-bounds");
    let plan_override = match flag_value(args, "--events") {
        Ok(Some(spec)) => match fuzz::parse_events(spec) {
            Ok(events) if !events.is_empty() => Some(events),
            Ok(_) => return fail("--events lists no events".to_string()),
            Err(err) => return fail(err.to_string()),
        },
        Ok(None) => None,
        Err(err) => return fail(err),
    };
    let server_plan_override = match flag_value(args, "--server-events") {
        Ok(Some(spec)) => match fuzz::parse_server_events(spec) {
            Ok(events) if !events.is_empty() => Some(events),
            Ok(_) => return fail("--server-events lists no events".to_string()),
            Err(err) => return fail(err.to_string()),
        },
        Ok(None) => None,
        Err(err) => return fail(err),
    };
    if serve && plan_override.is_some() {
        return fail(
            "--events is a pipeline-campaign flag; use --server-events with --serve".to_string(),
        );
    }
    if serve && mutate_bounds {
        return fail("--mutate-bounds applies to pipeline campaigns only".to_string());
    }
    if !serve && server_plan_override.is_some() {
        return fail("--server-events requires --serve".to_string());
    }
    let out = match flag_value(args, "--out") {
        Ok(out) => out.map(|s| s.to_string()),
        Err(err) => return fail(err),
    };
    // Positional arguments are subject files; skip flags and their values.
    let value_flags = ["--seeds", "--jobs", "--events", "--server-events", "--out"];
    let mut subjects = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip_next = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        match fuzz::FuzzSubject::from_path(arg) {
            Ok(subject) => subjects.push(subject),
            Err(err) => return fail(err),
        }
    }
    if subjects.is_empty() {
        return usage();
    }
    let report = if serve {
        let config = fuzz::ServeFuzzConfig {
            seeds,
            jobs,
            plan_override: server_plan_override,
            ..fuzz::ServeFuzzConfig::default()
        };
        fuzz::run_serve_campaign(&subjects, &config)
    } else {
        let config = fuzz::FuzzConfig {
            seeds,
            jobs,
            plan_override,
            mutate_bounds,
            ..fuzz::FuzzConfig::default()
        };
        fuzz::run_campaign(&subjects, &config)
    };
    eprintln!(
        "armada fuzz ({}): {} subjects × {} seeds × jobs {:?}: {} runs, {} checks, \
         {} faults injected, {} violations",
        report.mode,
        report.subjects.len(),
        report.seeds.len(),
        report.jobs,
        report.runs,
        report.checks,
        report.total_injected(),
        report.violations.len()
    );
    for violation in &report.violations {
        eprintln!(
            "armada fuzz: VIOLATION [{}] {} seed {}: {}\n  replay: {}",
            violation.invariant.label(),
            violation.subject,
            violation.seed,
            violation.detail.lines().next().unwrap_or(""),
            violation.replay
        );
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &json) {
                return fail(format!("cannot write `{path}`: {err}"));
            }
        }
        None => print!("{json}"),
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses an optional positive-integer flag with a default.
fn usize_flag(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag)? {
        Some(value) => match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("invalid {flag} value `{value}`")),
        },
        None => Ok(default),
    }
}

/// The `armada serve` subcommand: run the verification daemon until a
/// client asks it to shut down. The bound address goes to stderr (and to
/// `--addr-file` when given, for scripts racing the ephemeral-port bind).
fn serve_command(args: &[String]) -> ExitCode {
    let fail = |err: String| {
        eprintln!("armada: {err}");
        ExitCode::from(2)
    };
    let addr = match flag_value(args, "--addr") {
        Ok(addr) => addr.unwrap_or("127.0.0.1:0").to_string(),
        Err(err) => return fail(err),
    };
    let addr_file = match flag_value(args, "--addr-file") {
        Ok(path) => path.map(|s| s.to_string()),
        Err(err) => return fail(err),
    };
    let workers = match usize_flag(args, "--workers", 2) {
        Ok(n) => n,
        Err(err) => return fail(err),
    };
    let queue_depth = match usize_flag(args, "--queue-depth", 8) {
        Ok(n) => n,
        Err(err) => return fail(err),
    };
    let mem_cap = match flag_value(args, "--mem-cap") {
        Ok(Some(value)) => match value.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return fail(format!("invalid --mem-cap value `{value}`")),
        },
        Ok(None) => 64,
        Err(err) => return fail(err),
    };
    let deadline = match deadline_flag(args) {
        Ok(deadline) => deadline,
        Err(err) => return fail(err),
    };
    // `--mem-cap` above bounds the cert *cache* tier (entries);
    // `--spill-mem-cap` bounds each verification's state arenas (bytes),
    // paging cold shards to disk past it.
    let spill = match flag_value(args, "--spill-mem-cap") {
        Ok(Some(value)) => match parse_mem_size(value) {
            Ok(cap) => {
                let dir = match flag_value(args, "--spill-dir") {
                    Ok(dir) => dir
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| std::path::PathBuf::from("target/armada-spill")),
                    Err(err) => return fail(err),
                };
                Some(armada::sm::SpillSpec::new(cap, dir))
            }
            Err(err) => return fail(err),
        },
        Ok(None) => None,
        Err(err) => return fail(err),
    };
    // Serve checkpoints always resume: a request retried after a deadline
    // or daemon restart continues from its own wave boundary (the daemon
    // scopes the dir per request key).
    let checkpoint = match checkpoint_flag(args) {
        Ok(spec) => spec.map(|s| s.with_resume(true)),
        Err(err) => return fail(err),
    };
    let disk = cert_cache_flag(args).unwrap_or_else(|| CertStore::open(CertStore::default_root()));
    let mut store = TieredStore::disk(disk);
    if mem_cap > 0 {
        store = store.with_mem(MemTier::with_capacity(mem_cap));
    }
    let mut config = ServeConfig::new(store);
    config.addr = addr;
    config.workers = workers;
    config.queue_depth = queue_depth;
    config.telemetry = args.iter().any(|a| a == "--telemetry");
    if let Some(spec) = spill {
        config.sim.bounds = config.sim.bounds.with_spill(spec);
    }
    if let Some(spec) = checkpoint {
        config.sim.bounds = config.sim.bounds.with_checkpoint(spec);
    }
    if let Some(deadline) = deadline {
        config.default_deadline = deadline;
    }
    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(err) => return fail(format!("cannot start daemon: {err}")),
    };
    let bound = handle.addr();
    eprintln!("armada serve: listening on {bound}");
    if let Some(path) = addr_file {
        if let Err(err) = std::fs::write(&path, format!("{bound}\n")) {
            return fail(format!("cannot write `{path}`: {err}"));
        }
    }
    handle.join();
    eprintln!("armada serve: shut down");
    ExitCode::SUCCESS
}

/// The `armada client` subcommand: one request against a running daemon.
/// Verify responses adopt the pipeline's 0–4 exit taxonomy; `deadline` and
/// `overloaded` map to 3 (inconclusive), protocol errors to 2.
fn client_command(args: &[String]) -> ExitCode {
    let fail = |err: String| {
        eprintln!("armada: {err}");
        ExitCode::from(2)
    };
    let value_flags = ["--deadline", "--jobs"];
    let mut positional = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if value_flags.contains(&arg.as_str()) {
            skip_next = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional.push(arg.as_str());
    }
    let Some(addr) = positional.first() else {
        return usage();
    };
    let deadline = match deadline_flag(args) {
        Ok(deadline) => deadline,
        Err(err) => return fail(err),
    };
    // The daemon guarantees a structured answer within deadline + grace;
    // pad generously so a client timeout means the daemon truly hung.
    let timeout = deadline.unwrap_or(Duration::from_secs(30)) + Duration::from_secs(30);
    let request = if args.iter().any(|a| a == "--shutdown") {
        Request::Shutdown
    } else if args.iter().any(|a| a == "--stats") {
        Request::Stats
    } else {
        let Some(path) = positional.get(1) else {
            return fail("client needs a <file.arm> (or --stats / --shutdown)".to_string());
        };
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(err) => return fail(format!("cannot read `{path}`: {err}")),
        };
        let jobs = match jobs_flag(args) {
            Ok(jobs) => jobs,
            Err(err) => return fail(err),
        };
        Request::Verify(VerifyRequest {
            source: Some(source),
            path: None,
            name: Some((*path).to_string()),
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
            jobs: Some(jobs),
        })
    };
    let response = match client_request(addr, &request, timeout) {
        Ok(response) => response,
        Err(err) => return fail(err),
    };
    let code = response.exit_code();
    match response {
        Response::Result {
            render, coalesced, ..
        } => {
            print!("{render}");
            if coalesced {
                eprintln!("armada client: response coalesced with an in-flight request");
            }
        }
        Response::Deadline { deadline_ms } => {
            eprintln!("armada client: daemon gave up after the {deadline_ms}ms deadline");
        }
        Response::Overloaded { retry_after_ms } => {
            eprintln!("armada client: daemon overloaded; retry after {retry_after_ms}ms");
        }
        Response::Error { message } => {
            eprintln!("armada client: daemon error: {message}");
        }
        Response::Ok => eprintln!("armada client: ok"),
        Response::Stats { counters } => {
            for (name, value) in counters {
                println!("{name} {value}");
            }
        }
    }
    ExitCode::from(code)
}

/// The implementation level: first in the recipe chain, or the first level
/// for library-style files.
fn implementation_level(pipeline: &Pipeline) -> String {
    pipeline
        .level_chain()
        .ok()
        .and_then(|chain| chain.first().cloned())
        .or_else(|| {
            pipeline
                .typed()
                .module
                .levels
                .first()
                .map(|l| l.name.clone())
        })
        .unwrap_or_default()
}

fn core_check_all(pipeline: &Pipeline) -> Result<(), String> {
    if pipeline.typed().module.recipes.is_empty() {
        for level in &pipeline.typed().module.levels {
            let info = pipeline
                .typed()
                .level_info(&level.name)
                .ok_or_else(|| format!("level `{}` not checked", level.name))?;
            armada::lang::core_check::check_core(level, info).map_err(|e| e.to_string())?;
        }
        Ok(())
    } else {
        pipeline.check_core()
    }
}

//! Deterministic fault injection for the verification pipeline.
//!
//! The fault-tolerance guarantees of [`crate::Pipeline::run`] — a panicking
//! strategy is isolated to its recipe, an exhausted budget degrades into a
//! reported partial result, an interrupted run leaves a resumable cert
//! store — are only trustworthy if they are *tested*, and testing them
//! requires making workers fail on purpose, at chosen points, reproducibly.
//! A [`FaultPlan`] is that test harness: a declarative set of injection
//! points the pipeline consults as it runs.
//!
//! Two ways to build one:
//!
//! * the explicit builders ([`FaultPlan::panic_in_strategy`] and friends)
//!   pin specific faults to specific recipes — integration tests use these
//!   to assert one exact partial report;
//! * [`FaultPlan::seeded`] derives the injection set from a SplitMix64
//!   stream, for randomized robustness sweeps (`scripts/verify.sh` runs one
//!   seed as a smoke test). Each recipe's fate is a pure function of
//!   `(seed, recipe name)` — never of execution order — so the same seed
//!   produces the same faults at any `--jobs` count.
//!
//! Fault plans are test-only in intent: nothing in the pipeline constructs
//! one unless a caller passes it in (the CLI gates it behind the
//! deliberately test-scented `--fault-seed`).

use std::collections::BTreeSet;

use armada_runtime::hash::fnv1a_64;
use armada_runtime::SplitMix64;

/// Declarative injection points for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Recipes whose strategy stage panics on entry.
    strategy_panics: BTreeSet<String>,
    /// Recipes whose semantic-check stage panics on entry.
    check_panics: BTreeSet<String>,
    /// Recipes whose semantic check runs with a 1-node budget, forcing the
    /// graceful budget-exhaustion path.
    budget_exhaustions: BTreeSet<String>,
    /// Abort the run before any recipe at index ≥ this (a simulated
    /// mid-run kill: later recipes are reported as skipped, and whatever
    /// earlier recipes persisted stays on disk).
    abort_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects a panic at the start of `recipe`'s strategy stage.
    pub fn panic_in_strategy(mut self, recipe: &str) -> FaultPlan {
        self.strategy_panics.insert(recipe.to_string());
        self
    }

    /// Injects a panic at the start of `recipe`'s semantic check.
    pub fn panic_in_check(mut self, recipe: &str) -> FaultPlan {
        self.check_panics.insert(recipe.to_string());
        self
    }

    /// Forces `recipe`'s semantic check to exhaust its node budget
    /// immediately (the budget is clamped to one product node).
    pub fn exhaust_budget(mut self, recipe: &str) -> FaultPlan {
        self.budget_exhaustions.insert(recipe.to_string());
        self
    }

    /// Aborts the run before recipe index `index` (0-based, recipe
    /// declaration order): a simulated kill. Recipes at earlier indices
    /// complete normally; later ones are reported as skipped.
    pub fn abort_at(mut self, index: usize) -> FaultPlan {
        self.abort_at = Some(index);
        self
    }

    /// Derives a plan from `seed` over the given recipe names. Each recipe
    /// independently draws from a stream seeded by `(seed, name)`: with
    /// probability 5/8 it is left alone, else one of the three fault kinds
    /// is injected. Order-independent by construction, so jobs=1 and
    /// jobs=N runs inject identically.
    pub fn seeded<'a>(seed: u64, recipes: impl IntoIterator<Item = &'a str>) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for name in recipes {
            let mut rng = SplitMix64::new(seed ^ fnv1a_64(name.as_bytes()));
            match rng.below(8) {
                5 => plan.strategy_panics.insert(name.to_string()),
                6 => plan.budget_exhaustions.insert(name.to_string()),
                7 => plan.check_panics.insert(name.to_string()),
                _ => false,
            };
        }
        plan
    }

    /// True if `recipe`'s strategy stage should panic.
    pub fn strategy_panics(&self, recipe: &str) -> bool {
        self.strategy_panics.contains(recipe)
    }

    /// True if `recipe`'s semantic check should panic.
    pub fn check_panics(&self, recipe: &str) -> bool {
        self.check_panics.contains(recipe)
    }

    /// True if `recipe`'s semantic check should run with an exhausted
    /// budget.
    pub fn exhausts_budget(&self, recipe: &str) -> bool {
        self.budget_exhaustions.contains(recipe)
    }

    /// True if the run should skip the recipe at `index` (simulated kill).
    pub fn skips(&self, index: usize) -> bool {
        self.abort_at.is_some_and(|at| index >= at)
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::new()
    }

    /// One line per injection, for logging the plan alongside a report.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for name in &self.strategy_panics {
            out.push_str(&format!("panic in strategy of `{name}`\n"));
        }
        for name in &self.check_panics {
            out.push_str(&format!("panic in semantic check of `{name}`\n"));
        }
        for name in &self.budget_exhaustions {
            out.push_str(&format!("budget exhaustion in `{name}`\n"));
        }
        if let Some(at) = self.abort_at {
            out.push_str(&format!("abort before recipe index {at}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_register_their_injection_points() {
        let plan = FaultPlan::new()
            .panic_in_strategy("P1")
            .panic_in_check("P2")
            .exhaust_budget("P3")
            .abort_at(2);
        assert!(plan.strategy_panics("P1"));
        assert!(!plan.strategy_panics("P2"));
        assert!(plan.check_panics("P2"));
        assert!(plan.exhausts_budget("P3"));
        assert!(!plan.skips(1));
        assert!(plan.skips(2));
        assert!(plan.skips(99));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(plan.describe().lines().count(), 4);
    }

    #[test]
    fn seeded_plans_are_order_independent() {
        let forward = FaultPlan::seeded(42, ["A", "B", "C", "D"]);
        let backward = FaultPlan::seeded(42, ["D", "C", "B", "A"]);
        assert_eq!(forward, backward);
        // Distinct seeds eventually disagree.
        let other = FaultPlan::seeded(43, ["A", "B", "C", "D"]);
        let another = FaultPlan::seeded(44, ["A", "B", "C", "D"]);
        assert!(
            forward != other || forward != another,
            "two fresh seeds both matching seed 42 is vanishingly unlikely"
        );
    }

    #[test]
    fn seeded_plans_inject_all_fault_kinds_across_seeds() {
        let names: Vec<String> = (0..64).map(|i| format!("R{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let plan = FaultPlan::seeded(7, refs.iter().copied());
        let strategies = refs.iter().filter(|n| plan.strategy_panics(n)).count();
        let checks = refs.iter().filter(|n| plan.check_panics(n)).count();
        let budgets = refs.iter().filter(|n| plan.exhausts_budget(n)).count();
        let clean = refs
            .iter()
            .filter(|n| {
                !plan.strategy_panics(n) && !plan.check_panics(n) && !plan.exhausts_budget(n)
            })
            .count();
        assert!(strategies > 0 && checks > 0 && budgets > 0 && clean > 0);
        assert_eq!(strategies + checks + budgets + clean, 64);
    }
}

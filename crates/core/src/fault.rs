//! Deterministic fault injection for the verification pipeline.
//!
//! The fault-tolerance guarantees of [`crate::Pipeline::run`] — a panicking
//! strategy is isolated to its recipe, an exhausted budget degrades into a
//! reported partial result, an interrupted run leaves a resumable cert
//! store, a mangled cert record is a cache miss and never a served lie —
//! are only trustworthy if they are *tested*, and testing them requires
//! making workers fail on purpose, at chosen points, reproducibly. A
//! [`FaultPlan`] is that test harness: a declarative set of injection
//! points the pipeline consults as it runs.
//!
//! Three ways to build one:
//!
//! * the explicit builders ([`FaultPlan::panic_in_strategy`] and friends)
//!   pin specific faults to specific recipes — integration tests use these
//!   to assert one exact partial report;
//! * [`FaultPlan::seeded`] derives the injection set from a SplitMix64
//!   stream over the full [`FaultFate`] taxonomy, for randomized robustness
//!   sweeps (`armada fuzz` runs a campaign of them). Each recipe's fate is
//!   a pure function of `(seed, recipe name)` — never of execution order —
//!   so the same seed produces the same faults at any `--jobs` count;
//! * [`FaultPlan::from_events`] rebuilds a plan from an explicit event
//!   list — the reproducer format `armada fuzz` emits after shrinking a
//!   failing plan to a minimal fault sequence.
//!
//! Fault plans are test-only in intent: nothing in the pipeline constructs
//! one unless a caller passes it in (the CLI gates it behind the
//! deliberately test-scented `--fault-seed` / `fuzz --events`).

use std::collections::BTreeSet;

use armada_runtime::hash::fnv1a_64;
use armada_runtime::SplitMix64;

/// One kind of injectable fault, attached to a recipe by a [`FaultEvent`].
///
/// Fates split into two classes the fuzzer's invariants depend on:
///
/// * **recoverable** fates damage infrastructure the pipeline is designed
///   to see through — torn/bit-flipped cert writes, corrupt cert reads,
///   slow-relation stalls, delayed cooperative cancels. A run under only
///   recoverable faults must produce the *byte-identical* final verdict of
///   a fault-free run (the damage costs recomputation, never correctness);
/// * **degrading** fates (panics, forced budget exhaustion, worker-slot
///   aborts, deadline jitter) legitimately change the affected recipe's
///   outcome — into one of the documented degraded statuses, deterministic
///   at any job count, never a hang or a lost run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultFate {
    /// Panic on entry to the recipe's strategy stage.
    StrategyPanic,
    /// Panic on entry to the recipe's semantic check.
    CheckPanic,
    /// Clamp the semantic check to a 1-node budget (forced exhaustion).
    BudgetExhaustion,
    /// The recipe's cert-store saves land truncated at half length.
    TornCertWrite,
    /// The recipe's cert-store saves land with one payload digit flipped —
    /// the record still parses; only checksum re-validation can reject it.
    BitFlipCertWrite,
    /// The recipe's cert-store loads read one flipped payload digit (the
    /// on-disk record is untouched).
    CorruptCertRead,
    /// Sleep at every wave boundary of the recipe's semantic check (a slow
    /// refinement relation / stalled worker).
    WaveStall,
    /// Suppress the cooperative deadline check for the check's first waves
    /// (a delayed cancel).
    CancelDelay,
    /// Panic in one worker slot of the check's wave pool (an aborted
    /// worker), drained deterministically at any job count.
    WorkerAbort,
    /// Tighten the recipe's wall-clock deadline to zero (adverse jitter):
    /// the check must degrade into a deadline outcome, never hang.
    DeadlineJitter,
}

/// Every fate, in declaration order (stable for reports and iteration).
pub const ALL_FATES: [FaultFate; 10] = [
    FaultFate::StrategyPanic,
    FaultFate::CheckPanic,
    FaultFate::BudgetExhaustion,
    FaultFate::TornCertWrite,
    FaultFate::BitFlipCertWrite,
    FaultFate::CorruptCertRead,
    FaultFate::WaveStall,
    FaultFate::CancelDelay,
    FaultFate::WorkerAbort,
    FaultFate::DeadlineJitter,
];

impl FaultFate {
    /// Stable machine-readable label (the reproducer vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            FaultFate::StrategyPanic => "strategy_panic",
            FaultFate::CheckPanic => "check_panic",
            FaultFate::BudgetExhaustion => "budget_exhaustion",
            FaultFate::TornCertWrite => "torn_cert_write",
            FaultFate::BitFlipCertWrite => "bitflip_cert_write",
            FaultFate::CorruptCertRead => "corrupt_cert_read",
            FaultFate::WaveStall => "wave_stall",
            FaultFate::CancelDelay => "cancel_delay",
            FaultFate::WorkerAbort => "worker_abort",
            FaultFate::DeadlineJitter => "deadline_jitter",
        }
    }

    /// Parses a [`FaultFate::label`].
    pub fn parse(label: &str) -> Option<FaultFate> {
        ALL_FATES.into_iter().find(|fate| fate.label() == label)
    }

    /// True for fates the pipeline must absorb without any change to the
    /// final verdict (see the type-level docs).
    pub fn is_recoverable(self) -> bool {
        matches!(
            self,
            FaultFate::TornCertWrite
                | FaultFate::BitFlipCertWrite
                | FaultFate::CorruptCertRead
                | FaultFate::WaveStall
                | FaultFate::CancelDelay
        )
    }
}

/// One injection point: `fate` applied to `recipe`. A [`FaultPlan`] is a
/// set of these (plus the optional mid-run kill, which is not per-recipe);
/// shrinking removes events one at a time.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// The injected fault kind.
    pub fate: FaultFate,
    /// The recipe it is pinned to.
    pub recipe: String,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.fate.label(), self.recipe)
    }
}

/// Declarative injection points for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The per-recipe fault events, kept sorted and deduplicated.
    events: BTreeSet<FaultEvent>,
    /// Abort the run before any recipe at index ≥ this (a simulated
    /// mid-run kill: later recipes are reported as skipped, and whatever
    /// earlier recipes persisted stays on disk).
    abort_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds `fate` for `recipe`.
    pub fn with_fate(mut self, fate: FaultFate, recipe: &str) -> FaultPlan {
        self.events.insert(FaultEvent {
            fate,
            recipe: recipe.to_string(),
        });
        self
    }

    /// Injects a panic at the start of `recipe`'s strategy stage.
    pub fn panic_in_strategy(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::StrategyPanic, recipe)
    }

    /// Injects a panic at the start of `recipe`'s semantic check.
    pub fn panic_in_check(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::CheckPanic, recipe)
    }

    /// Forces `recipe`'s semantic check to exhaust its node budget
    /// immediately (the budget is clamped to one product node).
    pub fn exhaust_budget(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::BudgetExhaustion, recipe)
    }

    /// Aborts the run before recipe index `index` (0-based, recipe
    /// declaration order): a simulated kill. Recipes at earlier indices
    /// complete normally; later ones are reported as skipped.
    pub fn abort_at(mut self, index: usize) -> FaultPlan {
        self.abort_at = Some(index);
        self
    }

    /// Rebuilds a plan from an explicit event list (the reproducer format).
    pub fn from_events(events: impl IntoIterator<Item = FaultEvent>) -> FaultPlan {
        FaultPlan {
            events: events.into_iter().collect(),
            abort_at: None,
        }
    }

    /// The plan's per-recipe events, sorted (fate order, then recipe).
    /// The mid-run kill (`abort_at`) is not an event; shrinking never
    /// encounters it because [`FaultPlan::seeded`] never injects it.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.iter().cloned().collect()
    }

    /// Derives a plan from `seed` over the given recipe names. Each recipe
    /// independently draws from a stream seeded by `(seed, name)`: with
    /// probability 6/16 it is left alone, else one of the ten
    /// [`FaultFate`]s is injected uniformly. Order-independent by
    /// construction, so jobs=1 and jobs=N runs inject identically.
    pub fn seeded<'a>(seed: u64, recipes: impl IntoIterator<Item = &'a str>) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for name in recipes {
            let mut rng = SplitMix64::new(seed ^ fnv1a_64(name.as_bytes()));
            let draw = rng.below(16) as usize;
            if let Some(&fate) = ALL_FATES.get(draw.wrapping_sub(6)) {
                plan = plan.with_fate(fate, name);
            }
        }
        plan
    }

    /// True if `recipe` has `fate` injected.
    pub fn has(&self, fate: FaultFate, recipe: &str) -> bool {
        // BTreeSet::contains needs an owned-keyed probe; the set is tiny.
        self.events
            .iter()
            .any(|e| e.fate == fate && e.recipe == recipe)
    }

    /// True if `recipe`'s strategy stage should panic.
    pub fn strategy_panics(&self, recipe: &str) -> bool {
        self.has(FaultFate::StrategyPanic, recipe)
    }

    /// True if `recipe`'s semantic check should panic.
    pub fn check_panics(&self, recipe: &str) -> bool {
        self.has(FaultFate::CheckPanic, recipe)
    }

    /// True if `recipe`'s semantic check should run with an exhausted
    /// budget.
    pub fn exhausts_budget(&self, recipe: &str) -> bool {
        self.has(FaultFate::BudgetExhaustion, recipe)
    }

    /// True if the run should skip the recipe at `index` (simulated kill).
    pub fn skips(&self, index: usize) -> bool {
        self.abort_at.is_some_and(|at| index >= at)
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.abort_at.is_none()
    }

    /// True if every injected fault is recoverable (see [`FaultFate`]):
    /// the run's final verdict must then be byte-identical to a fault-free
    /// run's.
    pub fn is_recoverable_only(&self) -> bool {
        self.abort_at.is_none() && self.events.iter().all(|e| e.fate.is_recoverable())
    }

    /// How many events inject `fate`.
    pub fn count_of(&self, fate: FaultFate) -> usize {
        self.events.iter().filter(|e| e.fate == fate).count()
    }

    /// One line per injection, for logging the plan alongside a report.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let what = match event.fate {
                FaultFate::StrategyPanic => "panic in strategy of",
                FaultFate::CheckPanic => "panic in semantic check of",
                FaultFate::BudgetExhaustion => "budget exhaustion in",
                FaultFate::TornCertWrite => "torn cert writes in",
                FaultFate::BitFlipCertWrite => "bit-flipped cert writes in",
                FaultFate::CorruptCertRead => "corrupt cert reads in",
                FaultFate::WaveStall => "wave-boundary stalls in",
                FaultFate::CancelDelay => "delayed cooperative cancel in",
                FaultFate::WorkerAbort => "worker-slot abort in",
                FaultFate::DeadlineJitter => "deadline jitter in",
            };
            out.push_str(&format!("{what} `{}`\n", event.recipe));
        }
        if let Some(at) = self.abort_at {
            out.push_str(&format!("abort before recipe index {at}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_register_their_injection_points() {
        let plan = FaultPlan::new()
            .panic_in_strategy("P1")
            .panic_in_check("P2")
            .exhaust_budget("P3")
            .abort_at(2);
        assert!(plan.strategy_panics("P1"));
        assert!(!plan.strategy_panics("P2"));
        assert!(plan.check_panics("P2"));
        assert!(plan.exhausts_budget("P3"));
        assert!(!plan.skips(1));
        assert!(plan.skips(2));
        assert!(plan.skips(99));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(plan.describe().lines().count(), 4);
    }

    #[test]
    fn events_round_trip_through_from_events() {
        let plan = FaultPlan::new()
            .with_fate(FaultFate::TornCertWrite, "P1")
            .with_fate(FaultFate::WorkerAbort, "P2")
            .with_fate(FaultFate::WaveStall, "P1");
        let events = plan.events();
        assert_eq!(events.len(), 3);
        assert_eq!(FaultPlan::from_events(events), plan);
        // Rendered labels parse back.
        for event in plan.events() {
            assert_eq!(FaultFate::parse(event.fate.label()), Some(event.fate));
        }
        assert_eq!(FaultFate::parse("no_such_fate"), None);
    }

    #[test]
    fn recoverability_classes_partition_the_taxonomy() {
        let recoverable: Vec<FaultFate> = ALL_FATES
            .into_iter()
            .filter(|f| f.is_recoverable())
            .collect();
        assert_eq!(recoverable.len(), 5);
        assert!(FaultPlan::new()
            .with_fate(FaultFate::BitFlipCertWrite, "P")
            .with_fate(FaultFate::CancelDelay, "P")
            .is_recoverable_only());
        assert!(!FaultPlan::new()
            .with_fate(FaultFate::BitFlipCertWrite, "P")
            .with_fate(FaultFate::DeadlineJitter, "P")
            .is_recoverable_only());
        assert!(!FaultPlan::new().abort_at(0).is_recoverable_only());
    }

    #[test]
    fn seeded_plans_are_order_independent() {
        let forward = FaultPlan::seeded(42, ["A", "B", "C", "D"]);
        let backward = FaultPlan::seeded(42, ["D", "C", "B", "A"]);
        assert_eq!(forward, backward);
        // Distinct seeds eventually disagree.
        let other = FaultPlan::seeded(43, ["A", "B", "C", "D"]);
        let another = FaultPlan::seeded(44, ["A", "B", "C", "D"]);
        assert!(
            forward != other || forward != another,
            "two fresh seeds both matching seed 42 is vanishingly unlikely"
        );
    }

    #[test]
    fn seeded_plans_cover_the_full_taxonomy_across_seeds() {
        let names: Vec<String> = (0..64).map(|i| format!("R{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut counts = [0usize; ALL_FATES.len()];
        let mut clean = 0usize;
        let mut drawn = 0usize;
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(seed, refs.iter().copied());
            for (i, fate) in ALL_FATES.into_iter().enumerate() {
                counts[i] += plan.count_of(fate);
            }
            clean += refs.len() - plan.events().len();
            drawn += refs.len();
        }
        for (i, fate) in ALL_FATES.into_iter().enumerate() {
            assert!(counts[i] > 0, "fate {} never drawn", fate.label());
        }
        assert!(clean > 0, "some recipes must stay clean");
        assert_eq!(clean + counts.iter().sum::<usize>(), drawn);
        // Roughly 6/16 of draws stay clean (±10 points at this volume).
        let clean_rate = clean as f64 / drawn as f64;
        assert!(
            (0.275..=0.475).contains(&clean_rate),
            "clean rate {clean_rate} far from 6/16"
        );
    }
}

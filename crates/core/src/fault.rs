//! Deterministic fault injection for the verification pipeline.
//!
//! The fault-tolerance guarantees of [`crate::Pipeline::run`] — a panicking
//! strategy is isolated to its recipe, an exhausted budget degrades into a
//! reported partial result, an interrupted run leaves a resumable cert
//! store, a mangled cert record is a cache miss and never a served lie —
//! are only trustworthy if they are *tested*, and testing them requires
//! making workers fail on purpose, at chosen points, reproducibly. A
//! [`FaultPlan`] is that test harness: a declarative set of injection
//! points the pipeline consults as it runs.
//!
//! Three ways to build one:
//!
//! * the explicit builders ([`FaultPlan::panic_in_strategy`] and friends)
//!   pin specific faults to specific recipes — integration tests use these
//!   to assert one exact partial report;
//! * [`FaultPlan::seeded`] derives the injection set from a SplitMix64
//!   stream over the full [`FaultFate`] taxonomy, for randomized robustness
//!   sweeps (`armada fuzz` runs a campaign of them). Each recipe's fate is
//!   a pure function of `(seed, recipe name)` — never of execution order —
//!   so the same seed produces the same faults at any `--jobs` count;
//! * [`FaultPlan::from_events`] rebuilds a plan from an explicit event
//!   list — the reproducer format `armada fuzz` emits after shrinking a
//!   failing plan to a minimal fault sequence.
//!
//! Fault plans are test-only in intent: nothing in the pipeline constructs
//! one unless a caller passes it in (the CLI gates it behind the
//! deliberately test-scented `--fault-seed` / `fuzz --events`).

use std::collections::BTreeSet;

use armada_runtime::hash::fnv1a_64;
use armada_runtime::SplitMix64;

/// One kind of injectable fault, attached to a recipe by a [`FaultEvent`].
///
/// Fates split into two classes the fuzzer's invariants depend on:
///
/// * **recoverable** fates damage infrastructure the pipeline is designed
///   to see through — torn/bit-flipped cert writes, corrupt cert reads,
///   slow-relation stalls, delayed cooperative cancels. A run under only
///   recoverable faults must produce the *byte-identical* final verdict of
///   a fault-free run (the damage costs recomputation, never correctness);
/// * **degrading** fates (panics, forced budget exhaustion, worker-slot
///   aborts, deadline jitter) legitimately change the affected recipe's
///   outcome — into one of the documented degraded statuses, deterministic
///   at any job count, never a hang or a lost run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultFate {
    /// Panic on entry to the recipe's strategy stage.
    StrategyPanic,
    /// Panic on entry to the recipe's semantic check.
    CheckPanic,
    /// Clamp the semantic check to a 1-node budget (forced exhaustion).
    BudgetExhaustion,
    /// The recipe's cert-store saves land truncated at half length.
    TornCertWrite,
    /// The recipe's cert-store saves land with one payload digit flipped —
    /// the record still parses; only checksum re-validation can reject it.
    BitFlipCertWrite,
    /// The recipe's cert-store loads read one flipped payload digit (the
    /// on-disk record is untouched).
    CorruptCertRead,
    /// Sleep at every wave boundary of the recipe's semantic check (a slow
    /// refinement relation / stalled worker).
    WaveStall,
    /// Suppress the cooperative deadline check for the check's first waves
    /// (a delayed cancel).
    CancelDelay,
    /// Panic in one worker slot of the check's wave pool (an aborted
    /// worker), drained deterministically at any job count.
    WorkerAbort,
    /// Tighten the recipe's wall-clock deadline to zero (adverse jitter):
    /// the check must degrade into a deadline outcome, never hang.
    DeadlineJitter,
    /// The recipe runs checkpointed and its checkpoint manifest lands torn
    /// at half length (a kill mid-save). Resume must detect the tear and
    /// fall back to a cold start — never resume from a half-written wave.
    TornCheckpointWrite,
    /// The recipe runs spilled under a tiny memory cap and the first cold
    /// spill-page fault reads flipped bytes (a bad sector). The checksum
    /// must reject the page and the re-read serve the true bytes — a
    /// corrupt page is never decoded into states.
    CorruptSpillRead,
}

/// Every fate, in declaration order (stable for reports and iteration).
pub const ALL_FATES: [FaultFate; 12] = [
    FaultFate::StrategyPanic,
    FaultFate::CheckPanic,
    FaultFate::BudgetExhaustion,
    FaultFate::TornCertWrite,
    FaultFate::BitFlipCertWrite,
    FaultFate::CorruptCertRead,
    FaultFate::WaveStall,
    FaultFate::CancelDelay,
    FaultFate::WorkerAbort,
    FaultFate::DeadlineJitter,
    FaultFate::TornCheckpointWrite,
    FaultFate::CorruptSpillRead,
];

impl FaultFate {
    /// Stable machine-readable label (the reproducer vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            FaultFate::StrategyPanic => "strategy_panic",
            FaultFate::CheckPanic => "check_panic",
            FaultFate::BudgetExhaustion => "budget_exhaustion",
            FaultFate::TornCertWrite => "torn_cert_write",
            FaultFate::BitFlipCertWrite => "bitflip_cert_write",
            FaultFate::CorruptCertRead => "corrupt_cert_read",
            FaultFate::WaveStall => "wave_stall",
            FaultFate::CancelDelay => "cancel_delay",
            FaultFate::WorkerAbort => "worker_abort",
            FaultFate::DeadlineJitter => "deadline_jitter",
            FaultFate::TornCheckpointWrite => "torn_checkpoint_write",
            FaultFate::CorruptSpillRead => "corrupt_spill_read",
        }
    }

    /// Parses a [`FaultFate::label`].
    pub fn parse(label: &str) -> Option<FaultFate> {
        ALL_FATES.into_iter().find(|fate| fate.label() == label)
    }

    /// True for fates the pipeline must absorb without any change to the
    /// final verdict (see the type-level docs).
    pub fn is_recoverable(self) -> bool {
        matches!(
            self,
            FaultFate::TornCertWrite
                | FaultFate::BitFlipCertWrite
                | FaultFate::CorruptCertRead
                | FaultFate::WaveStall
                | FaultFate::CancelDelay
                | FaultFate::TornCheckpointWrite
                | FaultFate::CorruptSpillRead
        )
    }
}

/// One injection point: `fate` applied to `recipe`. A [`FaultPlan`] is a
/// set of these (plus the optional mid-run kill, which is not per-recipe);
/// shrinking removes events one at a time.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// The injected fault kind.
    pub fate: FaultFate,
    /// The recipe it is pinned to.
    pub recipe: String,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.fate.label(), self.recipe)
    }
}

/// Declarative injection points for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The per-recipe fault events, kept sorted and deduplicated.
    events: BTreeSet<FaultEvent>,
    /// Abort the run before any recipe at index ≥ this (a simulated
    /// mid-run kill: later recipes are reported as skipped, and whatever
    /// earlier recipes persisted stays on disk).
    abort_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds `fate` for `recipe`.
    pub fn with_fate(mut self, fate: FaultFate, recipe: &str) -> FaultPlan {
        self.events.insert(FaultEvent {
            fate,
            recipe: recipe.to_string(),
        });
        self
    }

    /// Injects a panic at the start of `recipe`'s strategy stage.
    pub fn panic_in_strategy(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::StrategyPanic, recipe)
    }

    /// Injects a panic at the start of `recipe`'s semantic check.
    pub fn panic_in_check(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::CheckPanic, recipe)
    }

    /// Forces `recipe`'s semantic check to exhaust its node budget
    /// immediately (the budget is clamped to one product node).
    pub fn exhaust_budget(self, recipe: &str) -> FaultPlan {
        self.with_fate(FaultFate::BudgetExhaustion, recipe)
    }

    /// Aborts the run before recipe index `index` (0-based, recipe
    /// declaration order): a simulated kill. Recipes at earlier indices
    /// complete normally; later ones are reported as skipped.
    pub fn abort_at(mut self, index: usize) -> FaultPlan {
        self.abort_at = Some(index);
        self
    }

    /// Rebuilds a plan from an explicit event list (the reproducer format).
    pub fn from_events(events: impl IntoIterator<Item = FaultEvent>) -> FaultPlan {
        FaultPlan {
            events: events.into_iter().collect(),
            abort_at: None,
        }
    }

    /// The plan's per-recipe events, sorted (fate order, then recipe).
    /// The mid-run kill (`abort_at`) is not an event; shrinking never
    /// encounters it because [`FaultPlan::seeded`] never injects it.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.iter().cloned().collect()
    }

    /// Derives a plan from `seed` over the given recipe names. Each recipe
    /// independently draws from a stream seeded by `(seed, name)`: with
    /// probability 6/18 it is left alone, else one of the twelve
    /// [`FaultFate`]s is injected uniformly. Order-independent by
    /// construction, so jobs=1 and jobs=N runs inject identically.
    pub fn seeded<'a>(seed: u64, recipes: impl IntoIterator<Item = &'a str>) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for name in recipes {
            let mut rng = SplitMix64::new(seed ^ fnv1a_64(name.as_bytes()));
            let draw = rng.below(18) as usize;
            if let Some(&fate) = ALL_FATES.get(draw.wrapping_sub(6)) {
                plan = plan.with_fate(fate, name);
            }
        }
        plan
    }

    /// True if `recipe` has `fate` injected.
    pub fn has(&self, fate: FaultFate, recipe: &str) -> bool {
        // BTreeSet::contains needs an owned-keyed probe; the set is tiny.
        self.events
            .iter()
            .any(|e| e.fate == fate && e.recipe == recipe)
    }

    /// True if `recipe`'s strategy stage should panic.
    pub fn strategy_panics(&self, recipe: &str) -> bool {
        self.has(FaultFate::StrategyPanic, recipe)
    }

    /// True if `recipe`'s semantic check should panic.
    pub fn check_panics(&self, recipe: &str) -> bool {
        self.has(FaultFate::CheckPanic, recipe)
    }

    /// True if `recipe`'s semantic check should run with an exhausted
    /// budget.
    pub fn exhausts_budget(&self, recipe: &str) -> bool {
        self.has(FaultFate::BudgetExhaustion, recipe)
    }

    /// True if the run should skip the recipe at `index` (simulated kill).
    pub fn skips(&self, index: usize) -> bool {
        self.abort_at.is_some_and(|at| index >= at)
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.abort_at.is_none()
    }

    /// True if every injected fault is recoverable (see [`FaultFate`]):
    /// the run's final verdict must then be byte-identical to a fault-free
    /// run's.
    pub fn is_recoverable_only(&self) -> bool {
        self.abort_at.is_none() && self.events.iter().all(|e| e.fate.is_recoverable())
    }

    /// How many events inject `fate`.
    pub fn count_of(&self, fate: FaultFate) -> usize {
        self.events.iter().filter(|e| e.fate == fate).count()
    }

    /// One line per injection, for logging the plan alongside a report.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let what = match event.fate {
                FaultFate::StrategyPanic => "panic in strategy of",
                FaultFate::CheckPanic => "panic in semantic check of",
                FaultFate::BudgetExhaustion => "budget exhaustion in",
                FaultFate::TornCertWrite => "torn cert writes in",
                FaultFate::BitFlipCertWrite => "bit-flipped cert writes in",
                FaultFate::CorruptCertRead => "corrupt cert reads in",
                FaultFate::WaveStall => "wave-boundary stalls in",
                FaultFate::CancelDelay => "delayed cooperative cancel in",
                FaultFate::WorkerAbort => "worker-slot abort in",
                FaultFate::DeadlineJitter => "deadline jitter in",
                FaultFate::TornCheckpointWrite => "torn checkpoint writes in",
                FaultFate::CorruptSpillRead => "corrupt spill-page reads in",
            };
            out.push_str(&format!("{what} `{}`\n", event.recipe));
        }
        if let Some(at) = self.abort_at {
            out.push_str(&format!("abort before recipe index {at}\n"));
        }
        out
    }
}

/// One kind of injectable *server-level* fault, for `armada fuzz --serve`.
///
/// These are deliberately a separate taxonomy from [`FaultFate`]: the
/// pipeline's twelve fates are pinned by the in-process fuzzer's coverage
/// invariants, while these four attack the daemon around the pipeline —
/// its workers, its shared tier-2 cache, its admission path, and its
/// coalescing map. Like the pipeline fates they split into classes:
///
/// * **recoverable** — the daemon must absorb the fault and still deliver
///   the fault-free verdict: a killed worker is retried with backoff
///   ([`WorkerKill`](ServerFate::WorkerKill)), a corrupted tier-2 record
///   is audited and recomputed ([`Tier2Corrupt`](ServerFate::Tier2Corrupt)),
///   a same-key storm coalesces into one run
///   ([`SameKeyStorm`](ServerFate::SameKeyStorm));
/// * **degrading** — [`AcceptJitter`](ServerFate::AcceptJitter) collapses
///   the request's deadline on the accept path; the contract is a
///   *structured* deadline response within deadline+grace, never a hang or
///   a dropped connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServerFate {
    /// Kill (panic) the worker thread's first attempt at this request; the
    /// daemon's bounded retry-with-backoff must recover it.
    WorkerKill,
    /// Corrupt this request's view of the tier-2 (disk) cert store: reads
    /// see one flipped payload digit. Checksum validation must reject the
    /// record, audit it, and recompute.
    Tier2Corrupt,
    /// Collapse the request's deadline to zero on the accept path (adverse
    /// scheduling jitter between accept and admission).
    AcceptJitter,
    /// Turn this request into a same-key storm: the fuzz driver fires a
    /// burst of concurrent identical requests, which must coalesce into a
    /// single underlying verification with byte-identical responses.
    SameKeyStorm,
}

/// Every server fate, in declaration order.
pub const ALL_SERVER_FATES: [ServerFate; 4] = [
    ServerFate::WorkerKill,
    ServerFate::Tier2Corrupt,
    ServerFate::AcceptJitter,
    ServerFate::SameKeyStorm,
];

impl ServerFate {
    /// Stable machine-readable label (the `--server-events` vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            ServerFate::WorkerKill => "worker_kill",
            ServerFate::Tier2Corrupt => "tier2_corrupt",
            ServerFate::AcceptJitter => "accept_jitter",
            ServerFate::SameKeyStorm => "same_key_storm",
        }
    }

    /// Parses a [`ServerFate::label`].
    pub fn parse(label: &str) -> Option<ServerFate> {
        ALL_SERVER_FATES
            .into_iter()
            .find(|fate| fate.label() == label)
    }

    /// True for fates the daemon must absorb without any change to the
    /// delivered verdict (see the type-level docs).
    pub fn is_recoverable(self) -> bool {
        !matches!(self, ServerFate::AcceptJitter)
    }
}

/// One server-level injection point: `fate` applied to the request with
/// admission ordinal `ordinal` (the daemon numbers verify requests in
/// admission order, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ServerEvent {
    /// The injected fault kind.
    pub fate: ServerFate,
    /// The 0-based verify-request ordinal it is pinned to.
    pub ordinal: usize,
}

impl std::fmt::Display for ServerEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.fate.label(), self.ordinal)
    }
}

/// Declarative server-level injection points for one daemon's lifetime.
///
/// Ordinals are assigned at admission, so a plan is only deterministic when
/// the driver controls request order — the fuzzer injects fates exclusively
/// on the ordinals of its *sequential* phase (one request in flight at a
/// time) and drives storms as a driver-side behavior, never as an ordinal
/// the concurrent phase could race over.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerPlan {
    events: BTreeSet<ServerEvent>,
}

impl ServerPlan {
    /// A plan that injects nothing.
    pub fn new() -> ServerPlan {
        ServerPlan::default()
    }

    /// Adds `fate` for the request with admission ordinal `ordinal`.
    pub fn with_fate(mut self, fate: ServerFate, ordinal: usize) -> ServerPlan {
        self.events.insert(ServerEvent { fate, ordinal });
        self
    }

    /// Rebuilds a plan from an explicit event list (the reproducer format).
    pub fn from_events(events: impl IntoIterator<Item = ServerEvent>) -> ServerPlan {
        ServerPlan {
            events: events.into_iter().collect(),
        }
    }

    /// The plan's events, sorted (fate order, then ordinal).
    pub fn events(&self) -> Vec<ServerEvent> {
        self.events.iter().copied().collect()
    }

    /// Derives a plan from `seed` over the fuzzer's sequential-phase
    /// ordinals `0..ordinals`. Each ordinal independently draws from a
    /// stream seeded by `(seed, ordinal)`: with probability 4/8 it is left
    /// alone, else one of the four [`ServerFate`]s is injected uniformly.
    /// Order-independent by construction (same property as
    /// [`FaultPlan::seeded`]).
    pub fn seeded(seed: u64, ordinals: usize) -> ServerPlan {
        let mut plan = ServerPlan::new();
        for ordinal in 0..ordinals {
            let mut rng = SplitMix64::new(seed ^ fnv1a_64(&(ordinal as u64).to_le_bytes()));
            let draw = rng.below(8) as usize;
            if let Some(&fate) = ALL_SERVER_FATES.get(draw.wrapping_sub(4)) {
                plan = plan.with_fate(fate, ordinal);
            }
        }
        plan
    }

    /// True if the request at `ordinal` has `fate` injected.
    pub fn has(&self, fate: ServerFate, ordinal: usize) -> bool {
        self.events.contains(&ServerEvent { fate, ordinal })
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events inject `fate`.
    pub fn count_of(&self, fate: ServerFate) -> usize {
        self.events.iter().filter(|e| e.fate == fate).count()
    }

    /// One line per injection, for logging the plan alongside a report.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let what = match event.fate {
                ServerFate::WorkerKill => "kill worker on request",
                ServerFate::Tier2Corrupt => "corrupt tier-2 reads of request",
                ServerFate::AcceptJitter => "deadline jitter on accept of request",
                ServerFate::SameKeyStorm => "same-key storm at request",
            };
            out.push_str(&format!("{what} #{}\n", event.ordinal));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_register_their_injection_points() {
        let plan = FaultPlan::new()
            .panic_in_strategy("P1")
            .panic_in_check("P2")
            .exhaust_budget("P3")
            .abort_at(2);
        assert!(plan.strategy_panics("P1"));
        assert!(!plan.strategy_panics("P2"));
        assert!(plan.check_panics("P2"));
        assert!(plan.exhausts_budget("P3"));
        assert!(!plan.skips(1));
        assert!(plan.skips(2));
        assert!(plan.skips(99));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(plan.describe().lines().count(), 4);
    }

    #[test]
    fn events_round_trip_through_from_events() {
        let plan = FaultPlan::new()
            .with_fate(FaultFate::TornCertWrite, "P1")
            .with_fate(FaultFate::WorkerAbort, "P2")
            .with_fate(FaultFate::WaveStall, "P1");
        let events = plan.events();
        assert_eq!(events.len(), 3);
        assert_eq!(FaultPlan::from_events(events), plan);
        // Rendered labels parse back.
        for event in plan.events() {
            assert_eq!(FaultFate::parse(event.fate.label()), Some(event.fate));
        }
        assert_eq!(FaultFate::parse("no_such_fate"), None);
    }

    #[test]
    fn recoverability_classes_partition_the_taxonomy() {
        let recoverable: Vec<FaultFate> = ALL_FATES
            .into_iter()
            .filter(|f| f.is_recoverable())
            .collect();
        assert_eq!(recoverable.len(), 7);
        assert!(FaultPlan::new()
            .with_fate(FaultFate::BitFlipCertWrite, "P")
            .with_fate(FaultFate::CancelDelay, "P")
            .is_recoverable_only());
        assert!(!FaultPlan::new()
            .with_fate(FaultFate::BitFlipCertWrite, "P")
            .with_fate(FaultFate::DeadlineJitter, "P")
            .is_recoverable_only());
        assert!(!FaultPlan::new().abort_at(0).is_recoverable_only());
    }

    #[test]
    fn seeded_plans_are_order_independent() {
        let forward = FaultPlan::seeded(42, ["A", "B", "C", "D"]);
        let backward = FaultPlan::seeded(42, ["D", "C", "B", "A"]);
        assert_eq!(forward, backward);
        // Distinct seeds eventually disagree.
        let other = FaultPlan::seeded(43, ["A", "B", "C", "D"]);
        let another = FaultPlan::seeded(44, ["A", "B", "C", "D"]);
        assert!(
            forward != other || forward != another,
            "two fresh seeds both matching seed 42 is vanishingly unlikely"
        );
    }

    #[test]
    fn seeded_plans_cover_the_full_taxonomy_across_seeds() {
        let names: Vec<String> = (0..64).map(|i| format!("R{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut counts = [0usize; ALL_FATES.len()];
        let mut clean = 0usize;
        let mut drawn = 0usize;
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(seed, refs.iter().copied());
            for (i, fate) in ALL_FATES.into_iter().enumerate() {
                counts[i] += plan.count_of(fate);
            }
            clean += refs.len() - plan.events().len();
            drawn += refs.len();
        }
        for (i, fate) in ALL_FATES.into_iter().enumerate() {
            assert!(counts[i] > 0, "fate {} never drawn", fate.label());
        }
        assert!(clean > 0, "some recipes must stay clean");
        assert_eq!(clean + counts.iter().sum::<usize>(), drawn);
        // Roughly 6/18 of draws stay clean (±10 points at this volume).
        let clean_rate = clean as f64 / drawn as f64;
        assert!(
            (0.233..=0.433).contains(&clean_rate),
            "clean rate {clean_rate} far from 6/18"
        );
    }

    #[test]
    fn server_plans_register_parse_and_cover_their_taxonomy() {
        let plan = ServerPlan::new()
            .with_fate(ServerFate::WorkerKill, 0)
            .with_fate(ServerFate::Tier2Corrupt, 1);
        assert!(plan.has(ServerFate::WorkerKill, 0));
        assert!(!plan.has(ServerFate::WorkerKill, 1));
        assert_eq!(ServerPlan::from_events(plan.events()), plan);
        assert_eq!(plan.describe().lines().count(), 2);
        for fate in ALL_SERVER_FATES {
            assert_eq!(ServerFate::parse(fate.label()), Some(fate));
        }
        assert_eq!(ServerFate::parse("no_such_fate"), None);
        // Recoverable split: only accept jitter legitimately degrades.
        let recoverable: Vec<ServerFate> = ALL_SERVER_FATES
            .into_iter()
            .filter(|f| f.is_recoverable())
            .collect();
        assert_eq!(recoverable.len(), 3);

        // Seeded plans are deterministic and sweep the whole taxonomy.
        let mut counts = [0usize; ALL_SERVER_FATES.len()];
        let mut clean = 0usize;
        for seed in 0..64u64 {
            let plan = ServerPlan::seeded(seed, 3);
            assert_eq!(plan, ServerPlan::seeded(seed, 3));
            for (i, fate) in ALL_SERVER_FATES.into_iter().enumerate() {
                counts[i] += plan.count_of(fate);
            }
            clean += 3 - plan.events().len();
        }
        for (i, fate) in ALL_SERVER_FATES.into_iter().enumerate() {
            assert!(counts[i] > 0, "server fate {} never drawn", fate.label());
        }
        assert!(clean > 0, "some ordinals must stay clean");
    }
}

//! # armada-regions
//!
//! Region-based pointer reasoning for Armada (§4.1.1 of the paper).
//!
//! To prove that two pointers cannot alias, Armada assigns abstract *region
//! ids* to memory locations using Steensgaard's unification-based points-to
//! analysis: every variable starts in its own region, and the regions of any
//! two sides of an assignment are merged. The analysis is flow- and
//! field-insensitive, runs in almost-linear time, and — crucially for the
//! paper's design — lives purely in generated proofs: it needs no changes to
//! the program or the state-machine semantics.
//!
//! The `use_regions` recipe flag makes a strategy consult [`RegionAnalysis`]
//! when discharging obligations; `use_address_invariant` is the cheaper
//! variant asserting only that distinct in-scope variables have distinct,
//! valid addresses.
//!
//! # Example
//!
//! ```
//! use armada_lang::parse_module;
//! use armada_regions::RegionAnalysis;
//!
//! let module = parse_module(r#"
//!     level L {
//!         void main() {
//!             var p: ptr<uint32> := malloc(uint32);
//!             var q: ptr<uint32> := malloc(uint32);
//!             var r: ptr<uint32> := p;
//!             *p := 1;
//!             *q := 2;
//!         }
//!     }
//! "#).unwrap();
//! let analysis = RegionAnalysis::of_level(&module.levels[0]);
//! // p and r were unified by `r := p`; q came from a different allocation.
//! assert!(analysis.may_alias("main", "p", "main", "r"));
//! assert!(!analysis.may_alias("main", "p", "main", "q"));
//! ```

use armada_lang::ast::*;
use std::collections::BTreeMap;

/// An abstract region identifier. Pointers whose pointees are in different
/// regions provably do not alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// A node of the points-to graph: a variable in a scope, or an allocation
/// site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum NodeKey {
    /// `scope` is the method name, or `""` for globals.
    Var { scope: String, name: String },
    /// One `malloc`/`calloc` occurrence, numbered in traversal order.
    AllocSite(u32),
    /// The return value of a method.
    Return(String),
}

/// Union-find with a `points_to` successor per class, implementing
/// Steensgaard's unification rules.
#[derive(Debug, Default)]
struct Graph {
    parent: Vec<u32>,
    points_to: Vec<Option<u32>>,
    keys: BTreeMap<NodeKey, u32>,
}

impl Graph {
    fn node(&mut self, key: NodeKey) -> u32 {
        if let Some(&id) = self.keys.get(&key) {
            return id;
        }
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.points_to.push(None);
        self.keys.insert(key, id);
        id
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.points_to.push(None);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// The points-to successor of a class, created on demand (Steensgaard's
    /// lazily materialized ⊥ successors).
    fn pts(&mut self, x: u32) -> u32 {
        let root = self.find(x);
        match self.points_to[root as usize] {
            Some(succ) => self.find(succ),
            None => {
                let succ = self.fresh();
                self.points_to[root as usize] = Some(succ);
                succ
            }
        }
    }

    /// Unifies two classes and, recursively, their points-to successors
    /// (iteratively, to stay safe on cyclic graphs).
    fn unify(&mut self, a: u32, b: u32) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                continue;
            }
            self.parent[rb as usize] = ra;
            match (self.points_to[ra as usize], self.points_to[rb as usize]) {
                (Some(pa), Some(pb)) => work.push((pa, pb)),
                (None, Some(pb)) => self.points_to[ra as usize] = Some(pb),
                _ => {}
            }
        }
    }
}

/// The result of running Steensgaard's analysis over one level.
#[derive(Debug)]
pub struct RegionAnalysis {
    graph: std::cell::RefCell<Graph>,
    /// Number of nodes at analysis completion, for reporting.
    nodes: usize,
}

impl RegionAnalysis {
    /// Runs the analysis over every method of `level`.
    pub fn of_level(level: &Level) -> RegionAnalysis {
        let mut builder = Builder {
            graph: Graph::default(),
            alloc_counter: 0,
            level,
        };
        for global in level.globals() {
            let node = builder.graph.node(NodeKey::Var {
                scope: String::new(),
                name: global.name.clone(),
            });
            if let Some(init) = &global.init {
                builder.assign_expr(node, "", init);
            }
        }
        for method in level.methods() {
            if let Some(body) = &method.body {
                builder.block(&method.name, body);
            }
        }
        let nodes = builder.graph.parent.len();
        RegionAnalysis {
            graph: std::cell::RefCell::new(builder.graph),
            nodes,
        }
    }

    /// The region a pointer variable's *pointee* belongs to.
    pub fn pointee_region(&self, scope: &str, name: &str) -> RegionId {
        let mut graph = self.graph.borrow_mut();
        let node = graph.node(NodeKey::Var {
            scope: scope.to_string(),
            name: name.to_string(),
        });
        let pts = graph.pts(node);
        RegionId(graph.find(pts))
    }

    /// Whether pointers `a` (in method scope `scope_a`) and `b` may alias —
    /// i.e. whether their pointee regions were unified.
    pub fn may_alias(&self, scope_a: &str, a: &str, scope_b: &str, b: &str) -> bool {
        self.pointee_region(scope_a, a) == self.pointee_region(scope_b, b)
    }

    /// Number of points-to nodes created, reported in proof artifacts.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Renders the region assignment for the pointer variables of a method,
    /// used in generated proof text.
    pub fn describe_scope(&self, level: &Level, scope: &str) -> String {
        let mut out = String::new();
        let mut names: Vec<String> = Vec::new();
        if let Some(method) = level.method(scope) {
            for param in &method.params {
                if matches!(param.ty, Type::Pointer(_)) {
                    names.push(param.name.clone());
                }
            }
            if let Some(body) = &method.body {
                collect_pointer_locals(body, &mut names);
            }
        }
        for global in level.globals() {
            if matches!(global.ty, Type::Pointer(_)) {
                names.push(global.name.clone());
            }
        }
        for name in names {
            let scope_of = if level.globals().any(|g| g.name == name) {
                ""
            } else {
                scope
            };
            let region = self.pointee_region(scope_of, &name);
            out.push_str(&format!("  region({name}) = R{}\n", region.0));
        }
        out
    }
}

fn collect_pointer_locals(block: &Block, out: &mut Vec<String>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::VarDecl {
                name,
                ty: Type::Pointer(_),
                ..
            } => out.push(name.clone()),
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                collect_pointer_locals(then_block, out);
                if let Some(els) = else_block {
                    collect_pointer_locals(els, out);
                }
            }
            StmtKind::While { body, .. } => collect_pointer_locals(body, out),
            StmtKind::ExplicitYield(b) | StmtKind::Atomic(b) | StmtKind::Block(b) => {
                collect_pointer_locals(b, out)
            }
            StmtKind::Label(_, inner) => {
                if let StmtKind::Block(b) = &inner.kind {
                    collect_pointer_locals(b, out)
                }
            }
            _ => {}
        }
    }
}

struct Builder<'a> {
    graph: Graph,
    alloc_counter: u32,
    level: &'a Level,
}

impl Builder<'_> {
    /// The graph node denoting an lvalue/rvalue *location* (field- and
    /// index-insensitive: `e.f` and `e[i]` collapse to `e`).
    fn loc_node(&mut self, scope: &str, expr: &Expr) -> Option<u32> {
        match &expr.kind {
            ExprKind::Var(name) => {
                let scope = self.var_scope(scope, name);
                Some(self.graph.node(NodeKey::Var {
                    scope,
                    name: name.clone(),
                }))
            }
            ExprKind::Field(base, _) | ExprKind::Index(base, _) => self.loc_node(scope, base),
            ExprKind::Deref(inner) => {
                let node = self.loc_node(scope, inner)?;
                Some(self.graph.pts(node))
            }
            // Pointer arithmetic stays within the array: same region.
            ExprKind::Binary(BinOp::Add | BinOp::Sub, lhs, _) => self.loc_node(scope, lhs),
            _ => None,
        }
    }

    fn var_scope(&self, scope: &str, name: &str) -> String {
        let is_local = self
            .level
            .method(scope)
            .map(|m| {
                m.params.iter().any(|p| p.name == name)
                    || m.body.as_ref().map(|b| declares(b, name)).unwrap_or(false)
            })
            .unwrap_or(false);
        if is_local {
            scope.to_string()
        } else {
            String::new()
        }
    }

    /// Processes `target := value` for points-to purposes.
    fn assign(&mut self, scope: &str, target: &Expr, value: &Expr) {
        let Some(lhs) = self.loc_node(scope, target) else {
            return;
        };
        self.assign_node(lhs, scope, value);
    }

    fn assign_expr(&mut self, lhs: u32, scope: &str, value: &Expr) {
        self.assign_node(lhs, scope, value);
    }

    fn assign_node(&mut self, lhs: u32, scope: &str, value: &Expr) {
        match &value.kind {
            // x := &y — y joins x's pointee region.
            ExprKind::AddrOf(inner) => {
                if let Some(target) = self.loc_node(scope, inner) {
                    let pts = self.graph.pts(lhs);
                    self.graph.unify(pts, target);
                }
            }
            // x := y (or y.f, y[i], *y, y±k) — unify pointees.
            ExprKind::Var(_)
            | ExprKind::Field(_, _)
            | ExprKind::Index(_, _)
            | ExprKind::Deref(_)
            | ExprKind::Binary(BinOp::Add | BinOp::Sub, _, _) => {
                if let Some(rhs) = self.loc_node(scope, value) {
                    let lp = self.graph.pts(lhs);
                    let rp = self.graph.pts(rhs);
                    self.graph.unify(lp, rp);
                }
            }
            _ => {}
        }
    }

    fn assign_rhs(&mut self, scope: &str, target: &Expr, value: &Rhs) {
        match value {
            Rhs::Expr(expr) => {
                // A method-call RHS binds the callee's return node.
                if let ExprKind::Call(name, args) = &expr.kind {
                    if self.level.method(name).is_some() {
                        self.call(scope, name, args);
                        if let Some(lhs) = self.loc_node(scope, target) {
                            let ret = self.graph.node(NodeKey::Return(name.clone()));
                            let lp = self.graph.pts(lhs);
                            let rp = self.graph.pts(ret);
                            self.graph.unify(lp, rp);
                        }
                        return;
                    }
                }
                self.assign(scope, target, expr);
            }
            Rhs::Malloc { .. } | Rhs::Calloc { .. } => {
                if let Some(lhs) = self.loc_node(scope, target) {
                    let site = self.alloc_counter;
                    self.alloc_counter += 1;
                    let alloc = self.graph.node(NodeKey::AllocSite(site));
                    let pts = self.graph.pts(lhs);
                    self.graph.unify(pts, alloc);
                }
            }
            Rhs::CreateThread { method, args, .. } => self.call(scope, method, args),
        }
    }

    /// Parameter binding behaves like assignments `param := arg`.
    fn call(&mut self, scope: &str, callee: &str, args: &[Expr]) {
        let params: Vec<String> = match self.level.method(callee) {
            Some(method) => method.params.iter().map(|p| p.name.clone()).collect(),
            None => return,
        };
        for (param, arg) in params.iter().zip(args) {
            let node = self.graph.node(NodeKey::Var {
                scope: callee.to_string(),
                name: param.clone(),
            });
            self.assign_node(node, scope, arg);
        }
    }

    fn block(&mut self, scope: &str, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(scope, stmt);
        }
    }

    fn stmt(&mut self, scope: &str, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::VarDecl {
                name,
                init: Some(init),
                ..
            } => {
                let target = Expr::synthetic(ExprKind::Var(name.clone()));
                self.assign_rhs(scope, &target, init);
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                for (target, value) in lhs.iter().zip(rhs) {
                    self.assign_rhs(scope, target, value);
                }
            }
            StmtKind::CallStmt { method, args } => self.call(scope, method, args),
            StmtKind::Return(Some(value)) => {
                let ret = self.graph.node(NodeKey::Return(scope.to_string()));
                self.assign_node(ret, scope, value);
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                self.block(scope, then_block);
                if let Some(els) = else_block {
                    self.block(scope, els);
                }
            }
            StmtKind::While { body, .. } => self.block(scope, body),
            StmtKind::Label(_, inner) => self.stmt(scope, inner),
            StmtKind::ExplicitYield(b) | StmtKind::Atomic(b) | StmtKind::Block(b) => {
                self.block(scope, b)
            }
            _ => {}
        }
    }
}

fn declares(block: &Block, name: &str) -> bool {
    block.stmts.iter().any(|stmt| match &stmt.kind {
        StmtKind::VarDecl { name: n, .. } => n == name,
        StmtKind::If {
            then_block,
            else_block,
            ..
        } => {
            declares(then_block, name)
                || else_block
                    .as_ref()
                    .map(|e| declares(e, name))
                    .unwrap_or(false)
        }
        StmtKind::While { body, .. } => declares(body, name),
        StmtKind::Label(_, inner) => matches!(&inner.kind, StmtKind::Block(b) if declares(b, name)),
        StmtKind::ExplicitYield(b) | StmtKind::Atomic(b) | StmtKind::Block(b) => declares(b, name),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use armada_lang::parse_module;

    fn analysis(src: &str) -> (armada_lang::Module, RegionAnalysis) {
        let module = parse_module(src).expect("parse");
        let analysis = RegionAnalysis::of_level(&module.levels[0]);
        (module, analysis)
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let (_, a) = analysis(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := malloc(uint32);
                    *p := 1;
                    *q := 2;
                }
            }"#,
        );
        assert!(!a.may_alias("main", "p", "main", "q"));
    }

    #[test]
    fn assignment_unifies_regions() {
        let (_, a) = analysis(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := malloc(uint32);
                    q := p;
                }
            }"#,
        );
        assert!(a.may_alias("main", "p", "main", "q"));
    }

    #[test]
    fn address_of_links_pointee() {
        let (_, a) = analysis(
            r#"level L {
                var g: uint32;
                var h: uint32;
                void main() {
                    var p: ptr<uint32> := &g;
                    var q: ptr<uint32> := &h;
                    var r: ptr<uint32> := &g;
                    *p := 1;
                }
            }"#,
        );
        assert!(!a.may_alias("main", "p", "main", "q"));
        assert!(a.may_alias("main", "p", "main", "r"));
    }

    #[test]
    fn parameters_unify_with_arguments() {
        let (_, a) = analysis(
            r#"level L {
                void callee(x: ptr<uint32>) { *x := 1; }
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := malloc(uint32);
                    callee(p);
                }
            }"#,
        );
        assert!(a.may_alias("main", "p", "callee", "x"));
        assert!(!a.may_alias("main", "q", "callee", "x"));
    }

    #[test]
    fn return_values_flow_back() {
        let (_, a) = analysis(
            r#"level L {
                method make() returns (r: ptr<uint32>) {
                    var p: ptr<uint32> := malloc(uint32);
                    return p;
                }
                void main() {
                    var q: ptr<uint32> := make();
                    *q := 1;
                }
            }"#,
        );
        assert!(a.may_alias("main", "q", "make", "p"));
    }

    #[test]
    fn pointer_arithmetic_stays_in_region() {
        let (_, a) = analysis(
            r#"level L {
                void main() {
                    var base: ptr<uint32> := calloc(uint32, 8);
                    var elem: ptr<uint32> := base + 3;
                    var other: ptr<uint32> := malloc(uint32);
                    *elem := 1;
                }
            }"#,
        );
        assert!(a.may_alias("main", "base", "main", "elem"));
        assert!(!a.may_alias("main", "elem", "main", "other"));
    }

    #[test]
    fn steensgaard_is_transitively_closed() {
        // Unification (unlike Andersen) merges both sides: after p := q and
        // p := r, q and r share a region even though neither was assigned
        // the other.
        let (_, a) = analysis(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := malloc(uint32);
                    var r: ptr<uint32> := malloc(uint32);
                    p := q;
                    p := r;
                }
            }"#,
        );
        assert!(a.may_alias("main", "q", "main", "r"));
    }

    #[test]
    fn globals_share_scope_across_methods() {
        let (_, a) = analysis(
            r#"level L {
                var shared: ptr<uint32>;
                void writer() { shared := malloc(uint32); }
                void main() {
                    var mine: ptr<uint32> := shared;
                    *mine := 1;
                }
            }"#,
        );
        assert!(a.may_alias("main", "mine", "", "shared"));
    }

    #[test]
    fn describe_scope_lists_pointer_regions() {
        let (module, a) = analysis(
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    *p := 1;
                }
            }"#,
        );
        let text = a.describe_scope(&module.levels[0], "main");
        assert!(text.contains("region(p) = R"));
        assert!(a.node_count() > 0);
    }
}

//! Dynamic soundness of the Steensgaard analysis, as seeded randomized
//! tests: for random straight-line pointer programs, whenever the analysis
//! says two pointers *cannot* alias, an abstract replay of the program
//! (mirroring the interpreter's allocation semantics) must end with them
//! pointing at different objects.

use armada_lang::{check_module, parse_module};
use armada_regions::RegionAnalysis;
use armada_runtime::prng::{run_seeded_cases, SplitMix64};
use armada_sm::{lower, run_to_completion, Bounds, Value};

/// A random pointer statement over variables p0..p{n}.
#[derive(Debug, Clone)]
enum PtrStmt {
    Malloc(usize),
    Copy { dst: usize, src: usize },
}

fn arb_program(rng: &mut SplitMix64, vars: usize, max_len: usize) -> Vec<PtrStmt> {
    let len = 1 + rng.index(max_len - 1);
    (0..len)
        .map(|_| {
            if rng.bool() {
                PtrStmt::Malloc(rng.index(vars))
            } else {
                PtrStmt::Copy {
                    dst: rng.index(vars),
                    src: rng.index(vars),
                }
            }
        })
        .collect()
}

fn render(statements: &[PtrStmt], vars: usize) -> String {
    let mut body = String::new();
    for v in 0..vars {
        body.push_str(&format!(
            "        var p{v}: ptr<uint32> := malloc(uint32);\n"
        ));
    }
    for statement in statements {
        match statement {
            PtrStmt::Malloc(v) => body.push_str(&format!("        p{v} := malloc(uint32);\n")),
            PtrStmt::Copy { dst, src } => body.push_str(&format!("        p{dst} := p{src};\n")),
        }
    }
    format!("level L {{\n    void main() {{\n{body}    }}\n}}\n")
}

#[test]
fn no_alias_verdicts_are_dynamically_true() {
    run_seeded_cases(0x4e90_0001, 128, |rng, case| {
        let vars = 4usize;
        let statements = arb_program(rng, vars, 12);
        let source = render(&statements, vars);
        let module = parse_module(&source).expect("generated source parses");
        let typed = check_module(&module).expect("generated source typechecks");
        let analysis = RegionAnalysis::of_level(&module.levels[0]);
        // The program must at least execute cleanly.
        let program = lower(&typed, "L").expect("lowers");
        run_to_completion(&program, &Bounds::small()).expect("runs");

        // Abstract replay with exact allocation identity.
        let mut concrete: Vec<u32> = (0..vars as u32).collect();
        let mut next = vars as u32;
        for statement in &statements {
            match statement {
                PtrStmt::Malloc(v) => {
                    concrete[*v] = next;
                    next += 1;
                }
                PtrStmt::Copy { dst, src } => concrete[*dst] = concrete[*src],
            }
        }
        for a in 0..vars {
            for b in (a + 1)..vars {
                let may_alias =
                    analysis.may_alias("main", &format!("p{a}"), "main", &format!("p{b}"));
                if !may_alias {
                    assert_ne!(
                        concrete[a], concrete[b],
                        "case {case}: analysis separated p{a} and p{b} but they alias \
                         dynamically\n{source}"
                    );
                }
            }
        }
    });
}

/// End-to-end agreement with the interpreter: writing through one pointer is
/// visible through another iff they (may) alias.
#[test]
fn separated_pointers_do_not_interfere() {
    for copy_first in [false, true] {
        let source = if copy_first {
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := p;
                    *p := 7;
                    var seen: uint32 := *q;
                    print(seen);
                }
            }"#
        } else {
            r#"level L {
                void main() {
                    var p: ptr<uint32> := malloc(uint32);
                    var q: ptr<uint32> := malloc(uint32);
                    *p := 7;
                    var seen: uint32 := *q;
                    print(seen);
                }
            }"#
        };
        let module = parse_module(source).expect("parse");
        let typed = check_module(&module).expect("typecheck");
        let analysis = RegionAnalysis::of_level(&module.levels[0]);
        let program = lower(&typed, "L").expect("lower");
        let final_state = run_to_completion(&program, &Bounds::small()).expect("run");
        let may_alias = analysis.may_alias("main", "p", "main", "q");
        assert_eq!(may_alias, copy_first);
        let expected = if copy_first { 7 } else { 0 };
        assert_eq!(&final_state.log, &vec![Value::MathInt(expected)]);
    }
}

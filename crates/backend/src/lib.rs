//! # armada-backend
//!
//! Code generation back ends for core Armada (level-0 implementations).
//!
//! The paper extends Dafny with a backend producing C compatible with
//! ClightTSO, compiled by CompCertTSO so the emitted x86 respects the
//! verified TSO semantics. We provide:
//!
//! * [`c_emit`] — a ClightTSO-flavored C emitter (textual; golden-tested),
//!   showing the shape of the paper's compilation path;
//! * [`rust_emit`] — the *executable* path used by the evaluation: Rust
//!   emission in two modes. [`RustMode::HwTso`] maps Armada's buffered
//!   stores to release stores and reads to acquire loads (free on x86 —
//!   the "compiled by GCC" analogue of Figure 12), while
//!   [`RustMode::Conservative`] uses sequentially consistent accesses with
//!   a trailing `mfence`-equivalent after every shared access, modeling
//!   CompCertTSO's unoptimized mapping.
//!
//! Emitted Rust for the Queue case study is checked into `armada-runtime`
//! (`generated.rs` / `generated_conservative.rs`); an integration test in
//! `armada-cases` asserts the emitter reproduces those files exactly, so
//! the benchmarked code is genuinely the backend's output.

pub mod c_emit;
pub mod rust_emit;

pub use c_emit::emit_c;
pub use rust_emit::{emit_rust, RustMode};

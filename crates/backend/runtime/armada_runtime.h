/* Runtime shim for C emitted by armada-backend (ClightTSO-flavored).
 *
 * The paper compiles emitted C with CompCertTSO against pthreads; this
 * header is the corresponding runtime surface. It is shipped for reference
 * and for compiling emitted code with a C toolchain outside this repo; the
 * Rust workspace itself exercises the executable Rust backend instead.
 */
#ifndef ARMADA_RUNTIME_H
#define ARMADA_RUNTIME_H

#include <pthread.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

/* Threads are identified by opaque 64-bit handles, as in the Armada
 * semantics (create_thread evaluates to a uint64). */
typedef struct {
    pthread_t tid;
    void (*entry)(uint64_t);
    uint64_t arg;
} armada_thread_t;

static void *armada_thread_trampoline(void *raw) {
    armada_thread_t *t = (armada_thread_t *)raw;
    t->entry(t->arg);
    return NULL;
}

/* create_thread m(arg): one uint64 argument covers the emitted patterns;
 * zero-argument routines pass 0. */
static inline uint64_t armada_thread_create(void (*entry)(uint64_t),
                                            uint64_t arg) {
    armada_thread_t *t = (armada_thread_t *)malloc(sizeof(armada_thread_t));
    t->entry = entry;
    t->arg = arg;
    pthread_create(&t->tid, NULL, armada_thread_trampoline, t);
    return (uint64_t)(uintptr_t)t;
}

static inline void armada_thread_join(uint64_t handle) {
    armada_thread_t *t = (armada_thread_t *)(uintptr_t)handle;
    pthread_join(t->tid, NULL);
    free(t);
}

/* print(e): the observable event log of the semantics. */
static inline void armada_print_u64(uint64_t value) {
    printf("%llu\n", (unsigned long long)value);
}

/* assert e: a false predicate crashes the program (§3.1.2). */
static inline void armada_assert(int condition) {
    if (!condition) {
        fprintf(stderr, "armada: assertion failed\n");
        abort();
    }
}

#endif /* ARMADA_RUNTIME_H */

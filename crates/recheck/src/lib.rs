//! Independent replay checker for refinement certificates.
//!
//! The engine in `crates/verify` explores a product state space and, on
//! success, emits a [`Witness`]: the simulation relation as interned
//! canonical state pairs (low-state fingerprint, match-set digest), one
//! chained obligation hash per product edge binding the low micro-steps and
//! the commuted symmetry renamings, and the truncation point. This crate is
//! the matching *trusted core* in the Foundational-VeriFast sense: a small,
//! separately compiled checker that validates a certificate in O(witness)
//! — never re-exploring — so a warm cache hit or a served verdict carries a
//! proof instead of a checksum.
//!
//! Independence posture:
//!
//! * This crate depends on `armada-lang` and `armada-sm` only — the parser
//!   and the spec *semantics* (step function, canonicalizer, fingerprints).
//!   It never links the exploration engine (`armada-verify`), whose search,
//!   subsumption, and match-set machinery are exactly the code a witness
//!   exists to double-check.
//! * The record parser here is written independently of the store's
//!   serializer (`armada-verify/src/store.rs`). The duplication is the
//!   point: a parser bug in the tool cannot hide from the checker.
//! * The *hash definitions* ([`subject_digest`], [`pair_digest`],
//!   [`obligation_hash`], [`Witness::compute_digest`]) live here and are
//!   reused by the emitter, so tool and checker agree on the format by
//!   construction while the checker owns its meaning.
//!
//! What `recheck` does and does not establish (see DESIGN.md,
//! "Certificates and recheck"):
//!
//! * **Validated against the semantics** (with `--source`): the low-side
//!   product tree is real — every obligation's recorded micro-steps are
//!   enabled, step by step, from its parent's canonical state under
//!   `armada-sm`'s transition relation, the canonicalized successor's
//!   fingerprint matches the recorded pair, and the composed symmetry
//!   renamings match the recorded ones.
//! * **Validated structurally** (always): the subject binding, the
//!   obligation hash chain, the witness digest, and every count
//!   cross-check (pairs = product nodes, micro-steps sum to the low
//!   transition count).
//! * **Attested, not replayed**: the high-side match sets enter each pair
//!   as a digest over member-state fingerprints. Re-deciding the relation
//!   would *be* re-exploration; the digests bind what the engine claimed,
//!   they do not re-establish it.

use std::fmt;

use armada_sm::codec::{self, Dec, Enc};
use armada_sm::{initial_state, lower, try_step, Canonicalizer, Program, StateArena, Step, Tid};

/// FNV-1a, 64-bit, as an explicit incremental hasher so chained digests
/// have one unambiguous byte-level definition shared by emitter and
/// checker.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    pub fn new() -> Fnv {
        Fnv::default()
    }

    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Fnv {
        self.bytes(&v.to_le_bytes())
    }

    pub fn str(&mut self, s: &str) -> &mut Fnv {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    Fnv::new().bytes(bytes).finish()
}

/// Binds a witness to its subject: the whole module source plus the level
/// pair. A witness spliced from a different module — or the same module's
/// other recipe — fails this binding.
pub fn subject_digest(module_source: &str, low: &str, high: &str) -> u64 {
    Fnv::new()
        .str("armada-subject v2")
        .str(module_source)
        .str(low)
        .str(high)
        .finish()
}

/// Digest of one simulation pair: the canonical low state's fingerprint
/// and the digest of its matched high-state set.
pub fn pair_digest(low_fp: u64, set_digest: u64) -> u64 {
    Fnv::new().u64(low_fp).u64(set_digest).finish()
}

/// Digest of a match set, over its member states' content fingerprints in
/// sorted order. Sorting is what makes the digest identical at any job
/// count: interned state *ids* depend on exploration interleaving,
/// fingerprints do not.
pub fn set_digest(member_fps_sorted: &[u64]) -> u64 {
    let mut h = Fnv::new();
    h.u64(member_fps_sorted.len() as u64);
    for &fp in member_fps_sorted {
        h.u64(fp);
    }
    h.finish()
}

/// Digest of a canonical→original tid renaming (empty = identity).
pub fn renaming_digest(map: &[Tid]) -> u64 {
    let mut h = Fnv::new();
    h.u64(map.len() as u64);
    for &t in map {
        h.u64(t as u64);
    }
    h.finish()
}

/// Seed of the obligation hash chain. Deliberately independent of the
/// subject digest so a certificate can be emitted by the engine (which
/// does not know the module source) and bound to its subject afterwards.
pub fn chain_seed() -> u64 {
    fnv1a_64(b"armada-witness v2")
}

/// One link of the obligation chain: the previous hash, both pair digests,
/// the micro-step count, the digest of the encoded low steps, and the
/// digest of the commuted symmetry renaming.
pub fn obligation_hash(
    prev: u64,
    parent_digest: u64,
    child_digest: u64,
    micro: u32,
    steps_digest: u64,
    renaming: &[Tid],
) -> u64 {
    Fnv::new()
        .u64(prev)
        .u64(parent_digest)
        .u64(child_digest)
        .u64(micro as u64)
        .u64(steps_digest)
        .u64(renaming_digest(renaming))
        .finish()
}

/// One simulation pair: a canonical low product state and the attested
/// digest of its matched high states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessPair {
    /// Content fingerprint of the canonical low state.
    pub low_fp: u64,
    /// [`set_digest`] of the matched high states.
    pub set_digest: u64,
}

/// One proof obligation: the product edge that admitted pair `index + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Pair index of the edge's source node (the child is implicit: pair
    /// `index + 1`, in admission order).
    pub parent: u32,
    /// Micro-steps on this (possibly fused) edge.
    pub micro: u32,
    /// The child pair's canonical→original tid map (empty = identity);
    /// the commuted symmetry renaming, validated during replay.
    pub renaming: Vec<Tid>,
    /// The low micro-steps, codec-encoded, in the *parent's canonical
    /// coordinates* — exactly what [`replay`] feeds the step function.
    pub steps_enc: Vec<u8>,
    /// FNV-1a digest of `steps_enc`.
    pub steps_digest: u64,
    /// Chained [`obligation_hash`] up to and including this link.
    pub hash: u64,
}

/// The machine-checkable refinement witness carried by a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// [`subject_digest`] binding; 0 until [`Witness::bind_subject`].
    pub subject: u64,
    /// False when the search stopped early (budget/deadline); the engine
    /// only certifies complete runs today, but the format records the
    /// truncation point so a partial witness is never mistaken for a
    /// finished one.
    pub complete: bool,
    /// Wave count at the truncation point.
    pub waves: u64,
    /// Maximum micro-depth over all pairs.
    pub max_depth: u64,
    /// Whether symmetry canonicalization was configured; replay mirrors
    /// the engine's gate (flag AND the program's own observability gate).
    pub symmetry: bool,
    /// The store-buffer bound the steps were enumerated under.
    pub max_buffer: u64,
    /// Canonical→original tid map of the initial pair (empty = identity).
    pub root_renaming: Vec<Tid>,
    /// Simulation pairs, in node-admission order (index 0 is the root).
    pub pairs: Vec<WitnessPair>,
    /// One obligation per non-root pair, in admission order.
    pub obligations: Vec<Obligation>,
    /// [`Witness::compute_digest`] over everything above.
    pub digest: u64,
}

impl Witness {
    /// The digest the `digest` field must equal.
    pub fn compute_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.str("armada-witness-digest v2")
            .u64(self.subject)
            .u64(self.complete as u64)
            .u64(self.waves)
            .u64(self.max_depth)
            .u64(self.symmetry as u64)
            .u64(self.max_buffer)
            .u64(renaming_digest(&self.root_renaming))
            .u64(self.pairs.len() as u64);
        for pair in &self.pairs {
            h.u64(pair_digest(pair.low_fp, pair.set_digest));
        }
        h.u64(self.obligations.len() as u64);
        h.u64(self.obligations.last().map_or(chain_seed(), |o| o.hash));
        h.finish()
    }

    /// Binds the witness to its subject and reseals the digest. The
    /// obligation chain is subject-independent by design, so late binding
    /// (the pipeline knows the module source; the engine does not) changes
    /// only the binding and the digest.
    pub fn bind_subject(&mut self, subject: u64) {
        self.subject = subject;
        self.digest = self.compute_digest();
    }

    /// A sealed witness attesting nothing: zero pairs, zero obligations.
    /// Only consistent with a certificate claiming zero product nodes
    /// (strategy-only placeholder certs).
    pub fn empty() -> Witness {
        let mut w = Witness {
            subject: 0,
            complete: true,
            waves: 0,
            max_depth: 0,
            symmetry: false,
            max_buffer: 0,
            root_renaming: Vec::new(),
            pairs: Vec::new(),
            obligations: Vec::new(),
            digest: 0,
        };
        w.digest = w.compute_digest();
        w
    }

    /// Structural validation: subject binding (when expected), digest,
    /// count cross-checks against the certificate's claimed totals, and
    /// the full obligation hash chain. O(witness); no semantics.
    ///
    /// # Errors
    ///
    /// The first failing check, naming the failing obligation where one is
    /// at fault.
    pub fn validate(
        &self,
        product_nodes: usize,
        low_transitions: usize,
        expected_subject: Option<u64>,
    ) -> Result<(), RecheckError> {
        if let Some(want) = expected_subject {
            if self.subject != want {
                return Err(RecheckError::SubjectMismatch {
                    want,
                    got: self.subject,
                });
            }
        }
        if self.digest != self.compute_digest() {
            return Err(RecheckError::DigestMismatch {
                want: self.compute_digest(),
                got: self.digest,
            });
        }
        if self.pairs.len() != product_nodes {
            return Err(RecheckError::PairCount {
                pairs: self.pairs.len(),
                product_nodes,
            });
        }
        if self.obligations.len() != self.pairs.len().saturating_sub(1) {
            return Err(RecheckError::ObligationCount {
                obligations: self.obligations.len(),
                pairs: self.pairs.len(),
            });
        }
        // The certificate's transition count covers *every* explored micro
        // edge, including successors the antichain subsumed; the witness
        // records only the admitted simulation tree. So the sum bounds the
        // claim from below — a witness claiming more edges than the check
        // counted is forged.
        let micro_sum: u64 = self.obligations.iter().map(|o| o.micro as u64).sum();
        if micro_sum > low_transitions as u64 {
            return Err(RecheckError::TransitionCount {
                sum: micro_sum,
                low_transitions,
            });
        }
        let mut chain = chain_seed();
        for (index, obl) in self.obligations.iter().enumerate() {
            let child = index + 1;
            let fail = |reason: String| RecheckError::Obligation { index, reason };
            if obl.parent as usize > index {
                return Err(fail(format!(
                    "parent {} is not an earlier pair than child {child}",
                    obl.parent
                )));
            }
            if obl.micro == 0 {
                return Err(fail("zero micro-steps".to_string()));
            }
            if obl.steps_digest != fnv1a_64(&obl.steps_enc) {
                return Err(fail(
                    "step digest does not cover the recorded steps".to_string(),
                ));
            }
            let steps = decode_steps(&obl.steps_enc)
                .map_err(|e| fail(format!("undecodable steps: {e}")))?;
            if steps.len() != obl.micro as usize {
                return Err(fail(format!(
                    "micro count {} disagrees with {} recorded steps",
                    obl.micro,
                    steps.len()
                )));
            }
            chain = obligation_hash(
                chain,
                pair_digest(
                    self.pairs[obl.parent as usize].low_fp,
                    self.pairs[obl.parent as usize].set_digest,
                ),
                pair_digest(self.pairs[child].low_fp, self.pairs[child].set_digest),
                obl.micro,
                obl.steps_digest,
                &obl.renaming,
            );
            if chain != obl.hash {
                return Err(RecheckError::ObligationHash {
                    index,
                    want: chain,
                    got: obl.hash,
                });
            }
        }
        Ok(())
    }
}

/// Incremental witness construction in node-admission order; used by the
/// emitter (and by tests that need small valid witnesses). The chain and
/// digests are computed here so an emitted witness validates by
/// construction.
#[derive(Debug)]
pub struct WitnessBuilder {
    symmetry: bool,
    max_buffer: u64,
    root_renaming: Vec<Tid>,
    pairs: Vec<WitnessPair>,
    obligations: Vec<Obligation>,
    chain: u64,
}

impl WitnessBuilder {
    /// Starts a witness whose root pair is `(root_fp, root_set)` reached
    /// under `root_renaming` (empty = identity).
    pub fn new(
        symmetry: bool,
        max_buffer: u64,
        root_renaming: Vec<Tid>,
        root_fp: u64,
        root_set: u64,
    ) -> WitnessBuilder {
        WitnessBuilder {
            symmetry,
            max_buffer,
            root_renaming,
            pairs: vec![WitnessPair {
                low_fp: root_fp,
                set_digest: root_set,
            }],
            obligations: Vec::new(),
            chain: chain_seed(),
        }
    }

    /// Admits the next pair via an edge from `parent`; `steps_enc` is the
    /// codec encoding of the edge's micro-steps in the parent's canonical
    /// coordinates.
    pub fn push_node(
        &mut self,
        parent: u32,
        low_fp: u64,
        set: u64,
        steps_enc: Vec<u8>,
        micro: u32,
        renaming: Vec<Tid>,
    ) {
        let child = self.pairs.len();
        self.pairs.push(WitnessPair {
            low_fp,
            set_digest: set,
        });
        let steps_digest = fnv1a_64(&steps_enc);
        let parent_pair = self.pairs[parent as usize];
        self.chain = obligation_hash(
            self.chain,
            pair_digest(parent_pair.low_fp, parent_pair.set_digest),
            pair_digest(self.pairs[child].low_fp, self.pairs[child].set_digest),
            micro,
            steps_digest,
            &renaming,
        );
        self.obligations.push(Obligation {
            parent,
            micro,
            renaming,
            steps_enc,
            steps_digest,
            hash: self.chain,
        });
    }

    /// Seals the witness (unbound; see [`Witness::bind_subject`]).
    pub fn seal(self, complete: bool, waves: u64, max_depth: u64) -> Witness {
        let mut w = Witness {
            subject: 0,
            complete,
            waves,
            max_depth,
            symmetry: self.symmetry,
            max_buffer: self.max_buffer,
            root_renaming: self.root_renaming,
            pairs: self.pairs,
            obligations: self.obligations,
            digest: 0,
        };
        w.digest = w.compute_digest();
        w
    }
}

/// Why a certificate was rejected. Every variant names what failed —
/// obligation-level failures carry the obligation's index — so a rejection
/// is actionable without re-running anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecheckError {
    /// The record text could not be parsed (line number and reason).
    Parse { line: usize, reason: String },
    /// The record's trailing checksum does not cover its payload.
    Checksum { want: u64, got: u64 },
    /// The witness is bound to a different subject (spliced certificate).
    SubjectMismatch { want: u64, got: u64 },
    /// The sealed witness digest does not cover the witness contents.
    DigestMismatch { want: u64, got: u64 },
    /// Pair count disagrees with the certificate's product-node count.
    PairCount { pairs: usize, product_nodes: usize },
    /// Obligation count disagrees with the pair count.
    ObligationCount { obligations: usize, pairs: usize },
    /// Micro-step sum exceeds the certificate's transition count.
    TransitionCount { sum: u64, low_transitions: usize },
    /// Obligation `index` is malformed (reason says how).
    Obligation { index: usize, reason: String },
    /// Obligation `index`'s chained hash does not recompute.
    ObligationHash { index: usize, want: u64, got: u64 },
    /// The module source does not produce the witnessed initial pair.
    Root { reason: String },
    /// The module source could not be parsed/checked/lowered for replay.
    Subject { reason: String },
}

impl fmt::Display for RecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecheckError::Parse { line, reason } => {
                write!(f, "record line {line}: {reason}")
            }
            RecheckError::Checksum { want, got } => {
                write!(
                    f,
                    "record checksum {got:016x} does not match payload {want:016x}"
                )
            }
            RecheckError::SubjectMismatch { want, got } => {
                write!(
                    f,
                    "witness subject {got:016x} is not this subject {want:016x}"
                )
            }
            RecheckError::DigestMismatch { want, got } => {
                write!(
                    f,
                    "witness digest {got:016x} does not recompute ({want:016x})"
                )
            }
            RecheckError::PairCount {
                pairs,
                product_nodes,
            } => write!(
                f,
                "{pairs} simulation pairs for a certificate claiming {product_nodes} product nodes"
            ),
            RecheckError::ObligationCount { obligations, pairs } => write!(
                f,
                "{obligations} obligations cannot justify {pairs} pairs (want pairs - 1)"
            ),
            RecheckError::TransitionCount {
                sum,
                low_transitions,
            } => write!(
                f,
                "obligation micro-steps sum to {sum}, certificate only counted {low_transitions}"
            ),
            RecheckError::Obligation { index, reason } => {
                write!(f, "obligation {index}: {reason}")
            }
            RecheckError::ObligationHash { index, want, got } => write!(
                f,
                "obligation {index}: chained hash {got:016x} does not recompute ({want:016x})"
            ),
            RecheckError::Root { reason } => write!(f, "initial pair: {reason}"),
            RecheckError::Subject { reason } => write!(f, "subject: {reason}"),
        }
    }
}

/// A parsed certificate record: the claimed verdict plus its witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRecord {
    pub low: String,
    pub high: String,
    pub product_nodes: usize,
    pub low_transitions: usize,
    pub witness: Witness,
}

/// Magic first line this checker accepts (format v2; v1 records predate
/// witnesses and are rejected as unparseable).
pub const RECORD_MAGIC: &str = "armada-cert v2";

fn parse_err(line: usize, reason: impl Into<String>) -> RecheckError {
    RecheckError::Parse {
        line,
        reason: reason.into(),
    }
}

fn parse_hex64(line: usize, text: &str, what: &str) -> Result<u64, RecheckError> {
    u64::from_str_radix(text, 16).map_err(|_| parse_err(line, format!("bad {what} `{text}`")))
}

fn parse_renaming(line: usize, text: &str) -> Result<Vec<Tid>, RecheckError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| {
            t.parse::<Tid>()
                .map_err(|_| parse_err(line, format!("bad renaming entry `{t}`")))
        })
        .collect()
}

fn renaming_text(map: &[Tid]) -> String {
    if map.is_empty() {
        "-".to_string()
    } else {
        map.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn hex_of(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_to_bytes(line: usize, text: &str) -> Result<Vec<u8>, RecheckError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    if text.len() % 2 != 0 {
        return Err(parse_err(line, "odd-length step encoding"));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| parse_err(line, "non-hex step encoding"))
        })
        .collect()
}

/// Renders the witness section exactly as the store serializes it; shared
/// so emitter-side serialization and this crate's tests cannot drift.
pub fn witness_lines(w: &Witness) -> String {
    let mut out = String::new();
    out.push_str(&format!("witness subject {:016x}\n", w.subject));
    out.push_str(&format!(
        "witness status {} waves {} depth {} symmetry {} buffer {}\n",
        if w.complete { "complete" } else { "truncated" },
        w.waves,
        w.max_depth,
        w.symmetry as u8,
        w.max_buffer
    ));
    out.push_str(&format!(
        "witness root {}\n",
        renaming_text(&w.root_renaming)
    ));
    out.push_str(&format!("witness pairs {}\n", w.pairs.len()));
    for pair in &w.pairs {
        out.push_str(&format!(
            "pair {:016x} {:016x}\n",
            pair.low_fp, pair.set_digest
        ));
    }
    out.push_str(&format!("witness obligations {}\n", w.obligations.len()));
    for obl in &w.obligations {
        out.push_str(&format!(
            "obl {} {} {} {:016x} {:016x} {}\n",
            obl.parent,
            obl.micro,
            renaming_text(&obl.renaming),
            obl.steps_digest,
            obl.hash,
            if obl.steps_enc.is_empty() {
                "-".to_string()
            } else {
                hex_of(&obl.steps_enc)
            }
        ));
    }
    out.push_str(&format!("witness digest {:016x}\n", w.digest));
    out
}

/// Parses a full certificate record, validating the trailing checksum.
/// This parser is deliberately independent of the store's (see the module
/// docs).
///
/// # Errors
///
/// [`RecheckError::Parse`] naming the first offending line, or
/// [`RecheckError::Checksum`].
pub fn parse_record(text: &str) -> Result<CertRecord, RecheckError> {
    let rest = text
        .strip_suffix('\n')
        .ok_or_else(|| parse_err(0, "record does not end in a newline"))?;
    let (payload_text, checksum_line) = rest
        .rsplit_once('\n')
        .ok_or_else(|| parse_err(0, "record has no checksum line"))?;
    let payload_text = format!("{payload_text}\n");
    let stored = checksum_line
        .strip_prefix("checksum ")
        .ok_or_else(|| parse_err(0, "record has no checksum line"))?;
    let stored = parse_hex64(0, stored, "checksum")?;
    let computed = fnv1a_64(payload_text.as_bytes());
    if stored != computed {
        return Err(RecheckError::Checksum {
            want: computed,
            got: stored,
        });
    }

    let mut lines = payload_text.lines().enumerate().peekable();
    let mut next = |want: &str| -> Result<(usize, String), RecheckError> {
        let (i, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, format!("record ends before `{want}`")))?;
        let line_no = i + 1;
        let rest = line
            .strip_prefix(want)
            .ok_or_else(|| parse_err(line_no, format!("expected `{want}…`, got `{line}`")))?;
        Ok((line_no, rest.to_string()))
    };

    let (ln, magic_rest) = next("")?;
    if magic_rest != RECORD_MAGIC {
        return Err(parse_err(ln, format!("bad magic `{magic_rest}`")));
    }
    let (_, low) = next("low ")?;
    let (_, high) = next("high ")?;
    let (ln, pn) = next("product_nodes ")?;
    let product_nodes: usize = pn
        .parse()
        .map_err(|_| parse_err(ln, format!("bad product_nodes `{pn}`")))?;
    let (ln, lt) = next("low_transitions ")?;
    let low_transitions: usize = lt
        .parse()
        .map_err(|_| parse_err(ln, format!("bad low_transitions `{lt}`")))?;
    let (ln, subject) = next("witness subject ")?;
    let subject = parse_hex64(ln, &subject, "subject")?;
    let (ln, status) = next("witness status ")?;
    let words: Vec<&str> = status.split(' ').collect();
    let [state, "waves", waves, "depth", depth, "symmetry", symmetry, "buffer", buffer] =
        words.as_slice()
    else {
        return Err(parse_err(ln, format!("bad status line `{status}`")));
    };
    let complete = match *state {
        "complete" => true,
        "truncated" => false,
        other => return Err(parse_err(ln, format!("bad status `{other}`"))),
    };
    let waves: u64 = waves.parse().map_err(|_| parse_err(ln, "bad wave count"))?;
    let max_depth: u64 = depth.parse().map_err(|_| parse_err(ln, "bad depth"))?;
    let symmetry = match *symmetry {
        "0" => false,
        "1" => true,
        _ => return Err(parse_err(ln, "bad symmetry flag")),
    };
    let max_buffer: u64 = buffer
        .parse()
        .map_err(|_| parse_err(ln, "bad buffer bound"))?;
    let (ln, root) = next("witness root ")?;
    let root_renaming = parse_renaming(ln, &root)?;
    let (ln, count) = next("witness pairs ")?;
    let pair_count: usize = count.parse().map_err(|_| parse_err(ln, "bad pair count"))?;
    let mut pairs = Vec::with_capacity(pair_count);
    for _ in 0..pair_count {
        let (ln, pair) = next("pair ")?;
        let (fp, set) = pair
            .split_once(' ')
            .ok_or_else(|| parse_err(ln, "pair line wants two digests"))?;
        pairs.push(WitnessPair {
            low_fp: parse_hex64(ln, fp, "low fingerprint")?,
            set_digest: parse_hex64(ln, set, "set digest")?,
        });
    }
    let (ln, count) = next("witness obligations ")?;
    let obl_count: usize = count
        .parse()
        .map_err(|_| parse_err(ln, "bad obligation count"))?;
    let mut obligations = Vec::with_capacity(obl_count);
    for _ in 0..obl_count {
        let (ln, obl) = next("obl ")?;
        let fields: Vec<&str> = obl.split(' ').collect();
        let [parent, micro, renaming, steps_digest, hash, steps] = fields.as_slice() else {
            return Err(parse_err(ln, "obligation line wants six fields"));
        };
        obligations.push(Obligation {
            parent: parent
                .parse()
                .map_err(|_| parse_err(ln, "bad parent index"))?,
            micro: micro
                .parse()
                .map_err(|_| parse_err(ln, "bad micro count"))?,
            renaming: parse_renaming(ln, renaming)?,
            steps_digest: parse_hex64(ln, steps_digest, "step digest")?,
            hash: parse_hex64(ln, hash, "obligation hash")?,
            steps_enc: hex_to_bytes(ln, steps)?,
        });
    }
    let (ln, digest) = next("witness digest ")?;
    let digest = parse_hex64(ln, &digest, "witness digest")?;
    if let Some((i, line)) = lines.next() {
        return Err(parse_err(i + 1, format!("trailing line `{line}`")));
    }
    Ok(CertRecord {
        low,
        high,
        product_nodes,
        low_transitions,
        witness: Witness {
            subject,
            complete,
            waves,
            max_depth,
            symmetry,
            max_buffer,
            root_renaming,
            pairs,
            obligations,
            digest,
        },
    })
}

/// Encodes an edge's micro-steps for the witness record.
pub fn encode_steps(steps: &[Step]) -> Vec<u8> {
    let mut e = Enc::new();
    e.len_of(steps.len());
    for step in steps {
        codec::enc_step(&mut e, step);
    }
    e.into_bytes()
}

/// Decodes an edge's micro-steps.
///
/// # Errors
///
/// A message describing the malformation.
pub fn decode_steps(bytes: &[u8]) -> Result<Vec<Step>, String> {
    let mut d = Dec::new(bytes);
    let count = d.len_of().map_err(|e| e.to_string())?;
    if count > bytes.len() {
        return Err(format!("step count {count} exceeds encoding size"));
    }
    let mut steps = Vec::with_capacity(count);
    for _ in 0..count {
        steps.push(codec::dec_step(&mut d).map_err(|e| e.to_string())?);
    }
    if !d.at_end() {
        return Err("trailing bytes after steps".to_string());
    }
    Ok(steps)
}

/// Composes a parent's canonical→original tid map with one more inverse
/// renaming (the checker's copy of the engine's composition — duplicated
/// on purpose, see the module docs). `None`/empty encodes the identity.
fn compose_renaming(parent: &[Tid], inverse: Option<Vec<Tid>>, thread_count: usize) -> Vec<Tid> {
    if parent.is_empty() && inverse.is_none() {
        return Vec::new();
    }
    let mut map = Vec::with_capacity(thread_count);
    for canonical in 1..=thread_count as Tid {
        let pre = match &inverse {
            Some(inv) => inv
                .get(canonical as usize - 1)
                .copied()
                .unwrap_or(canonical),
            None => canonical,
        };
        let original = if parent.is_empty() {
            pre
        } else {
            parent.get(pre as usize - 1).copied().unwrap_or(pre)
        };
        map.push(original);
    }
    if map.iter().enumerate().all(|(i, &t)| t == i as Tid + 1) {
        Vec::new()
    } else {
        map
    }
}

/// Replays the witness's low-side product tree against the spec semantics:
/// every obligation's recorded steps must be enabled from its parent's
/// canonical state, and the canonicalized successor must have the recorded
/// fingerprint and renaming. O(witness) — each edge is replayed exactly
/// once; nothing is searched.
///
/// # Errors
///
/// The first failing obligation (or the root pair).
pub fn replay(witness: &Witness, low: &Program) -> Result<(), RecheckError> {
    if witness.pairs.is_empty() {
        // An empty witness attests nothing; structural validation has
        // already required product_nodes == 0.
        return Ok(());
    }
    let init = initial_state(low).map_err(|e| RecheckError::Root {
        reason: format!("initial state: {e}"),
    })?;
    let canonicalizer = Canonicalizer::new(low);
    let canon = (witness.symmetry && canonicalizer.enabled()).then_some(&canonicalizer);
    let (init, init_inverse) = match canon {
        Some(c) => c.canonicalize(init),
        None => (init, None),
    };
    let root_renaming = compose_renaming(&[], init_inverse, init.threads.len());
    if root_renaming != witness.root_renaming {
        return Err(RecheckError::Root {
            reason: format!(
                "root renaming `{}` does not replay (`{}`)",
                renaming_text(&witness.root_renaming),
                renaming_text(&root_renaming)
            ),
        });
    }
    let init_fp = StateArena::fingerprint(&init);
    if init_fp != witness.pairs[0].low_fp {
        return Err(RecheckError::Root {
            reason: format!(
                "initial state fingerprint {init_fp:016x} is not the witnessed {:016x}",
                witness.pairs[0].low_fp
            ),
        });
    }
    let max_buffer = witness.max_buffer as usize;
    let mut states = Vec::with_capacity(witness.pairs.len());
    states.push(init);
    for (index, obl) in witness.obligations.iter().enumerate() {
        let child = index + 1;
        let fail = |reason: String| RecheckError::Obligation { index, reason };
        let steps =
            decode_steps(&obl.steps_enc).map_err(|e| fail(format!("undecodable steps: {e}")))?;
        let mut state = states[obl.parent as usize].clone();
        for (k, step) in steps.iter().enumerate() {
            state = try_step(low, &state, step, max_buffer).ok_or_else(|| {
                fail(format!(
                    "micro-step {k} (t{}) is not enabled in the parent's state",
                    step.tid
                ))
            })?;
        }
        let (state, inverse) = match canon {
            Some(c) => c.canonicalize(state),
            None => (state, None),
        };
        let parent_renaming: &[Tid] = if obl.parent == 0 {
            &witness.root_renaming
        } else {
            &witness.obligations[obl.parent as usize - 1].renaming
        };
        let renaming = compose_renaming(parent_renaming, inverse, state.threads.len());
        if renaming != obl.renaming {
            return Err(fail(format!(
                "renaming `{}` does not replay (`{}`)",
                renaming_text(&obl.renaming),
                renaming_text(&renaming)
            )));
        }
        let fp = StateArena::fingerprint(&state);
        if fp != witness.pairs[child].low_fp {
            return Err(fail(format!(
                "replayed state fingerprint {fp:016x} is not the witnessed {:016x}",
                witness.pairs[child].low_fp
            )));
        }
        states.push(state);
    }
    Ok(())
}

/// Summary of one successful recheck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecheckReport {
    pub pairs: usize,
    pub obligations: usize,
    /// True when the low-side tree was replayed against the semantics
    /// (a module source was supplied), not just structurally validated.
    pub replayed: bool,
}

/// Rechecks one serialized certificate record: parse, checksum, structural
/// validation, and — when `source` is supplied — subject binding plus full
/// semantic replay of the low-side tree.
///
/// # Errors
///
/// The first failing check, as a [`RecheckError`].
pub fn recheck_record(text: &str, source: Option<&str>) -> Result<RecheckReport, RecheckError> {
    let record = parse_record(text)?;
    let expected = source.map(|s| subject_digest(s, &record.low, &record.high));
    record
        .witness
        .validate(record.product_nodes, record.low_transitions, expected)?;
    if let Some(source) = source {
        let module = armada_lang::parse_module(source).map_err(|e| RecheckError::Subject {
            reason: format!("parse: {e}"),
        })?;
        let typed = armada_lang::check_module(&module).map_err(|e| RecheckError::Subject {
            reason: format!("typecheck: {e}"),
        })?;
        let low = lower(&typed, &record.low).map_err(|e| RecheckError::Subject {
            reason: format!("lower `{}`: {e}", record.low),
        })?;
        replay(&record.witness, &low)?;
    }
    Ok(RecheckReport {
        pairs: record.witness.pairs.len(),
        obligations: record.witness.obligations.len(),
        replayed: source.is_some(),
    })
}

/// The `armada-recheck` / `armada recheck` command-line driver. Returns
/// the process exit code: 0 every certificate rechecks, 1 any certificate
/// is rejected, 2 usage or IO trouble.
pub fn run_cli(args: &[String]) -> u8 {
    let mut source_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--source" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("armada-recheck: --source wants a module path");
                    return 2;
                };
                source_path = Some(path.clone());
            }
            arg if arg.starts_with("--source=") => {
                source_path = Some(arg["--source=".len()..].to_string());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            arg if arg.starts_with('-') => {
                eprintln!("armada-recheck: unknown flag `{arg}`\n{USAGE}");
                return 2;
            }
            path => targets.push(path.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!("armada-recheck: no certificate files or directories given\n{USAGE}");
        return 2;
    }
    let source = match &source_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("armada-recheck: reading {path}: {e}");
                return 2;
            }
        },
        None => None,
    };
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for target in &targets {
        let path = std::path::PathBuf::from(target);
        if path.is_dir() {
            let entries = match std::fs::read_dir(&path) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("armada-recheck: reading {target}: {e}");
                    return 2;
                }
            };
            let mut certs: Vec<_> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "cert"))
                .collect();
            certs.sort();
            files.extend(certs);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        eprintln!("armada-recheck: no .cert records under the given paths");
        return 2;
    }
    let mut rejected = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("armada-recheck: reading {}: {e}", file.display());
                return 2;
            }
        };
        match recheck_record(&text, source.as_deref()) {
            Ok(report) => println!(
                "{}: ok ({} pairs, {} obligations{})",
                file.display(),
                report.pairs,
                report.obligations,
                if report.replayed { ", replayed" } else { "" }
            ),
            Err(e) => {
                rejected = true;
                println!("{}: REJECTED: {e}", file.display());
            }
        }
    }
    u8::from(rejected)
}

const USAGE: &str = "usage: armada-recheck [--source <module.arm>] <cert-file-or-dir>...\n\
    \n\
    Validates refinement certificates independently of the verifier:\n\
    checksum, subject binding, obligation hash chain, and (with --source)\n\
    a full semantic replay of the witnessed low-side product tree.\n\
    Exit 0: all certificates recheck. 1: a certificate was rejected.\n\
    2: usage or IO trouble.";

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_witness() -> Witness {
        // Two pairs, one obligation: a hand-built chain (no semantics).
        let step = Step::instr(1);
        let enc = encode_steps(std::slice::from_ref(&step));
        let mut b = WitnessBuilder::new(false, 8, Vec::new(), 0x1111, 0x2222);
        b.push_node(0, 0x3333, 0x4444, enc, 1, Vec::new());
        let mut w = b.seal(true, 2, 1);
        w.bind_subject(subject_digest("module", "A", "B"));
        w
    }

    #[test]
    fn builder_output_validates_structurally() {
        let w = tiny_witness();
        w.validate(2, 1, Some(subject_digest("module", "A", "B")))
            .expect("clean witness validates");
        assert_eq!(
            w.validate(2, 1, Some(subject_digest("module", "A", "C"))),
            Err(RecheckError::SubjectMismatch {
                want: subject_digest("module", "A", "C"),
                got: w.subject,
            })
        );
    }

    #[test]
    fn count_mismatches_are_named() {
        let w = tiny_witness();
        assert!(matches!(
            w.validate(3, 1, None),
            Err(RecheckError::PairCount {
                pairs: 2,
                product_nodes: 3
            })
        ));
        assert!(matches!(
            w.validate(2, 0, None),
            Err(RecheckError::TransitionCount {
                sum: 1,
                low_transitions: 0
            })
        ));
    }

    #[test]
    fn a_flipped_obligation_hash_is_caught_and_named() {
        let mut w = tiny_witness();
        w.obligations[0].hash ^= 1;
        // The digest covers the final chain hash, so reseal to isolate the
        // chain check.
        w.digest = w.compute_digest();
        assert!(matches!(
            w.validate(2, 1, None),
            Err(RecheckError::ObligationHash { index: 0, .. })
        ));
    }

    #[test]
    fn digest_covers_every_field() {
        let base = tiny_witness();
        let mut variants = vec![base.clone()];
        variants[0].complete = false;
        let mut v = base.clone();
        v.waves += 1;
        variants.push(v);
        let mut v = base.clone();
        v.pairs[0].low_fp ^= 1;
        variants.push(v);
        let mut v = base.clone();
        v.root_renaming = vec![2, 1];
        variants.push(v);
        for v in variants {
            assert!(matches!(
                v.validate(2, 1, None),
                Err(RecheckError::DigestMismatch { .. })
            ));
        }
    }

    #[test]
    fn record_round_trips_through_the_independent_parser() {
        let w = tiny_witness();
        let payload = format!(
            "{RECORD_MAGIC}\nlow A\nhigh B\nproduct_nodes 2\nlow_transitions 1\n{}",
            witness_lines(&w)
        );
        let checksum = fnv1a_64(payload.as_bytes());
        let text = format!("{payload}checksum {checksum:016x}\n");
        let record = parse_record(&text).expect("parses");
        assert_eq!(record.low, "A");
        assert_eq!(record.high, "B");
        assert_eq!(record.product_nodes, 2);
        assert_eq!(record.witness, w);
        recheck_record(&text, None).expect("structurally valid");
        // Any single-byte damage is rejected (checksum or field checks).
        let mut damaged = text.clone().into_bytes();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x04;
        if let Ok(damaged) = String::from_utf8(damaged) {
            assert!(recheck_record(&damaged, None).is_err());
        }
    }

    #[test]
    fn steps_round_trip_through_the_codec() {
        let steps = vec![Step::instr(1), Step::drain(2)];
        let enc = encode_steps(&steps);
        assert_eq!(decode_steps(&enc).expect("decodes"), steps);
        assert!(decode_steps(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn semantic_replay_accepts_a_real_run_and_rejects_a_forged_fingerprint() {
        // A one-thread program with a deterministic two-step run; the
        // witness is built by hand from the semantics, as the engine would.
        let source = r#"
            level A {
                var x: uint32;
                void main() { x := 1; x := 2; }
            }
            level B {
                var x: uint32;
                void main() { x := 1; x := 2; }
            }
            proof P { refinement A B weakening }
        "#;
        let module = armada_lang::parse_module(source).expect("parses");
        let typed = armada_lang::check_module(&module).expect("typechecks");
        let low = lower(&typed, "A").expect("lowers");
        let init = initial_state(&low).expect("initial state");
        let fp0 = StateArena::fingerprint(&init);
        let steps = armada_sm::enabled_steps(&low, &init, &[], 8);
        assert!(!steps.is_empty());
        let (step, next) = steps.into_iter().next().expect("one enabled step");
        let fp1 = StateArena::fingerprint(&next);
        let mut b = WitnessBuilder::new(false, 8, Vec::new(), fp0, 0xd1d1);
        b.push_node(
            0,
            fp1,
            0xd2d2,
            encode_steps(std::slice::from_ref(&step)),
            1,
            Vec::new(),
        );
        let w = b.seal(true, 2, 1);
        replay(&w, &low).expect("real run replays");

        let mut forged = w.clone();
        forged.pairs[1].low_fp ^= 1;
        forged.digest = forged.compute_digest();
        assert!(matches!(
            replay(&forged, &low),
            Err(RecheckError::Obligation { index: 0, .. })
        ));

        let mut bad_root = w;
        bad_root.pairs[0].low_fp ^= 1;
        bad_root.digest = bad_root.compute_digest();
        assert!(matches!(
            replay(&bad_root, &low),
            Err(RecheckError::Root { .. })
        ));
    }
}

//! Standalone certificate checker; `armada recheck` delegates here so a
//! client can audit cached verdicts without linking the verifier.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(armada_recheck::run_cli(&args) as i32);
}

//! Integration tests for the §3.2.3 undefined-behavior story through the
//! refinement checker, and custom refinement relations.

use armada_lang::ast::{PredicateSource, RelationKind};
use armada_lang::{check_module, parse_module};
use armada_proof::relation::StandardRelation;
use armada_sm::lower;
use armada_verify::{check_refinement, SimConfig};

fn pair(src: &str, low: &str, high: &str) -> (armada_sm::Program, armada_sm::Program) {
    let module = parse_module(src).unwrap();
    let typed = check_module(&module).unwrap();
    (lower(&typed, low).unwrap(), lower(&typed, high).unwrap())
}

#[test]
fn low_ub_requires_high_ub() {
    // The implementation dereferences freed memory; the "spec" does not.
    // Per §3.2.3's conjunct, the refinement must fail — otherwise proofs
    // about UB programs would be vacuous.
    let (low, high) = pair(
        r#"
        level A {
            void main() {
                var p: ptr<uint32> := malloc(uint32);
                dealloc p;
                *p := 1;
            }
        }
        level B {
            void main() {
                var p: ptr<uint32> := malloc(uint32);
                dealloc p;
                print(0);
            }
        }
        "#,
        "A",
        "B",
    );
    let relation = StandardRelation::log_prefix();
    let err = check_refinement(&low, &high, &relation, &SimConfig::default()).unwrap_err();
    assert!(err.description.contains("no high-level behavior"));
}

#[test]
fn matching_ub_is_fine() {
    let (low, high) = pair(
        r#"
        level A {
            void main() {
                var p: ptr<uint32> := malloc(uint32);
                dealloc p;
                *p := 1;
            }
        }
        level B {
            void main() {
                var p: ptr<uint32> := malloc(uint32);
                dealloc p;
                *p := 2;
            }
        }
        "#,
        "A",
        "B",
    );
    let relation = StandardRelation::log_prefix();
    check_refinement(&low, &high, &relation, &SimConfig::default()).unwrap();
}

#[test]
fn assert_failures_must_be_matched() {
    let (low, high) = pair(
        r#"
        level A { void main() { assert false; } }
        level B { void main() { print(1); } }
        "#,
        "A",
        "B",
    );
    let relation = StandardRelation::log_prefix();
    assert!(check_refinement(&low, &high, &relation, &SimConfig::default()).is_err());
    // …and a spec that may crash covers a crashing implementation.
    let (low, high) = pair(
        r#"
        level A { void main() { assert false; } }
        level B { void main() { assert false; } }
        "#,
        "A",
        "B",
    );
    check_refinement(&low, &high, &relation, &SimConfig::default()).unwrap();
}

#[test]
fn custom_relation_changes_the_verdict() {
    // Under log-prefix, printing different values fails; under a custom
    // relation comparing only log lengths, it verifies.
    let (low, high) = pair(
        r#"
        level A { void main() { print(1); } }
        level B { void main() { print(2); } }
        "#,
        "A",
        "B",
    );
    let strict = StandardRelation::log_prefix();
    assert!(check_refinement(&low, &high, &strict, &SimConfig::default()).is_err());

    let text = "len(low_log) <= len(high_log)";
    let custom = StandardRelation::new(RelationKind::Custom(PredicateSource {
        text: text.to_string(),
        expr: armada_lang::parse_expr(text).unwrap(),
    }));
    check_refinement(&low, &high, &custom, &SimConfig::default()).unwrap();
}

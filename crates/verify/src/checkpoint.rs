//! Wave-boundary checkpointing for the refinement search.
//!
//! Like [`armada_sm::checkpoint`] for exploration, a product-search wave
//! boundary is a complete description of progress — but the product state
//! is richer: the node table (low state, match-set id, parent edge with
//! its rendered descriptions and machine steps, tid renaming), the
//! interned match sets, the memoized *high-level* arena prefix (match-set
//! ids index into it, so its interning order must survive a restart), the
//! depth-bucketed pending queue, and the transition counter. The antichain
//! seen-set and the set-intern table are *derived* — every entry
//! corresponds to an admitted node in id order — so they are rebuilt from
//! the node table on resume rather than persisted.
//!
//! Storage is log-structured with the same crash discipline as the
//! exploration checkpoint: three append-only logs (`nodes.log`,
//! `high.log`, `sets.log`; one checksummed record per item) appended and
//! synced *before* the small `manifest.bin` is atomically rewritten
//! ([`codec::write_atomic`]). A crash leaves either the old manifest
//! (whose log prefixes are intact; torn tails are truncated on resume) or
//! the new one. Any defect — torn manifest, bad record checksum, guard
//! mismatch, dangling index — clears the directory and the search starts
//! cold, which is always sound.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use armada_sm::codec::{self, Dec, Enc};
use armada_sm::{ProgState, StateArena, StateId, Tid};

use crate::{MatchSet, Node};

const MANIFEST: &str = "manifest.bin";
const NODES_LOG: &str = "nodes.log";
const HIGH_LOG: &str = "high.log";
const SETS_LOG: &str = "sets.log";

/// Everything a resumed search needs to continue at a wave boundary.
pub(crate) struct ResumeState {
    /// The product-node table, in admission order.
    pub nodes: Vec<Node>,
    /// Interned match sets by id (dense, admission order).
    pub sets: Vec<MatchSet>,
    /// High-level states in their original interning order.
    pub high_states: Vec<ProgState>,
    /// Pending node ids, bucketed by micro-depth.
    pub pending: BTreeMap<usize, Vec<usize>>,
    pub low_transitions: usize,
    pub wave_index: usize,
}

/// One append-only log with per-record checksums and a manifest-tracked
/// valid prefix.
struct Log {
    path: PathBuf,
    /// Records already appended.
    saved: usize,
    /// Valid byte length.
    bytes: u64,
}

impl Log {
    fn new(path: PathBuf) -> Log {
        Log {
            path,
            saved: 0,
            bytes: 0,
        }
    }

    /// Appends pre-encoded records (each wrapped as `bytes + fnv`) and
    /// syncs. Panics on I/O failure, like the exploration checkpoint: a
    /// checkpoint directory that stops accepting writes is an operator
    /// problem, and a silently stale checkpoint is worse than a crash.
    fn append(&mut self, records: &[Vec<u8>]) {
        if records.is_empty() {
            return;
        }
        let mut enc = Enc::new();
        for record in records {
            enc.bytes(record);
            enc.u64(codec::fnv1a_64(record));
        }
        let chunk = enc.into_bytes();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .unwrap_or_else(|err| panic!("checkpoint: opening {}: {err}", self.path.display()));
        file.write_all(&chunk)
            .and_then(|()| file.sync_all())
            .unwrap_or_else(|err| panic!("checkpoint: appending {}: {err}", self.path.display()));
        self.saved += records.len();
        self.bytes += chunk.len() as u64;
    }

    /// Reads and verifies the first `count` records of the `bytes`-long
    /// valid prefix.
    fn read(&mut self, count: usize, bytes: u64) -> Option<Vec<Vec<u8>>> {
        let raw = if count == 0 {
            Vec::new()
        } else {
            fs::read(&self.path).ok()?
        };
        if (raw.len() as u64) < bytes {
            return None;
        }
        let mut d = Dec::new(&raw[..bytes as usize]);
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let record = d.bytes().ok()?;
            let checksum = d.u64().ok()?;
            if codec::fnv1a_64(&record) != checksum {
                return None;
            }
            records.push(record);
        }
        if !d.at_end() {
            return None;
        }
        self.saved = count;
        self.bytes = bytes;
        Some(records)
    }

    /// Drops any torn tail past the valid prefix so future appends extend
    /// clean bytes.
    fn truncate_to_valid(&self) {
        if let Ok(file) = fs::OpenOptions::new().write(true).open(&self.path) {
            let _ = file.set_len(self.bytes);
        }
    }

    fn clear(&mut self) {
        let _ = fs::remove_file(&self.path);
        self.saved = 0;
        self.bytes = 0;
    }
}

/// The refinement-search checkpoint writer/loader for one check.
pub(crate) struct VerifyCheckpoint {
    dir: PathBuf,
    guard: u64,
    nodes: Log,
    high: Log,
    sets: Log,
}

impl VerifyCheckpoint {
    pub fn new(dir: PathBuf, guard: u64) -> std::io::Result<VerifyCheckpoint> {
        fs::create_dir_all(&dir)?;
        Ok(VerifyCheckpoint {
            guard,
            nodes: Log::new(dir.join(NODES_LOG)),
            high: Log::new(dir.join(HIGH_LOG)),
            sets: Log::new(dir.join(SETS_LOG)),
            dir,
        })
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    /// Attempts to load a checkpoint left by a previous run; any defect
    /// clears the directory for a cold start.
    pub fn try_resume(&mut self) -> Option<ResumeState> {
        match self.load() {
            Some(state) => {
                self.nodes.truncate_to_valid();
                self.high.truncate_to_valid();
                self.sets.truncate_to_valid();
                Some(state)
            }
            None => {
                self.clear();
                None
            }
        }
    }

    fn load(&mut self) -> Option<ResumeState> {
        let payload = codec::read_verified(&self.manifest_path()).ok()?;
        let mut d = Dec::new(&payload);
        if d.u64().ok()? != self.guard {
            return None;
        }
        let node_count = d.len_of().ok()?;
        let nodes_bytes = d.u64().ok()?;
        let high_count = d.len_of().ok()?;
        let high_bytes = d.u64().ok()?;
        let set_count = d.len_of().ok()?;
        let sets_bytes = d.u64().ok()?;
        let bucket_count = d.len_of().ok()?;
        let mut pending: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for _ in 0..bucket_count {
            let depth = d.len_of().ok()?;
            let n = d.len_of().ok()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let id = d.len_of().ok()?;
                if id >= node_count {
                    return None;
                }
                ids.push(id);
            }
            pending.insert(depth, ids);
        }
        let low_transitions = d.len_of().ok()?;
        let wave_index = d.len_of().ok()?;
        if !d.at_end() {
            return None;
        }

        let high_records = self.high.read(high_count, high_bytes)?;
        let mut high_states = Vec::with_capacity(high_count);
        for record in &high_records {
            high_states.push(codec::state_from_bytes(record).ok()?);
        }

        let set_records = self.sets.read(set_count, sets_bytes)?;
        let mut sets: Vec<MatchSet> = Vec::with_capacity(set_count);
        for record in &set_records {
            let mut d = Dec::new(record);
            let n = d.len_of().ok()?;
            let mut set = BTreeSet::new();
            for _ in 0..n {
                let id = d.u32().ok()?;
                if id as usize >= high_count {
                    return None;
                }
                set.insert(id);
            }
            if !d.at_end() {
                return None;
            }
            sets.push(Arc::new(set));
        }

        let node_records = self.nodes.read(node_count, nodes_bytes)?;
        let mut nodes: Vec<Node> = Vec::with_capacity(node_count);
        for (i, record) in node_records.iter().enumerate() {
            let mut d = Dec::new(record);
            let state = codec::state_from_bytes(&d.bytes().ok()?).ok()?;
            let set_id = d.u32().ok()?;
            if set_id as usize >= set_count {
                return None;
            }
            let depth = d.len_of().ok()?;
            let parent = match d.u8().ok()? {
                0 => None,
                1 => {
                    let parent = d.len_of().ok()?;
                    // Parents precede children in admission order.
                    if parent >= i {
                        return None;
                    }
                    let n = d.len_of().ok()?;
                    let mut descs = Vec::with_capacity(n);
                    for _ in 0..n {
                        descs.push(d.str().ok()?);
                    }
                    Some((parent, descs))
                }
                _ => return None,
            };
            let n = d.len_of().ok()?;
            let mut edge_steps = Vec::with_capacity(n);
            for _ in 0..n {
                edge_steps.push(codec::dec_step(&mut d).ok()?);
            }
            let orig = match d.u8().ok()? {
                0 => None,
                1 => {
                    let n = d.len_of().ok()?;
                    let mut map: Vec<Tid> = Vec::with_capacity(n);
                    for _ in 0..n {
                        map.push(d.u64().ok()?);
                    }
                    Some(Arc::new(map))
                }
                _ => return None,
            };
            if !d.at_end() {
                return None;
            }
            nodes.push(Node {
                low: Arc::new(state),
                set_id,
                matches: Arc::clone(&sets[set_id as usize]),
                depth,
                parent,
                edge_steps,
                orig,
            });
        }

        Some(ResumeState {
            nodes,
            sets,
            high_states,
            pending,
            low_transitions,
            wave_index,
        })
    }

    /// Removes all checkpoint files (cold start, or cleanup after a
    /// definitive verdict).
    pub fn clear(&mut self) {
        let _ = fs::remove_file(self.manifest_path());
        self.nodes.clear();
        self.high.clear();
        self.sets.clear();
    }

    /// Persists the wave boundary: appends new nodes, high states, and
    /// match sets to their logs, syncs them, then atomically rewrites the
    /// manifest. `high_arena` access is faulting (`&mut`) because the high
    /// side may itself be spilled.
    pub fn save(
        &mut self,
        nodes: &[Node],
        set_intern: &HashMap<MatchSet, u32>,
        high_arena: &mut StateArena,
        pending: &BTreeMap<usize, Vec<usize>>,
        low_transitions: usize,
        wave_index: usize,
    ) {
        let mut records = Vec::new();
        for node in &nodes[self.nodes.saved..] {
            let mut e = Enc::new();
            e.bytes(&codec::state_to_bytes(&node.low));
            e.u32(node.set_id);
            e.len_of(node.depth);
            match &node.parent {
                None => e.u8(0),
                Some((parent, descs)) => {
                    e.u8(1);
                    e.len_of(*parent);
                    e.len_of(descs.len());
                    for desc in descs {
                        e.str(desc);
                    }
                }
            }
            e.len_of(node.edge_steps.len());
            for step in &node.edge_steps {
                codec::enc_step(&mut e, step);
            }
            match &node.orig {
                None => e.u8(0),
                Some(map) => {
                    e.u8(1);
                    e.len_of(map.len());
                    for tid in map.iter() {
                        e.u64(*tid);
                    }
                }
            }
            records.push(e.into_bytes());
        }
        self.nodes.append(&records);

        let mut records = Vec::new();
        for id in self.high.saved..high_arena.len() {
            let state = high_arena.get_arc_mut(StateId(id as u32));
            records.push(codec::state_to_bytes(&state));
        }
        self.high.append(&records);

        // Sets in id order: the intern map is keyed by set, so invert it
        // for the new dense suffix.
        let mut by_id: Vec<Option<&MatchSet>> = vec![None; set_intern.len()];
        for (set, &id) in set_intern {
            by_id[id as usize] = Some(set);
        }
        let mut records = Vec::new();
        for slot in &by_id[self.sets.saved..] {
            let set = slot.expect("set ids are dense");
            let mut e = Enc::new();
            e.len_of(set.len());
            for id in set.iter() {
                e.u32(*id);
            }
            records.push(e.into_bytes());
        }
        self.sets.append(&records);

        let mut e = Enc::new();
        e.u64(self.guard);
        e.len_of(self.nodes.saved);
        e.u64(self.nodes.bytes);
        e.len_of(self.high.saved);
        e.u64(self.high.bytes);
        e.len_of(self.sets.saved);
        e.u64(self.sets.bytes);
        e.len_of(pending.len());
        for (depth, ids) in pending {
            e.len_of(*depth);
            e.len_of(ids.len());
            for id in ids {
                e.len_of(*id);
            }
        }
        e.len_of(low_transitions);
        e.len_of(wave_index);
        codec::write_atomic(&self.manifest_path(), &e.into_bytes())
            .unwrap_or_else(|err| panic!("checkpoint: writing manifest: {err}"));
    }
}

//! A memory → disk certificate cache hierarchy.
//!
//! `armada serve` keeps one shared in-memory certificate tier in front of
//! the crash-safe disk store ([`crate::store`]): tier 1 answers repeat
//! requests without touching the filesystem, tier 2 survives restarts. The
//! same trust posture applies at both tiers — **a load either returns
//! exactly what a completed save wrote, or nothing** — so tier-1 entries
//! keep their *serialized, checksummed* record form and are re-validated on
//! every fetch, exactly like a disk read. A record that fails validation in
//! memory is evicted and audited, never served, and the lookup falls
//! through to tier 2 (whose own validation then applies); a tier-2 hit is
//! promoted into tier 1 only after it validated.
//!
//! Eviction is least-recently-used over a bounded entry count. All counters
//! (`mem_hits`, `disk_hits`, `misses`, `evictions`, promotion and
//! corruption audits) surface through the runtime telemetry layer's
//! [`CounterSet`], so the serve daemon's `--telemetry` output reports cache
//! behavior alongside the stage histograms.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use armada_runtime::CounterSet;

use crate::store::{deserialize, serialize, CertKey, CertStore, StoreShim};
use crate::RefinementCert;

/// One tier-1 entry: the serialized record (checksum line included) plus
/// the LRU clock tick of its last touch.
struct MemEntry {
    record: String,
    last_used: u64,
}

/// The shared in-memory tier: a bounded LRU map of serialized certificate
/// records. Interior mutability so one tier can sit behind an `Arc` and
/// serve every concurrent request of a daemon.
#[derive(Debug)]
pub struct MemTier {
    entries: Mutex<MemTierMap>,
    capacity: usize,
    mem_hits: AtomicU64,
    mem_corrupt: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
}

#[derive(Default)]
struct MemTierMap {
    map: HashMap<u64, MemEntry>,
    clock: u64,
}

impl std::fmt::Debug for MemTierMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemTierMap({} entries)", self.map.len())
    }
}

impl MemTier {
    /// A tier holding at most `capacity` records (0 clamps to 1).
    pub fn with_capacity(capacity: usize) -> Arc<MemTier> {
        Arc::new(MemTier {
            entries: Mutex::new(MemTierMap::default()),
            capacity: capacity.max(1),
            mem_hits: AtomicU64::new(0),
            mem_corrupt: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        })
    }

    fn key_of(key: &CertKey) -> u64 {
        armada_runtime::fnv1a_64(key.as_hex().as_bytes())
    }

    /// Fetches and re-validates the record under `key` for the pair
    /// `low ⊑ high`. A checksum-invalid or mismatched entry is evicted and
    /// counted, never returned.
    fn fetch(&self, key: &CertKey, low: &str, high: &str) -> Option<RefinementCert> {
        let k = Self::key_of(key);
        let mut inner = self.entries.lock().expect("mem tier lock");
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(&k)?;
        entry.last_used = clock;
        let record = entry.record.clone();
        match deserialize(&record, true).filter(|c| c.low == low && c.high == high) {
            Some(cert) => {
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                Some(cert)
            }
            None => {
                // In-memory rot (or a fuzz fate poking the tier): evict the
                // lying entry so the next lookup goes to disk.
                inner.map.remove(&k);
                self.mem_corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs a validated serialized record under `key`, evicting the
    /// least-recently-used entry when over capacity.
    fn install(&self, key: &CertKey, record: String, promoted: bool) {
        let k = Self::key_of(key);
        let mut inner = self.entries.lock().expect("mem tier lock");
        inner.clock += 1;
        let clock = inner.clock;
        let fresh = inner
            .map
            .insert(
                k,
                MemEntry {
                    record,
                    last_used: clock,
                },
            )
            .is_none();
        if fresh && promoted {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
        while inner.map.len() > self.capacity {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Test-and-fuzz hook: overwrite the stored record bytes under `key`
    /// (models in-memory rot; the next fetch must evict, audit, and fall
    /// through to disk).
    pub fn corrupt_entry(&self, key: &CertKey) -> bool {
        let k = Self::key_of(key);
        let mut inner = self.entries.lock().expect("mem tier lock");
        match inner.map.get_mut(&k) {
            Some(entry) => {
                entry.record = entry.record.replace("product_nodes", "product_n0des");
                true
            }
            None => false,
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("mem tier lock").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("mem tier lock").map.clear();
    }
}

/// A two-tier certificate store: an optional shared [`MemTier`] in front of
/// an optional disk [`CertStore`]. Both absent is a store that always
/// misses; the pipeline treats every configuration uniformly.
#[derive(Debug, Clone)]
pub struct TieredStore {
    mem: Option<Arc<MemTier>>,
    disk: Option<CertStore>,
    misses: Arc<AtomicU64>,
    disk_hits: Arc<AtomicU64>,
}

impl TieredStore {
    /// Disk-only: the classic `--cert-cache` configuration.
    pub fn disk(store: CertStore) -> TieredStore {
        TieredStore {
            mem: None,
            disk: Some(store),
            misses: Arc::new(AtomicU64::new(0)),
            disk_hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Memory-only: a daemon without a persistent tier.
    pub fn mem_only(mem: Arc<MemTier>) -> TieredStore {
        TieredStore {
            mem: Some(mem),
            disk: None,
            misses: Arc::new(AtomicU64::new(0)),
            disk_hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The same store with `mem` as tier 1.
    pub fn with_mem(mut self, mem: Arc<MemTier>) -> TieredStore {
        self.mem = Some(mem);
        self
    }

    /// The disk tier, when present.
    pub fn disk_store(&self) -> Option<&CertStore> {
        self.disk.as_ref()
    }

    /// The memory tier, when present.
    pub fn mem_tier(&self) -> Option<&Arc<MemTier>> {
        self.mem.as_ref()
    }

    /// The disk tier's fault-shim configuration (defaults when there is no
    /// disk tier).
    pub fn shim(&self) -> StoreShim {
        self.disk.as_ref().map(|d| d.shim()).unwrap_or_default()
    }

    /// The same store with `shim`'s IO faults applied to the disk tier
    /// (fuzzing only; the memory tier has its own corruption hook).
    pub fn with_faults(mut self, shim: StoreShim) -> TieredStore {
        self.disk = self.disk.map(|d| d.with_faults(shim));
        self
    }

    /// Tier-aware load: memory first (validated), then disk (validated by
    /// [`CertStore::load`]), promoting disk hits into memory. `None` is a
    /// plain miss at both tiers.
    pub fn load(&self, key: &CertKey, low: &str, high: &str) -> Option<RefinementCert> {
        if let Some(mem) = &self.mem {
            if let Some(cert) = mem.fetch(key, low, high) {
                return Some(cert);
            }
        }
        if let Some(disk) = &self.disk {
            if let Some(cert) = disk.load(key, low, high) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(mem) = &self.mem {
                    // Checksum-verified promotion: re-serialize the record
                    // that just validated, so tier 1 holds the same
                    // self-checking form tier 2 does.
                    mem.install(key, serialize(&cert), true);
                }
                return Some(cert);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Write-through save: the disk tier gets the atomic rename write, the
    /// memory tier gets the serialized record. A disk IO error does not
    /// poison the memory tier (the cert is valid either way), but is still
    /// reported to the caller.
    pub fn save(&self, key: &CertKey, cert: &RefinementCert) -> io::Result<()> {
        if let Some(mem) = &self.mem {
            // Note: the *unshimmed* serialization. Write faults model disk
            // sectors; the memory tier is damaged only via its own hook.
            mem.install(key, serialize(cert), false);
        }
        match &self.disk {
            Some(disk) => disk.save(key, cert),
            None => Ok(()),
        }
    }

    /// Corrupt loads audited across both tiers (disk rejections plus
    /// in-memory evict-on-validate events).
    pub fn corrupt_loads(&self) -> u64 {
        let disk = self.disk.as_ref().map_or(0, |d| d.corrupt_loads());
        let mem = self
            .mem
            .as_ref()
            .map_or(0, |m| m.mem_corrupt.load(Ordering::Relaxed));
        disk + mem
    }

    /// The hierarchy's counters, for the telemetry layer.
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        if let Some(mem) = &self.mem {
            set.add("cache.mem_hits", mem.mem_hits.load(Ordering::Relaxed));
            set.add("cache.mem_corrupt", mem.mem_corrupt.load(Ordering::Relaxed));
            set.add("cache.evictions", mem.evictions.load(Ordering::Relaxed));
            set.add("cache.promotions", mem.promotions.load(Ordering::Relaxed));
            set.add("cache.resident", mem.len() as u64);
        }
        set.add("cache.disk_hits", self.disk_hits.load(Ordering::Relaxed));
        set.add("cache.misses", self.misses.load(Ordering::Relaxed));
        if let Some(disk) = &self.disk {
            set.add("cache.disk_corrupt", disk.corrupt_loads());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    fn scratch(tag: &str) -> CertStore {
        let root = std::env::temp_dir().join(format!("armada-tier-{tag}-{}", std::process::id()));
        let store = CertStore::open(root);
        store.clear().expect("clean scratch");
        store
    }

    fn cert(n: usize) -> RefinementCert {
        // A structurally valid linear witness (one micro-step per edge) so
        // validating loads and promotions accept the record.
        let witness = if n == 0 {
            armada_recheck::Witness::empty()
        } else {
            let step = armada_recheck::encode_steps(&[armada_sm::Step::instr(1)]);
            let mut b = armada_recheck::WitnessBuilder::new(
                false,
                8,
                Vec::new(),
                0x1000 + n as u64,
                0x2000,
            );
            for i in 1..n {
                b.push_node(
                    (i - 1) as u32,
                    0x1000 + (n + i) as u64,
                    0x2000,
                    step.clone(),
                    1,
                    Vec::new(),
                );
            }
            b.seal(true, n as u64, n.saturating_sub(1) as u64)
        };
        RefinementCert {
            low: "Impl".into(),
            high: "Spec".into(),
            product_nodes: n,
            low_transitions: n.saturating_sub(1),
            witness,
        }
    }

    fn key(n: usize) -> CertKey {
        CertKey::compute(
            &format!("module {n}"),
            "Impl",
            "Spec",
            &SimConfig::default(),
        )
    }

    #[test]
    fn memory_tier_fronts_disk_and_promotes_validated_hits() {
        let disk = scratch("promote");
        let mem = MemTier::with_capacity(8);
        let tiered = TieredStore::disk(disk.clone()).with_mem(mem.clone());

        // Cold: miss at both tiers.
        assert_eq!(tiered.load(&key(1), "Impl", "Spec"), None);
        assert_eq!(tiered.counters().get("cache.misses"), 1);

        // Save writes through; the next load is a memory hit.
        tiered.save(&key(1), &cert(1)).expect("save");
        assert_eq!(tiered.load(&key(1), "Impl", "Spec"), Some(cert(1)));
        assert_eq!(tiered.counters().get("cache.mem_hits"), 1);
        assert_eq!(tiered.counters().get("cache.disk_hits"), 0);

        // A fresh memory tier over the same disk: the first load is a disk
        // hit that promotes, the second a memory hit.
        let fresh = TieredStore::disk(disk).with_mem(MemTier::with_capacity(8));
        assert_eq!(fresh.load(&key(1), "Impl", "Spec"), Some(cert(1)));
        assert_eq!(fresh.counters().get("cache.disk_hits"), 1);
        assert_eq!(fresh.counters().get("cache.promotions"), 1);
        assert_eq!(fresh.load(&key(1), "Impl", "Spec"), Some(cert(1)));
        assert_eq!(fresh.counters().get("cache.mem_hits"), 1);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let mem = MemTier::with_capacity(2);
        let tiered = TieredStore::mem_only(mem.clone());
        tiered.save(&key(1), &cert(1)).expect("save");
        tiered.save(&key(2), &cert(2)).expect("save");
        // Touch key 1 so key 2 is the LRU victim.
        assert!(tiered.load(&key(1), "Impl", "Spec").is_some());
        tiered.save(&key(3), &cert(3)).expect("save");
        assert_eq!(mem.len(), 2);
        assert_eq!(tiered.counters().get("cache.evictions"), 1);
        assert!(tiered.load(&key(1), "Impl", "Spec").is_some(), "kept");
        assert!(tiered.load(&key(3), "Impl", "Spec").is_some(), "kept");
        assert_eq!(tiered.load(&key(2), "Impl", "Spec"), None, "evicted");
    }

    #[test]
    fn corrupt_memory_entries_are_evicted_and_fall_through_to_disk() {
        let disk = scratch("mem_rot");
        let mem = MemTier::with_capacity(8);
        let tiered = TieredStore::disk(disk).with_mem(mem.clone());
        tiered.save(&key(1), &cert(1)).expect("save");
        assert!(mem.corrupt_entry(&key(1)), "entry resident");
        // The rotted record is never served: evicted, audited, and the
        // disk copy (still pristine) answers and re-promotes.
        assert_eq!(tiered.load(&key(1), "Impl", "Spec"), Some(cert(1)));
        assert_eq!(tiered.counters().get("cache.mem_corrupt"), 1);
        assert_eq!(tiered.counters().get("cache.disk_hits"), 1);
        assert!(tiered.corrupt_loads() >= 1);
        // Re-promoted: memory hit again.
        assert_eq!(tiered.load(&key(1), "Impl", "Spec"), Some(cert(1)));
        assert_eq!(tiered.counters().get("cache.mem_hits"), 1);
    }

    #[test]
    fn mem_only_and_disk_only_configurations_behave() {
        let mem_only = TieredStore::mem_only(MemTier::with_capacity(4));
        assert_eq!(mem_only.load(&key(1), "Impl", "Spec"), None);
        mem_only.save(&key(1), &cert(1)).expect("save");
        assert_eq!(mem_only.load(&key(1), "Impl", "Spec"), Some(cert(1)));

        let disk_only = TieredStore::disk(scratch("disk_only"));
        disk_only.save(&key(2), &cert(2)).expect("save");
        assert_eq!(disk_only.load(&key(2), "Impl", "Spec"), Some(cert(2)));
        assert_eq!(disk_only.counters().get("cache.disk_hits"), 1);
    }
}

//! Crash-safe, content-addressed persistence of [`RefinementCert`]s.
//!
//! Re-verifying a level pair whose program text and bounds have not changed
//! is pure waste, so the pipeline can persist each successful certificate
//! under `target/armada-certs/` and reuse it on the next run (the ROADMAP's
//! cert-cache item). Because a cache that silently serves stale or mangled
//! entries would *unsoundly* skip verification, the store is built around
//! one invariant — **a load either returns exactly what a completed save
//! wrote, or nothing** — and the pipeline treats "nothing" as a plain cache
//! miss and recomputes. Foundational VeriFast (PAPERS.md) takes the same
//! posture: cached verification results are only trustworthy if they are
//! re-validated cheaply on load.
//!
//! Mechanics:
//!
//! * **Content addressing.** [`CertKey::compute`] hashes the whole module
//!   source, the level pair, and every result-affecting bound (`jobs` and
//!   the wall-clock deadline are deliberately excluded — they change
//!   wall-clock behavior, never results). Any edit to the program or the
//!   bounds changes the key, so stale certs are simply never addressed.
//! * **Atomic writes.** [`CertStore::save`] writes a temp file in the same
//!   directory and `rename`s it into place, so a crash mid-write leaves
//!   either the old entry or a stray `.tmp` — never a half-written `.cert`
//!   at the addressed path.
//! * **Checksummed records.** The record embeds an FNV-1a checksum of its
//!   payload; [`CertStore::load`] re-verifies it, re-parses every field,
//!   and cross-checks the level names against the requested pair. Any
//!   mismatch — torn write, flipped byte, truncation, hand-editing — makes
//!   the load return `None`.
//! * **Witness-bearing records (format v2).** Every record carries the
//!   certificate's machine-checkable [`armada_recheck::Witness`] versioned
//!   alongside the counters, and a validating load additionally runs the
//!   witness's structural checks (subject-agnostic: counts, step
//!   encodings, the obligation hash chain, the sealed digest). A cached
//!   verdict therefore re-proves its own shape on every load; `armada
//!   recheck` can go further and replay it against the semantics. The v1→
//!   v2 bump changes [`CertKey`] derivation too, so every witnessless v1
//!   entry became unaddressable the moment this shipped — a one-time full
//!   cache invalidation, not a parse hazard.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use armada_recheck::Witness;
use armada_runtime::hash::Fnv64;
use armada_sm::Tid;

use crate::{RefinementCert, SimConfig};

/// Deterministic damage applied to a record as it is persisted, for fuzzing
/// the loader's validation invariant (see [`StoreShim`]). Our writer is
/// atomic by construction, so these model the *environment* — a torn sector,
/// latent bit rot — landing damage at the addressed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The record is truncated at half its length before it lands.
    Torn,
    /// One payload digit is flipped before the record lands. The damaged
    /// record still *parses* — only the checksum re-validation can reject
    /// it, which is exactly the defense being fuzzed.
    BitFlip,
}

/// Deterministic damage applied to the bytes a load reads, before parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// One payload digit is flipped in the bytes handed to the parser (a
    /// bad sector surfacing on read; the on-disk record is untouched).
    Corrupt,
}

/// Fault-shim configuration for one store handle. The default injects
/// nothing; fuzzing wraps a store via [`CertStore::with_faults`] to damage
/// its IO deterministically and then asserts the store's load invariant — a
/// load returns exactly what a completed save wrote, or nothing — still
/// holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreShim {
    /// Damage applied by every `save`.
    pub write: Option<WriteFault>,
    /// Damage applied to the bytes read by every `load`.
    pub read: Option<ReadFault>,
    /// **Mutant hook, test-only:** skip checksum re-validation on load.
    /// Exists so the fuzzer's no-corrupt-cert-served invariant can be
    /// demonstrated to catch a store that stopped validating
    /// (`tests/fault_fuzz.rs`, mutant refutation); nothing in the tool ever
    /// sets it.
    pub unchecked_loads: bool,
}

/// Flips one decimal digit right after `needle` (xor 0x01 keeps `0`–`9` a
/// digit, and skipping `a`–`f` keeps hex fields hex), so the damaged
/// record still parses. Returns false if no digit follows the needle.
fn flip_digit_after(bytes: &mut [u8], needle: &[u8]) -> bool {
    let Some(at) = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + needle.len())
    else {
        return false;
    };
    for b in bytes[at..].iter_mut() {
        if b.is_ascii_digit() {
            *b ^= 0x01;
            return true;
        }
        if !b.is_ascii_hexdigit() {
            return false;
        }
    }
    false
}

/// Flips a digit in the counters region (`product_nodes`) *and* one in the
/// witness section (the sealed digest line), producing a record that
/// parses but cannot re-validate. Damaging both regions keeps the
/// twelve-fate fuzz campaign honest: a loader that checksummed only the
/// counters but trusted the witness bytes — or vice versa — would serve
/// one of the two corruptions. Falls back to flipping the middle byte if
/// neither needle lands (pre-damaged input).
fn flip_payload_digit(bytes: &mut [u8]) {
    let counters = flip_digit_after(bytes, b"product_nodes ");
    let witness = flip_digit_after(bytes, b"witness digest ");
    if !counters && !witness && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
    }
}

/// Version tag embedded in both the key derivation and the file header;
/// bump it when the record format or the certificate semantics change, and
/// every old entry becomes unaddressable garbage instead of a parse hazard.
/// v2: records carry the machine-checkable refinement witness.
const FORMAT_VERSION: u32 = 2;

/// Magic first line of a certificate record — the checker's, so the store
/// cannot drift from what `armada recheck` accepts.
const MAGIC: &str = armada_recheck::RECORD_MAGIC;

/// Content address of one certificate: a stable hash of everything that
/// determines the check's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CertKey(u64);

impl CertKey {
    /// Derives the key for checking `low ⊑ high` within `module_source`
    /// under `config`.
    pub fn compute(module_source: &str, low: &str, high: &str, config: &SimConfig) -> CertKey {
        let mut h = Fnv64::new();
        h.write_u64(FORMAT_VERSION as u64);
        h.write_str(module_source);
        h.write_str(low);
        h.write_str(high);
        h.write_usize(config.max_match);
        h.write_usize(config.max_nodes);
        h.write_usize(config.bounds.max_steps);
        h.write_usize(config.bounds.max_states);
        h.write_usize(config.bounds.max_buffer);
        h.write_usize(config.bounds.nondet_ints.len());
        for &candidate in &config.bounds.nondet_ints {
            h.write_i128(candidate);
        }
        // Reduction and symmetry change the cert's node/transition counts
        // (never the verdict), so a cached cert is only exact for the same
        // settings. Spill, checkpoint, and the small-wave threshold are
        // deliberately excluded, like jobs and deadlines: they change how
        // a check runs, never what a successful check certifies.
        h.write_u64(config.bounds.reduction as u64);
        h.write_u64(config.bounds.symmetry as u64);
        CertKey(h.finish())
    }

    /// The key as the 16-hex-digit file stem.
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A directory of checksummed certificate records, one file per key.
#[derive(Debug, Clone)]
pub struct CertStore {
    root: PathBuf,
    shim: StoreShim,
    /// Records that were *present* but failed validation on load (torn,
    /// bit-flipped, version-skewed, or addressed to the wrong pair). The
    /// counter is shared across clones of this handle — including the
    /// per-recipe fault-shimmed views the pipeline makes — so tier-2
    /// corruption is auditable instead of silently recomputed away.
    rejected_loads: Arc<AtomicU64>,
}

impl CertStore {
    /// A store rooted at `root`. No IO happens until the first save (loads
    /// from a nonexistent directory are just misses).
    pub fn open(root: impl Into<PathBuf>) -> CertStore {
        CertStore {
            root: root.into(),
            shim: StoreShim::default(),
            rejected_loads: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The same store with `shim`'s deterministic IO faults applied to
    /// every save and load (fuzzing only).
    pub fn with_faults(mut self, shim: StoreShim) -> CertStore {
        self.shim = shim;
        self
    }

    /// This handle's fault-shim configuration (default: injects nothing).
    pub fn shim(&self) -> StoreShim {
        self.shim
    }

    /// The conventional location, `target/armada-certs/`.
    pub fn default_root() -> PathBuf {
        PathBuf::from("target/armada-certs")
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a key addresses (whether or not it exists yet).
    pub fn path_for(&self, key: &CertKey) -> PathBuf {
        self.root.join(format!("{}.cert", key.as_hex()))
    }

    /// Persists `cert` under `key`: serialize, write to a same-directory
    /// temp file, checksum embedded, then atomically rename into place.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error; callers may treat saving as
    /// best-effort (a failed save only costs a future recomputation).
    pub fn save(&self, key: &CertKey, cert: &RefinementCert) -> io::Result<()> {
        if !level_name_fits(&cert.low) || !level_name_fits(&cert.high) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "level names must be single-line and non-empty",
            ));
        }
        fs::create_dir_all(&self.root)?;
        let mut record = serialize(cert).into_bytes();
        match self.shim.write {
            Some(WriteFault::Torn) => record.truncate(record.len() / 2),
            Some(WriteFault::BitFlip) => flip_payload_digit(&mut record),
            None => {}
        }
        let target = self.path_for(key);
        // Same-directory temp path: rename is atomic only within a
        // filesystem. The name is key-deterministic; concurrent writers of
        // the same key write identical bytes, so the race is benign.
        let temp = self.root.join(format!("{}.tmp", key.as_hex()));
        fs::write(&temp, record)?;
        fs::rename(&temp, &target)
    }

    /// Loads the certificate stored under `key`, if and only if a complete,
    /// checksum-valid record for exactly the pair `low ⊑ high` is present.
    /// Every failure mode — absent file, torn or corrupted record, version
    /// skew, a record for a different pair — is a silent `None`, which
    /// callers treat as a cache miss.
    pub fn load(&self, key: &CertKey, low: &str, high: &str) -> Option<RefinementCert> {
        let mut bytes = fs::read(self.path_for(key)).ok()?;
        if let Some(ReadFault::Corrupt) = self.shim.read {
            flip_payload_digit(&mut bytes);
        }
        // From here on a record *exists*: any rejection below is audited as
        // a corrupt load (the recompute is silent for results, not for the
        // operator — `--telemetry` surfaces the counter).
        let reject = || {
            self.rejected_loads.fetch_add(1, Ordering::Relaxed);
            None
        };
        let Ok(text) = String::from_utf8(bytes) else {
            return reject();
        };
        let Some(cert) = deserialize(&text, !self.shim.unchecked_loads) else {
            return reject();
        };
        if cert.low == low && cert.high == high {
            Some(cert)
        } else {
            reject()
        }
    }

    /// How many loads found a record that failed validation (and were
    /// therefore answered as misses, forcing recomputation). Shared across
    /// clones of this handle.
    pub fn corrupt_loads(&self) -> u64 {
        self.rejected_loads.load(Ordering::Relaxed)
    }

    /// Strict re-validation sweep over every record in the store, ignoring
    /// this handle's shim: `(valid, rejected)` record counts. Fuzzing uses
    /// it to audit what a fault campaign left on disk (a rejected record is
    /// merely a future cache miss, never an invariant violation).
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error from the directory walk (a missing
    /// root is an empty store, not an error).
    pub fn audit(&self) -> io::Result<(usize, usize)> {
        let entries = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((0, 0)),
            Err(e) => return Err(e),
        };
        let (mut valid, mut rejected) = (0, 0);
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_none_or(|ext| ext != "cert") {
                continue;
            }
            let ok = fs::read_to_string(&path)
                .ok()
                .and_then(|text| deserialize(&text, true))
                .is_some();
            if ok {
                valid += 1;
            } else {
                rejected += 1;
            }
        }
        Ok((valid, rejected))
    }

    /// Removes every record in the store (missing directory is fine).
    ///
    /// # Errors
    ///
    /// Returns the first IO error encountered while deleting.
    pub fn clear(&self) -> io::Result<()> {
        match fs::remove_dir_all(&self.root) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Level names are identifiers, but the record format is line-based, so
/// defend the serialization against anything that could smuggle a line
/// break or an empty field into the record.
fn level_name_fits(name: &str) -> bool {
    !name.is_empty() && !name.chars().any(|c| c.is_control())
}

/// The payload lines of a record (everything the checksum covers). The
/// witness section is rendered by `armada-recheck`'s own formatter, so the
/// store and the independent checker agree on the bytes by construction.
fn payload(cert: &RefinementCert) -> String {
    format!(
        "{MAGIC}\nlow {}\nhigh {}\nproduct_nodes {}\nlow_transitions {}\n{}",
        cert.low,
        cert.high,
        cert.product_nodes,
        cert.low_transitions,
        armada_recheck::witness_lines(&cert.witness)
    )
}

/// Renders a certificate as its on-disk record (checksum line included).
/// Public so the fuzzer and the soundness tests can feed emitted certs to
/// `armada recheck` without a round trip through the filesystem.
pub fn serialize(cert: &RefinementCert) -> String {
    let payload = payload(cert);
    let checksum = armada_runtime::hash::fnv1a_64(payload.as_bytes());
    format!("{payload}checksum {checksum:016x}\n")
}

/// Parses a record. `validate` is always true in production — it enforces
/// the checksum *and* the witness's structural self-checks (counts, step
/// encodings, hash chain, sealed digest) — and only the
/// [`StoreShim::unchecked_loads`] mutant hook clears it. This parser is
/// the store's own; `armada recheck` carries an independent one.
pub fn deserialize(text: &str, validate: bool) -> Option<RefinementCert> {
    // The checksum line is last; everything before it is the payload the
    // checksum covers. Re-hash first so *any* payload damage — even damage
    // that would still parse — is rejected.
    let rest = text.strip_suffix('\n')?;
    let (payload_text, checksum_line) = rest.rsplit_once('\n')?;
    let payload_text = format!("{payload_text}\n");
    let stored = checksum_line.strip_prefix("checksum ")?;
    let stored = u64::from_str_radix(stored, 16).ok()?;
    if validate && stored != armada_runtime::hash::fnv1a_64(payload_text.as_bytes()) {
        return None;
    }
    let mut lines = payload_text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let low = lines.next()?.strip_prefix("low ")?.to_string();
    let high = lines.next()?.strip_prefix("high ")?.to_string();
    let product_nodes = lines.next()?.strip_prefix("product_nodes ")?.parse().ok()?;
    let low_transitions = lines
        .next()?
        .strip_prefix("low_transitions ")?
        .parse()
        .ok()?;
    let witness = parse_witness(&mut lines)?;
    if lines.next().is_some() {
        return None;
    }
    let cert = RefinementCert {
        low,
        high,
        product_nodes,
        low_transitions,
        witness,
    };
    if validate
        && cert
            .witness
            .validate(cert.product_nodes, cert.low_transitions, None)
            .is_err()
    {
        return None;
    }
    Some(cert)
}

/// Parses the witness section (the store-side twin of the record layout in
/// [`armada_recheck::witness_lines`]).
fn parse_witness(lines: &mut std::str::Lines<'_>) -> Option<Witness> {
    let hex = |s: &str| u64::from_str_radix(s, 16).ok();
    let renaming = |s: &str| -> Option<Vec<Tid>> {
        if s == "-" {
            return Some(Vec::new());
        }
        s.split(',').map(|t| t.parse().ok()).collect()
    };
    let subject = hex(lines.next()?.strip_prefix("witness subject ")?)?;
    let status = lines.next()?.strip_prefix("witness status ")?;
    let words: Vec<&str> = status.split(' ').collect();
    let [state, "waves", waves, "depth", depth, "symmetry", symmetry, "buffer", buffer] =
        words.as_slice()
    else {
        return None;
    };
    let complete = match *state {
        "complete" => true,
        "truncated" => false,
        _ => return None,
    };
    let root_renaming = renaming(lines.next()?.strip_prefix("witness root ")?)?;
    let pair_count: usize = lines.next()?.strip_prefix("witness pairs ")?.parse().ok()?;
    let mut pairs = Vec::with_capacity(pair_count);
    for _ in 0..pair_count {
        let (fp, set) = lines.next()?.strip_prefix("pair ")?.split_once(' ')?;
        pairs.push(armada_recheck::WitnessPair {
            low_fp: hex(fp)?,
            set_digest: hex(set)?,
        });
    }
    let obl_count: usize = lines
        .next()?
        .strip_prefix("witness obligations ")?
        .parse()
        .ok()?;
    let mut obligations = Vec::with_capacity(obl_count);
    for _ in 0..obl_count {
        let fields: Vec<&str> = lines.next()?.strip_prefix("obl ")?.split(' ').collect();
        let [parent, micro, ren, steps_digest, hash, steps] = fields.as_slice() else {
            return None;
        };
        let steps_enc = if *steps == "-" {
            Vec::new()
        } else if steps.len() % 2 == 0 {
            (0..steps.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&steps[i..i + 2], 16).ok())
                .collect::<Option<Vec<u8>>>()?
        } else {
            return None;
        };
        obligations.push(armada_recheck::Obligation {
            parent: parent.parse().ok()?,
            micro: micro.parse().ok()?,
            renaming: renaming(ren)?,
            steps_enc,
            steps_digest: hex(steps_digest)?,
            hash: hex(hash)?,
        });
    }
    let digest = hex(lines.next()?.strip_prefix("witness digest ")?)?;
    Some(Witness {
        subject,
        complete,
        waves: waves.parse().ok()?,
        max_depth: depth.parse().ok()?,
        symmetry: match *symmetry {
            "0" => false,
            "1" => true,
            _ => return None,
        },
        max_buffer: buffer.parse().ok()?,
        root_renaming,
        pairs,
        obligations,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_store(test: &str) -> CertStore {
        let root =
            std::env::temp_dir().join(format!("armada-cert-store-{}-{test}", std::process::id()));
        let store = CertStore::open(root);
        store.clear().expect("clean scratch dir");
        store
    }

    /// A structurally valid witness for a linear `nodes`-pair run with one
    /// micro-step per edge (so `low_transitions` = `nodes - 1`).
    fn witness_for(nodes: usize) -> Witness {
        if nodes == 0 {
            return Witness::empty();
        }
        let step = armada_recheck::encode_steps(&[armada_sm::Step::instr(1)]);
        let mut b = armada_recheck::WitnessBuilder::new(false, 8, Vec::new(), 0xaaaa, 0xbbbb);
        for i in 1..nodes {
            b.push_node(
                (i - 1) as u32,
                0xaaaa + i as u64,
                0xbbbb,
                step.clone(),
                1,
                Vec::new(),
            );
        }
        b.seal(true, nodes as u64, (nodes - 1) as u64)
    }

    fn sample_cert() -> RefinementCert {
        RefinementCert {
            low: "Impl".into(),
            high: "Spec".into(),
            product_nodes: 5,
            low_transitions: 4,
            witness: witness_for(5),
        }
    }

    #[test]
    fn round_trips_and_misses_cleanly() {
        let store = scratch_store("round_trip");
        let key = CertKey::compute("module text", "Impl", "Spec", &SimConfig::default());
        assert_eq!(store.load(&key, "Impl", "Spec"), None, "empty store");
        let cert = sample_cert();
        store.save(&key, &cert).expect("save");
        assert_eq!(store.load(&key, "Impl", "Spec"), Some(cert));
        // A record for the right key but the wrong pair is a miss.
        assert_eq!(store.load(&key, "Impl", "Other"), None);
        store.clear().expect("clear");
        assert_eq!(store.load(&key, "Impl", "Spec"), None, "cleared store");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let store = scratch_store("byte_flips");
        let key = CertKey::compute("module text", "Impl", "Spec", &SimConfig::default());
        store.save(&key, &sample_cert()).expect("save");
        let pristine = std::fs::read(store.path_for(&key)).expect("read record");
        for index in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[index] ^= 0x04; // keep it printable-ish; any flip must do
            std::fs::write(store.path_for(&key), &corrupt).expect("write corrupt");
            assert_eq!(
                store.load(&key, "Impl", "Spec"),
                None,
                "flip at byte {index} must be rejected"
            );
        }
        std::fs::write(store.path_for(&key), &pristine).expect("restore");
        assert!(store.load(&key, "Impl", "Spec").is_some());
    }

    #[test]
    fn truncated_and_garbage_records_are_misses() {
        let store = scratch_store("garbage");
        let key = CertKey::compute("m", "A", "B", &SimConfig::default());
        let cert = RefinementCert {
            low: "A".into(),
            high: "B".into(),
            product_nodes: 1,
            low_transitions: 0,
            witness: witness_for(1),
        };
        store.save(&key, &cert).expect("save");
        let full = std::fs::read_to_string(store.path_for(&key)).expect("read");
        for cut in 0..full.len() {
            std::fs::write(store.path_for(&key), &full[..cut]).expect("truncate");
            assert_eq!(store.load(&key, "A", "B"), None, "truncated at {cut}");
        }
        std::fs::write(store.path_for(&key), "total garbage\n").expect("garbage");
        assert_eq!(store.load(&key, "A", "B"), None);
    }

    #[test]
    fn keys_separate_programs_pairs_and_bounds() {
        let config = SimConfig::default();
        let base = CertKey::compute("src", "A", "B", &config);
        assert_ne!(base, CertKey::compute("src2", "A", "B", &config));
        assert_ne!(base, CertKey::compute("src", "A", "C", &config));
        assert_ne!(base, CertKey::compute("src", "B", "A", &config));
        let mut tighter = SimConfig::default();
        tighter.max_nodes = 7;
        assert_ne!(base, CertKey::compute("src", "A", "B", &tighter));
        // Reduction changes the cert's counters, so it is part of the key.
        let unreduced = SimConfig::default().with_reduction(false);
        assert_ne!(base, CertKey::compute("src", "A", "B", &unreduced));
        // So does symmetry reduction.
        let unsymmetric = SimConfig::default().with_symmetry(false);
        assert_ne!(base, CertKey::compute("src", "A", "B", &unsymmetric));
        // jobs and deadline must NOT affect the key: they never change
        // results, and sharing certs across them is the point.
        let parallel = SimConfig::default().with_jobs(8);
        assert_eq!(base, CertKey::compute("src", "A", "B", &parallel));
        let mut deadlined = SimConfig::default();
        deadlined.bounds = deadlined
            .bounds
            .with_deadline(std::time::Duration::from_secs(3600));
        assert_eq!(base, CertKey::compute("src", "A", "B", &deadlined));
    }

    #[test]
    fn shimmed_writes_and_reads_are_rejected_by_validation() {
        let store = scratch_store("shim_faults");
        let key = CertKey::compute("module text", "Impl", "Spec", &SimConfig::default());
        let cert = sample_cert();

        // A torn write lands a truncated record: the strict loader misses.
        let torn = store.clone().with_faults(StoreShim {
            write: Some(WriteFault::Torn),
            ..StoreShim::default()
        });
        torn.save(&key, &cert).expect("torn save");
        assert_eq!(store.load(&key, "Impl", "Spec"), None, "torn record");
        assert_eq!(store.audit().expect("audit"), (0, 1));

        // A bit-flipped write lands a record that still parses — only the
        // checksum rejects it.
        let flipped = store.clone().with_faults(StoreShim {
            write: Some(WriteFault::BitFlip),
            ..StoreShim::default()
        });
        flipped.save(&key, &cert).expect("flipped save");
        let text = std::fs::read_to_string(store.path_for(&key)).expect("read");
        assert!(
            deserialize(&text, false).is_some(),
            "bit-flipped record must still parse (the checksum is the only defense)"
        );
        assert_eq!(store.load(&key, "Impl", "Spec"), None, "flipped record");

        // A clean save with a corrupting reader: the disk record is fine,
        // but this handle's loads miss; a pristine handle still hits.
        store.save(&key, &cert).expect("clean save");
        let bad_reader = store.clone().with_faults(StoreShim {
            read: Some(ReadFault::Corrupt),
            ..StoreShim::default()
        });
        assert_eq!(bad_reader.load(&key, "Impl", "Spec"), None);
        assert_eq!(store.load(&key, "Impl", "Spec"), Some(cert));
        assert_eq!(store.audit().expect("audit"), (1, 0));
    }

    #[test]
    fn unchecked_loads_mutant_serves_corrupt_certs() {
        // The mutant hook disables the checksum defense: a bit-flipped
        // record is then *served*, with silently different statistics —
        // the exact unsoundness the fuzzer's invariant exists to catch.
        let store = scratch_store("unchecked_mutant");
        let key = CertKey::compute("module text", "Impl", "Spec", &SimConfig::default());
        let cert = sample_cert();
        store
            .clone()
            .with_faults(StoreShim {
                write: Some(WriteFault::BitFlip),
                ..StoreShim::default()
            })
            .save(&key, &cert)
            .expect("flipped save");
        let mutant = store.clone().with_faults(StoreShim {
            unchecked_loads: true,
            ..StoreShim::default()
        });
        let served = mutant
            .load(&key, "Impl", "Spec")
            .expect("mutant serves the damaged record");
        assert_ne!(served, cert, "the served cert is corrupt");
        assert_eq!(
            store.load(&key, "Impl", "Spec"),
            None,
            "strict load rejects"
        );
    }

    #[test]
    fn corrupt_loads_are_audited_and_shared_across_clones() {
        let store = scratch_store("audit_counter");
        let key = CertKey::compute("module text", "Impl", "Spec", &SimConfig::default());
        let cert = sample_cert();
        assert_eq!(store.corrupt_loads(), 0);
        // Absent records are plain misses, not corruption.
        assert_eq!(store.load(&key, "Impl", "Spec"), None);
        assert_eq!(store.corrupt_loads(), 0);
        // A clean hit is not corruption either.
        store.save(&key, &cert).expect("save");
        assert!(store.load(&key, "Impl", "Spec").is_some());
        assert_eq!(store.corrupt_loads(), 0);
        // A shimmed corrupt read is audited — on the clone *and* on the
        // original handle (the counter is shared).
        let bad_reader = store.clone().with_faults(StoreShim {
            read: Some(ReadFault::Corrupt),
            ..StoreShim::default()
        });
        assert_eq!(bad_reader.load(&key, "Impl", "Spec"), None);
        assert_eq!(bad_reader.corrupt_loads(), 1);
        assert_eq!(store.corrupt_loads(), 1);
        // On-disk damage is audited too.
        std::fs::write(store.path_for(&key), "total garbage\n").expect("write");
        assert_eq!(store.load(&key, "Impl", "Spec"), None);
        assert_eq!(store.corrupt_loads(), 2);
    }

    #[test]
    fn save_rejects_unserializable_level_names() {
        let store = scratch_store("bad_names");
        let key = CertKey::compute("m", "A", "B", &SimConfig::default());
        let cert = RefinementCert {
            low: "A\nB".into(),
            high: "C".into(),
            product_nodes: 0,
            low_transitions: 0,
            witness: Witness::empty(),
        };
        assert!(store.save(&key, &cert).is_err());
        assert_eq!(store.load(&key, "A\nB", "C"), None);
    }
}
